//! Append-path property tests: a dataset grown by delta generations
//! must be indistinguishable from one rebuilt from scratch — across
//! execution modes, display policies, and messy data (NULL/NaN/±inf,
//! duplicate-heavy numerics, string columns with NULL operands).

use std::sync::Arc;

use proptest::prelude::*;
use visdb::prelude::*;
use visdb::relevance::{run_pipeline_opts, PipelineOptions};

/// One messy row: `tag` steers validity/finiteness, `v` the payload.
/// tag 0 → NULL x, 1 → NaN, 2 → +inf, 3 → −inf, 4 → duplicate-heavy
/// (quantized to ~20 buckets), else the raw value. The string column is
/// NULL on tag 0 and duplicate-heavy otherwise.
fn messy_row(i: usize, v: f64, tag: u8) -> Vec<Value> {
    let x = match tag {
        0 => Value::Null,
        1 => Value::Float(f64::NAN),
        2 => Value::Float(f64::INFINITY),
        3 => Value::Float(f64::NEG_INFINITY),
        4 => Value::Float((v / 10.0).round() * 10.0),
        _ => Value::Float(v),
    };
    let s = if tag == 0 {
        Value::Null
    } else {
        Value::Str(format!("s{}", i % 4))
    };
    vec![x, s]
}

fn messy_db(rows: &[(f64, u8)]) -> Database {
    let mut t = TableBuilder::new(
        "T",
        vec![
            Column::new("x", DataType::Float),
            Column::new("s", DataType::Str),
        ],
    );
    for (i, &(v, tag)) in rows.iter().enumerate() {
        t = t.row(messy_row(i, v, tag)).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// First field where two pipeline outputs diverge (trimmed from
/// `tests/properties.rs`).
fn first_divergence(fast: &PipelineOutput, slow: &PipelineOutput) -> Option<String> {
    if fast.n != slow.n {
        return Some(format!("n: {} != {}", fast.n, slow.n));
    }
    if fast.combined != slow.combined {
        return Some("combined distances diverge".into());
    }
    if fast.relevance != slow.relevance {
        return Some("relevance factors diverge".into());
    }
    if fast.num_exact != slow.num_exact {
        return Some(format!(
            "num_exact: {} != {}",
            fast.num_exact, slow.num_exact
        ));
    }
    if fast.displayed != slow.displayed {
        return Some("displayed set diverges".into());
    }
    if fast.order[..fast.sorted_len] != slow.order[..fast.sorted_len] {
        return Some("sorted order prefix diverges".into());
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A table grown by `append_rows` produces bit-identical pipeline
    /// output to a table built with all rows up front — under the
    /// scalar reference, the materialized vectorized path, the
    /// streaming planner, and partitioned execution, on a mixed
    /// numeric + string query over every validity shape.
    #[test]
    fn append_then_query_matches_rebuild_across_modes(
        base in prop::collection::vec((-100f64..100.0, 0u8..6), 1..150),
        delta in prop::collection::vec((-100f64..100.0, 0u8..6), 1..40),
        threshold in -100f64..100.0,
        pct in 1.0f64..100.0,
    ) {
        // grown: base generation + one appended delta generation
        let mut grown = messy_db(&base);
        let rows: Vec<Vec<Value>> = delta
            .iter()
            .enumerate()
            .map(|(j, &(v, tag))| messy_row(base.len() + j, v, tag))
            .collect();
        grown.table_mut("T").unwrap().append_rows(rows).unwrap();
        // rebuilt: every row present from the start
        let all: Vec<(f64, u8)> = base.iter().chain(&delta).copied().collect();
        let rebuilt = messy_db(&all);

        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .cmp("s", CompareOp::Eq, "s2")
            .build();
        let policy = DisplayPolicy::Percentage(pct);
        let tg = grown.table("T").unwrap();
        let tr = rebuilt.table("T").unwrap();
        let reference =
            run_pipeline_scalar(&rebuilt, tr, &resolver, q.condition.as_ref(), &policy).unwrap();

        let stream = run_pipeline(&grown, tg, &resolver, q.condition.as_ref(), &policy).unwrap();
        let mat = run_pipeline_opts(
            &grown, tg, &resolver, q.condition.as_ref(), &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                ..Default::default()
            },
        ).unwrap();
        let scalar =
            run_pipeline_scalar(&grown, tg, &resolver, q.condition.as_ref(), &policy).unwrap();
        for (tag, out) in [("streaming", &stream), ("materialized", &mat), ("scalar", &scalar)] {
            let diff = first_divergence(out, &reference);
            prop_assert!(diff.is_none(), "{} ({tag} vs rebuilt scalar)", diff.unwrap());
        }
        for parts in [2usize, 7] {
            let partitioning = tg.partitions(parts);
            let part = run_pipeline_opts(
                &grown, tg, &resolver, q.condition.as_ref(), &policy,
                PipelineOptions {
                    partitions: Some(&partitioning),
                    ..Default::default()
                },
            ).unwrap();
            let diff = first_divergence(&part, &reference);
            prop_assert!(
                diff.is_none(),
                "{} (partitioned×{parts} vs rebuilt scalar)", diff.unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved append / drag / query against a live service is
    /// byte-identical to replaying the same state on a service loaded
    /// with the full data from scratch — through the delta-generation
    /// scope rotation, window extension, projection merge, and band
    /// repair, with and without partitioned execution.
    #[test]
    fn interleaved_appends_and_drags_match_replay_from_scratch(
        base in prop::collection::vec((-100f64..100.0, 0u8..6), 20..120),
        batches in prop::collection::vec(
            (prop::collection::vec((-100f64..100.0, 0u8..6), 1..25), -100f64..100.0),
            1..4,
        ),
        threshold in -100f64..100.0,
    ) {
        for partitions in [0usize, 4] {
            let live = Service::new(ServiceConfig {
                workers: 2,
                partitions,
                ..Default::default()
            });
            live.register_dataset("d", Arc::new(messy_db(&base)), ConnectionRegistry::new());
            let id = live.create_session("d").unwrap();
            let query = format!("SELECT * FROM T WHERE x >= {threshold}");
            live.submit(id, Request::SetWindowSize { w: 16, h: 16 }).unwrap();
            live.submit(id, Request::SetQueryText(query.clone())).unwrap();
            live.submit(id, Request::Summary { trace: false }).unwrap();

            let mut all = base.clone();
            for (delta, drag) in &batches {
                let rows: Vec<Vec<Value>> = delta
                    .iter()
                    .enumerate()
                    .map(|(j, &(v, tag))| messy_row(all.len() + j, v, tag))
                    .collect();
                live.append_rows("d", None, rows).unwrap();
                all.extend_from_slice(delta);

                live.submit(id, Request::DragSlider {
                    window: 0, op: CompareOp::Ge, value: *drag, trace: false,
                }).unwrap();
                let summary = live.submit(id, Request::Summary { trace: false }).unwrap();
                let frame = live.submit(id, Request::Render(RenderFormat::Ppm)).unwrap();

                // replay: full data from scratch, same slider position
                let fresh = Service::new(ServiceConfig {
                    workers: 2,
                    partitions,
                    ..Default::default()
                });
                fresh.register_dataset("d", Arc::new(messy_db(&all)), ConnectionRegistry::new());
                let fid = fresh.create_session("d").unwrap();
                fresh.submit(fid, Request::SetWindowSize { w: 16, h: 16 }).unwrap();
                fresh.submit(fid, Request::SetQueryText(query.clone())).unwrap();
                fresh.submit(fid, Request::MoveSlider {
                    window: 0, op: CompareOp::Ge, value: *drag,
                }).unwrap();
                let expect_summary = fresh.submit(fid, Request::Summary { trace: false }).unwrap();
                let expect_frame = fresh.submit(fid, Request::Render(RenderFormat::Ppm)).unwrap();

                prop_assert_eq!(
                    &summary, &expect_summary,
                    "summary diverged from replay (partitions={})", partitions
                );
                prop_assert_eq!(
                    &frame, &expect_frame,
                    "render diverged from replay (partitions={})", partitions
                );
            }
        }
    }
}
