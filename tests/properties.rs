//! Cross-crate property-based tests: pipeline invariants on arbitrary
//! data and queries.

use proptest::prelude::*;
use visdb::prelude::*;

fn table_from(values: &[f64]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for &v in values {
        t = t.row(vec![Value::Float(v)]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// A two-column table where `tag` steers NULL/NaN placement: `tag == 0`
/// nulls the numeric column, `tag == 1` nulls the string column,
/// `tag == 2` makes the numeric value NaN — so the vectorized kernels
/// and the packed-frame fits see every validity shape (including
/// NULL/NaN-heavy inputs) and string windows see NULL operands.
fn table_with_nulls(rows: &[(f64, u8)]) -> Database {
    let mut t = TableBuilder::new(
        "T",
        vec![
            Column::new("x", DataType::Float),
            Column::new("s", DataType::Str),
        ],
    );
    for (i, &(v, tag)) in rows.iter().enumerate() {
        let x = match tag {
            0 => Value::Null,
            2 => Value::Float(f64::NAN),
            _ => Value::Float(v),
        };
        let s = if tag == 1 {
            Value::Null
        } else {
            Value::Str(format!("s{}", i % 5))
        };
        t = t.row(vec![x, s]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// A one-column table where `tag` steers NULL/NaN/±inf placement —
/// every validity and finiteness shape the streaming stats walks, fit
/// selections and combine pass must reproduce bit-exactly.
fn table_with_extremes(rows: &[(f64, u8)]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for &(v, tag) in rows {
        let x = match tag {
            0 => Value::Null,
            1 => Value::Float(f64::NAN),
            2 => Value::Float(f64::INFINITY),
            3 => Value::Float(f64::NEG_INFINITY),
            _ => Value::Float(v),
        };
        t = t.row(vec![x]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// Bitwise equality of two optional distances (`Some(NaN)` compares
/// equal when the bit patterns match — the frame `bits_eq` rule).
fn opt_bits_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// The first field where two pipeline outputs diverge, or `None` when
/// they are equivalent. `order` is compared on the vectorized sorted
/// prefix (the scalar reference sorts everything) — except under the
/// two-sided policy, whose prefix is the displayed *band* rather than
/// the global top-k (already covered by the `displayed` comparison).
fn first_divergence(
    fast: &PipelineOutput,
    slow: &PipelineOutput,
    policy: &DisplayPolicy,
) -> Option<String> {
    if fast.n != slow.n {
        return Some(format!("n: {} != {}", fast.n, slow.n));
    }
    if fast.combined != slow.combined {
        return Some("combined distances diverge".into());
    }
    if fast.relevance != slow.relevance {
        return Some("relevance factors diverge".into());
    }
    if fast.num_exact != slow.num_exact {
        return Some(format!(
            "num_exact: {} != {}",
            fast.num_exact, slow.num_exact
        ));
    }
    if fast.displayed != slow.displayed {
        return Some(format!(
            "displayed: {:?} != {:?}",
            fast.displayed, slow.displayed
        ));
    }
    if fast.order.len() != slow.order.len() {
        return Some("order length diverges".into());
    }
    if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_))
        && fast.order[..fast.sorted_len] != slow.order[..fast.sorted_len]
    {
        return Some("sorted order prefix diverges".into());
    }
    if fast.windows.len() != slow.windows.len() {
        return Some("window count diverges".into());
    }
    for (i, (f, s)) in fast.windows.iter().zip(&slow.windows).enumerate() {
        if f.label != s.label || f.signed != s.signed || f.weight != s.weight {
            return Some(format!("window {i} metadata diverges"));
        }
        match (f.full_frames(), s.full_frames()) {
            (Some((fr, fnorm)), Some((sr, snorm))) => {
                if !fr.bits_eq(sr) {
                    return Some(format!("window {i} raw distances diverge"));
                }
                if !fnorm.bits_eq(snorm) {
                    return Some(format!("window {i} normalized distances diverge"));
                }
            }
            // a late-materialized side: compare at the displayed rows
            // (its coverage) plus the fused full-relation exact count
            _ => {
                if f.zero_raw_count() != s.zero_raw_count() {
                    return Some(format!("window {i} exact counts diverge"));
                }
                for &row in &fast.displayed {
                    if !opt_bits_eq(f.raw_at(row), s.raw_at(row)) {
                        return Some(format!("window {i} raw diverges at row {row}"));
                    }
                    if !opt_bits_eq(f.normalized_at(row), s.normalized_at(row)) {
                        return Some(format!("window {i} normalized diverges at row {row}"));
                    }
                }
            }
        }
        if f.norm_params != s.norm_params {
            return Some(format!("window {i} norm params diverge"));
        }
    }
    None
}

fn pick_policy(pick: usize, pct: f64) -> DisplayPolicy {
    match pick % 4 {
        0 => DisplayPolicy::Percentage(pct),
        1 => DisplayPolicy::FitScreen {
            pixels: 64,
            pixels_per_item: 1 + pick % 3,
        },
        2 => DisplayPolicy::GapHeuristic {
            rmin: 1,
            rmax: 30,
            z: 3,
        },
        _ => DisplayPolicy::TwoSidedPercentage(pct),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The vectorized path (columnar kernels, chunked execution, fused
    /// normalize+combine, top-k selection) is byte-identical to the
    /// per-tuple full-sort scalar reference, across display policies and
    /// NULL/validity-heavy columns.
    #[test]
    fn vectorized_pipeline_matches_scalar_reference(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..4), 1..250),
        threshold in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .between("x", lo, lo + span)
            .build();
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
                prop_assert!(fast.sorted_len >= fast.displayed.len());
            }
            (Err(_), Err(_)) => {} // both reject (e.g. gap params vs tiny n)
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Partitioned execution (per-partition passes + k-way merge of
    /// per-partition top-k selections) is bit-identical to the
    /// `ExecMode::Scalar` reference AND the unpartitioned vectorized
    /// path, across display policies, partition counts (1, 2, 7, 16) —
    /// including counts exceeding the row count — and NULL-heavy
    /// columns.
    #[test]
    fn partitioned_pipeline_matches_scalar_and_vectorized(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..4), 1..250),
        threshold in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .between("x", lo, lo + span)
            .build();
        let policy = pick_policy(pick, pct);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        for parts in [1usize, 2, 7, 16] {
            let part = run_pipeline_partitioned(
                &db, t, &resolver, q.condition.as_ref(), &policy, parts);
            match (&part, &slow, &fast) {
                (Ok(part), Ok(slow), Ok(fast)) => {
                    let diff = first_divergence(part, slow, &policy);
                    prop_assert!(
                        diff.is_none(),
                        "{} vs scalar under {:?} with {} partitions",
                        diff.unwrap(), policy, parts
                    );
                    prop_assert_eq!(part.sorted_len, fast.sorted_len);
                    prop_assert_eq!(&part.displayed, &fast.displayed);
                    prop_assert!(part.sorted_len >= part.displayed.len());
                }
                (Err(_), Err(_), Err(_)) => {}
                (p, s, f) => prop_assert!(
                    false, "modes disagree on failure: {p:?} vs {s:?} vs {f:?}"),
            }
        }
    }

    /// The streaming execution mode (two fused passes, recomputed
    /// distances, threshold-propagating fit selection, late window
    /// assembly) is bit-identical to BOTH the scalar reference and the
    /// materialized vectorized path — across display policies
    /// (Percentage/FitScreen/gap/two-sided, the last via the planner's
    /// fallback), partition counts 1/2/7/16, NULL-, NaN- and ±inf-heavy
    /// columns, and multi-predicate AND/OR trees with per-part weights
    /// (including a nested boolean level, which adds a stats round).
    #[test]
    fn streaming_pipeline_matches_scalar_and_materialized(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..8), 1..250),
        t1 in -1e4f64..1e4,
        t2 in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        w1 in 0.05f64..1.0,
        w2 in 0.05f64..1.0,
        w3 in 0.05f64..1.0,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
        or_root_pick in 0u8..2,
        nested_pick in 0u8..2,
    ) {
        let (or_root, nested) = (or_root_pick == 1, nested_pick == 1);
        let db = table_with_extremes(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let p1 = ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Ge, t1));
        let p2 = ConditionNode::Predicate(Predicate::range(AttrRef::new("x"), lo, lo + span));
        let p3 = ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Lt, t2));
        let children = if nested {
            let inner = if or_root {
                ConditionNode::And(vec![Weighted::new(p2, w2), Weighted::new(p3, w3)])
            } else {
                ConditionNode::Or(vec![Weighted::new(p2, w2), Weighted::new(p3, w3)])
            };
            vec![Weighted::new(p1, w1), Weighted::new(inner, w2)]
        } else {
            vec![Weighted::new(p1, w1), Weighted::new(p2, w2), Weighted::new(p3, w3)]
        };
        let cond = Weighted::unit(if or_root {
            ConditionNode::Or(children)
        } else {
            ConditionNode::And(children)
        });
        let policy = pick_policy(pick, pct);
        // `run_pipeline` without caches = the Auto planner streaming
        let stream = run_pipeline(&db, t, &resolver, Some(&cond), &policy).unwrap();
        let slow = run_pipeline_scalar(&db, t, &resolver, Some(&cond), &policy).unwrap();
        let mat = run_pipeline_opts(
            &db, t, &resolver, Some(&cond), &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                ..Default::default()
            },
        ).unwrap();
        for (tag, reference) in [("scalar", &slow), ("materialized", &mat)] {
            let diff = first_divergence(&stream, reference, &policy);
            prop_assert!(diff.is_none(), "{} vs {tag} under {:?}", diff.unwrap(), policy);
        }
        // windows really are late-materialized on the streaming shapes
        if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_)) {
            prop_assert!(stream.windows.iter().all(|w| w.full_frames().is_none()));
        }
        // streaming composes with partitioned execution, bit-identically
        for parts in [1usize, 2, 7, 16] {
            let partitioning = t.partitions(parts);
            let part = run_pipeline_opts(
                &db, t, &resolver, Some(&cond), &policy,
                PipelineOptions {
                    partitions: Some(&partitioning),
                    ..Default::default()
                },
            ).unwrap();
            let diff = first_divergence(&part, &slow, &policy);
            prop_assert!(
                diff.is_none(),
                "{} vs scalar under {:?} with {} partitions",
                diff.unwrap(), policy, parts
            );
        }
    }

    /// Same equivalence for an OR query with an (unsigned) string window
    /// — exercises the per-tuple fallback kernel, the two-sided policy's
    /// fallback, and NULL string operands.
    #[test]
    fn vectorized_matches_scalar_on_string_or_queries(
        rows in prop::collection::vec((-100f64..100.0, 0u8..5), 1..200),
        threshold in -100f64..100.0,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("s", CompareOp::Eq, "s2")
            .cmp("x", CompareOp::Lt, threshold)
            .any()
            .build();
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Pipeline invariants hold for arbitrary data and thresholds.
    #[test]
    fn pipeline_invariants(
        values in prop::collection::vec(-1e4f64..1e4, 1..300),
        threshold in -1e4f64..1e4,
        pct in 1.0f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(pct)).unwrap();

        // exact count matches the straight count
        let expect_exact = values.iter().filter(|&&v| v >= threshold).count();
        prop_assert_eq!(out.num_exact, expect_exact);

        // combined distances normalized into [0, 255]
        for d in out.combined.iter().flatten() {
            prop_assert!((0.0..=255.0).contains(d));
        }
        // relevance is the mirror of combined
        for i in 0..out.n {
            match (out.combined[i], out.relevance[i]) {
                (Some(c), Some(r)) => prop_assert!((c + r - 255.0).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "mismatched defined-ness {other:?}"),
            }
        }
        // the sorted prefix is ascending in combined distance, covers
        // the display set, and dominates the unsorted tail
        prop_assert!(out.sorted_len >= out.displayed.len());
        for w in out.order[..out.sorted_len].windows(2) {
            prop_assert!(out.combined[w[0]] <= out.combined[w[1]]);
        }
        if let Some(&last) = out.order[..out.sorted_len].last() {
            for &i in &out.order[out.sorted_len..] {
                prop_assert!(out.combined[i] >= out.combined[last]);
            }
        }
        prop_assert_eq!(&out.order[..out.displayed.len()], &out.displayed[..]);
        // display count respects the percentage
        let max_k = ((pct / 100.0) * values.len() as f64).round() as usize;
        prop_assert!(out.displayed.len() <= max_k.max(1));
    }

    /// AND is never more permissive than its parts; OR never less.
    #[test]
    fn boolean_semantics_of_exact_answers(
        values in prop::collection::vec(-100f64..100.0, 1..200),
        lo in -100f64..100.0,
        hi in -100f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let run = |q: Query| {
            run_pipeline(&db, t, &resolver, q.condition.as_ref(),
                &DisplayPolicy::Percentage(100.0)).unwrap().num_exact
        };
        let a = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, lo).build());
        let b = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Le, hi).build());
        let and = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .all().build());
        let or = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .any().build());
        prop_assert!(and <= a.min(b));
        prop_assert!(or >= a.max(b));
        // inclusion-exclusion for these two complementary-ish predicates
        prop_assert_eq!(and + or, a + b);
    }

    /// The spiral arrangement places the displayed prefix without loss
    /// (window large enough) and rank 0 at the center cell.
    #[test]
    fn arrangement_preserves_displayed_items(
        n in 1usize..150,
        side in 13usize..20,
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, 0.0).build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        let grid = arrange_overall(&out.displayed, side, side);
        prop_assert_eq!(grid.occupied(), out.displayed.len().min(side * side));
        if !out.displayed.is_empty() {
            let c = (side - 1) / 2;
            prop_assert_eq!(grid.get(c, c), Some(out.displayed[0] as u32));
        }
    }

    /// The sorted-projection slider fast path serves a drag with the
    /// exact displayed set, exact-answer count and norm params a full
    /// pipeline recompute produces — across monotone ops, top-k display
    /// policies, NULL/NaN-heavy columns and duplicate-heavy values, over
    /// a *sequence* of drags (so contained modifications exercise the §6
    /// incremental cache's filter-on-hit path too).
    #[test]
    fn sorted_projection_drag_matches_full_recompute(
        rows in prop::collection::vec((-1e3f64..1e3, 0u8..5), 1..200),
        dups in 1.0f64..200.0,
        t0 in -1e3f64..1e3,
        drags in prop::collection::vec((-1e3f64..1e3, 0u8..2), 1..5),
        pct in 1.0f64..100.0,
        fitscreen in 0u8..2,
    ) {
        use std::sync::Arc;
        // quantize to force duplicate values (tie-heavy boundaries)
        let rows: Vec<(f64, u8)> = rows
            .into_iter()
            .map(|(v, tag)| ((v / dups).round() * dups, tag))
            .collect();
        let db = table_with_nulls(&rows);
        let policy = if fitscreen == 1 {
            DisplayPolicy::FitScreen { pixels: 96, pixels_per_item: 1 }
        } else {
            DisplayPolicy::Percentage(pct)
        };
        let make = || {
            let mut s = Session::new(Arc::new(db.clone()), ConnectionRegistry::new());
            s.set_display_policy(policy.clone()).unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, t0).build(),
            ).unwrap();
            s
        };
        let mut dragged = make();
        for &(t, greater) in &drags {
            let greater = greater == 1;
            let target = PredicateTarget::Compare {
                op: if greater { CompareOp::Ge } else { CompareOp::Le },
                value: Value::Float(t),
            };
            let drag = dragged.drag_slider(0, target.clone()).unwrap();
            prop_assert!(drag.incremental, "fast path must engage for {target:?}");
            let mut full = make();
            full.set_predicate_target(0, target.clone()).unwrap();
            let res = full.result().unwrap();
            prop_assert_eq!(&drag.displayed, &res.pipeline.displayed, "{:?}", target);
            prop_assert_eq!(drag.num_exact, res.pipeline.num_exact, "{:?}", target);
            prop_assert_eq!(
                drag.norm_params,
                res.pipeline.windows.first().map(|w| w.norm_params)
            );
            prop_assert_eq!(&drag.grid, &res.grid);
        }
    }

    /// Boolean baseline and distance pipeline agree on which items are
    /// exact answers for >= / <= predicates (no strictness mismatch).
    #[test]
    fn baseline_agrees_with_distance_zero(
        values in prop::collection::vec(-50f64..50.0, 1..100),
        threshold in -50f64..50.0,
    ) {
        use visdb::baseline::evaluate_boolean;
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, threshold).build();
        let cond = q.condition.as_ref().unwrap();
        let exact = evaluate_boolean(&db, t, &cond.node).unwrap();
        let resolver = DistanceResolver::new();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        for (i, &e) in exact.iter().enumerate() {
            prop_assert_eq!(e, out.combined[i] == Some(0.0), "row {}", i);
        }
    }
}
