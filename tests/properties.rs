//! Cross-crate property-based tests: pipeline invariants on arbitrary
//! data and queries.

use proptest::prelude::*;
use visdb::prelude::*;

fn table_from(values: &[f64]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for &v in values {
        t = t.row(vec![Value::Float(v)]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// A two-column table where `tag` steers NULL/NaN placement: `tag == 0`
/// nulls the numeric column, `tag == 1` nulls the string column,
/// `tag == 2` makes the numeric value NaN — so the vectorized kernels
/// and the packed-frame fits see every validity shape (including
/// NULL/NaN-heavy inputs) and string windows see NULL operands.
fn table_with_nulls(rows: &[(f64, u8)]) -> Database {
    let mut t = TableBuilder::new(
        "T",
        vec![
            Column::new("x", DataType::Float),
            Column::new("s", DataType::Str),
        ],
    );
    for (i, &(v, tag)) in rows.iter().enumerate() {
        let x = match tag {
            0 => Value::Null,
            2 => Value::Float(f64::NAN),
            _ => Value::Float(v),
        };
        let s = if tag == 1 {
            Value::Null
        } else {
            Value::Str(format!("s{}", i % 5))
        };
        t = t.row(vec![x, s]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// A one-column table where `tag` steers NULL/NaN/±inf placement —
/// every validity and finiteness shape the streaming stats walks, fit
/// selections and combine pass must reproduce bit-exactly.
fn table_with_extremes(rows: &[(f64, u8)]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for &(v, tag) in rows {
        let x = match tag {
            0 => Value::Null,
            1 => Value::Float(f64::NAN),
            2 => Value::Float(f64::INFINITY),
            3 => Value::Float(f64::NEG_INFINITY),
            _ => Value::Float(v),
        };
        t = t.row(vec![x]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// Bitwise equality of two optional distances (`Some(NaN)` compares
/// equal when the bit patterns match — the frame `bits_eq` rule).
fn opt_bits_eq(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// The first field where two pipeline outputs diverge, or `None` when
/// they are equivalent. `order` is compared on the vectorized sorted
/// prefix (the scalar reference sorts everything) — except under the
/// two-sided policy, whose prefix is the displayed *band* rather than
/// the global top-k (already covered by the `displayed` comparison).
fn first_divergence(
    fast: &PipelineOutput,
    slow: &PipelineOutput,
    policy: &DisplayPolicy,
) -> Option<String> {
    if fast.n != slow.n {
        return Some(format!("n: {} != {}", fast.n, slow.n));
    }
    if fast.combined != slow.combined {
        return Some("combined distances diverge".into());
    }
    if fast.relevance != slow.relevance {
        return Some("relevance factors diverge".into());
    }
    if fast.num_exact != slow.num_exact {
        return Some(format!(
            "num_exact: {} != {}",
            fast.num_exact, slow.num_exact
        ));
    }
    if fast.displayed != slow.displayed {
        return Some(format!(
            "displayed: {:?} != {:?}",
            fast.displayed, slow.displayed
        ));
    }
    if fast.order.len() != slow.order.len() {
        return Some("order length diverges".into());
    }
    if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_))
        && fast.order[..fast.sorted_len] != slow.order[..fast.sorted_len]
    {
        return Some("sorted order prefix diverges".into());
    }
    if fast.windows.len() != slow.windows.len() {
        return Some("window count diverges".into());
    }
    for (i, (f, s)) in fast.windows.iter().zip(&slow.windows).enumerate() {
        if f.label != s.label || f.signed != s.signed || f.weight != s.weight {
            return Some(format!("window {i} metadata diverges"));
        }
        match (f.full_frames(), s.full_frames()) {
            (Some((fr, fnorm)), Some((sr, snorm))) => {
                if !fr.bits_eq(sr) {
                    return Some(format!("window {i} raw distances diverge"));
                }
                if !fnorm.bits_eq(snorm) {
                    return Some(format!("window {i} normalized distances diverge"));
                }
            }
            // a late-materialized side: compare at the displayed rows
            // (its coverage) plus the fused full-relation exact count
            _ => {
                if f.zero_raw_count() != s.zero_raw_count() {
                    return Some(format!("window {i} exact counts diverge"));
                }
                for &row in &fast.displayed {
                    if !opt_bits_eq(f.raw_at(row), s.raw_at(row)) {
                        return Some(format!("window {i} raw diverges at row {row}"));
                    }
                    if !opt_bits_eq(f.normalized_at(row), s.normalized_at(row)) {
                        return Some(format!("window {i} normalized diverges at row {row}"));
                    }
                }
            }
        }
        if f.norm_params != s.norm_params {
            return Some(format!("window {i} norm params diverge"));
        }
    }
    None
}

fn pick_policy(pick: usize, pct: f64) -> DisplayPolicy {
    match pick % 4 {
        0 => DisplayPolicy::Percentage(pct),
        1 => DisplayPolicy::FitScreen {
            pixels: 64,
            pixels_per_item: 1 + pick % 3,
        },
        2 => DisplayPolicy::GapHeuristic {
            rmin: 1,
            rmax: 30,
            z: 3,
        },
        _ => DisplayPolicy::TwoSidedPercentage(pct),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The vectorized path (columnar kernels, chunked execution, fused
    /// normalize+combine, top-k selection) is byte-identical to the
    /// per-tuple full-sort scalar reference, across display policies and
    /// NULL/validity-heavy columns.
    #[test]
    fn vectorized_pipeline_matches_scalar_reference(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..4), 1..250),
        threshold in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .between("x", lo, lo + span)
            .build();
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
                prop_assert!(fast.sorted_len >= fast.displayed.len());
            }
            (Err(_), Err(_)) => {} // both reject (e.g. gap params vs tiny n)
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Partitioned execution (per-partition passes + k-way merge of
    /// per-partition top-k selections) is bit-identical to the
    /// `ExecMode::Scalar` reference AND the unpartitioned vectorized
    /// path, across display policies, partition counts (1, 2, 7, 16) —
    /// including counts exceeding the row count — and NULL-heavy
    /// columns.
    #[test]
    fn partitioned_pipeline_matches_scalar_and_vectorized(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..4), 1..250),
        threshold in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .between("x", lo, lo + span)
            .build();
        let policy = pick_policy(pick, pct);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        for parts in [1usize, 2, 7, 16] {
            let part = run_pipeline_partitioned(
                &db, t, &resolver, q.condition.as_ref(), &policy, parts);
            match (&part, &slow, &fast) {
                (Ok(part), Ok(slow), Ok(fast)) => {
                    let diff = first_divergence(part, slow, &policy);
                    prop_assert!(
                        diff.is_none(),
                        "{} vs scalar under {:?} with {} partitions",
                        diff.unwrap(), policy, parts
                    );
                    prop_assert_eq!(part.sorted_len, fast.sorted_len);
                    prop_assert_eq!(&part.displayed, &fast.displayed);
                    prop_assert!(part.sorted_len >= part.displayed.len());
                }
                (Err(_), Err(_), Err(_)) => {}
                (p, s, f) => prop_assert!(
                    false, "modes disagree on failure: {p:?} vs {s:?} vs {f:?}"),
            }
        }
    }

    /// The streaming execution mode (two fused passes, recomputed
    /// distances, threshold-propagating fit selection, late window
    /// assembly) is bit-identical to BOTH the scalar reference and the
    /// materialized vectorized path — across display policies
    /// (Percentage/FitScreen/gap/two-sided, the last via the planner's
    /// fallback), partition counts 1/2/7/16, NULL-, NaN- and ±inf-heavy
    /// columns, and multi-predicate AND/OR trees with per-part weights
    /// (including a nested boolean level, which adds a stats round).
    #[test]
    fn streaming_pipeline_matches_scalar_and_materialized(
        rows in prop::collection::vec((-1e4f64..1e4, 0u8..8), 1..250),
        t1 in -1e4f64..1e4,
        t2 in -1e4f64..1e4,
        lo in -1e4f64..1e4,
        span in 0.0f64..5e3,
        w1 in 0.05f64..1.0,
        w2 in 0.05f64..1.0,
        w3 in 0.05f64..1.0,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
        or_root_pick in 0u8..2,
        nested_pick in 0u8..2,
    ) {
        let (or_root, nested) = (or_root_pick == 1, nested_pick == 1);
        let db = table_with_extremes(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let p1 = ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Ge, t1));
        let p2 = ConditionNode::Predicate(Predicate::range(AttrRef::new("x"), lo, lo + span));
        let p3 = ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Lt, t2));
        let children = if nested {
            let inner = if or_root {
                ConditionNode::And(vec![Weighted::new(p2, w2), Weighted::new(p3, w3)])
            } else {
                ConditionNode::Or(vec![Weighted::new(p2, w2), Weighted::new(p3, w3)])
            };
            vec![Weighted::new(p1, w1), Weighted::new(inner, w2)]
        } else {
            vec![Weighted::new(p1, w1), Weighted::new(p2, w2), Weighted::new(p3, w3)]
        };
        let cond = Weighted::unit(if or_root {
            ConditionNode::Or(children)
        } else {
            ConditionNode::And(children)
        });
        let policy = pick_policy(pick, pct);
        // `run_pipeline` without caches = the Auto planner streaming
        let stream = run_pipeline(&db, t, &resolver, Some(&cond), &policy).unwrap();
        let slow = run_pipeline_scalar(&db, t, &resolver, Some(&cond), &policy).unwrap();
        let mat = run_pipeline_opts(
            &db, t, &resolver, Some(&cond), &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                ..Default::default()
            },
        ).unwrap();
        for (tag, reference) in [("scalar", &slow), ("materialized", &mat)] {
            let diff = first_divergence(&stream, reference, &policy);
            prop_assert!(diff.is_none(), "{} vs {tag} under {:?}", diff.unwrap(), policy);
        }
        // windows really are late-materialized on the streaming shapes
        if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_)) {
            prop_assert!(stream.windows.iter().all(|w| w.full_frames().is_none()));
        }
        // streaming composes with partitioned execution, bit-identically
        for parts in [1usize, 2, 7, 16] {
            let partitioning = t.partitions(parts);
            let part = run_pipeline_opts(
                &db, t, &resolver, Some(&cond), &policy,
                PipelineOptions {
                    partitions: Some(&partitioning),
                    ..Default::default()
                },
            ).unwrap();
            let diff = first_divergence(&part, &slow, &policy);
            prop_assert!(
                diff.is_none(),
                "{} vs scalar under {:?} with {} partitions",
                diff.unwrap(), policy, parts
            );
        }
    }

    /// Same equivalence for an OR query with an (unsigned) string window
    /// — exercises the per-tuple fallback kernel, the two-sided policy's
    /// fallback, and NULL string operands.
    #[test]
    fn vectorized_matches_scalar_on_string_or_queries(
        rows in prop::collection::vec((-100f64..100.0, 0u8..5), 1..200),
        threshold in -100f64..100.0,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = table_with_nulls(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("s", CompareOp::Eq, "s2")
            .cmp("x", CompareOp::Lt, threshold)
            .any()
            .build();
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Pipeline invariants hold for arbitrary data and thresholds.
    #[test]
    fn pipeline_invariants(
        values in prop::collection::vec(-1e4f64..1e4, 1..300),
        threshold in -1e4f64..1e4,
        pct in 1.0f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(pct)).unwrap();

        // exact count matches the straight count
        let expect_exact = values.iter().filter(|&&v| v >= threshold).count();
        prop_assert_eq!(out.num_exact, expect_exact);

        // combined distances normalized into [0, 255]
        for d in out.combined.iter().flatten() {
            prop_assert!((0.0..=255.0).contains(d));
        }
        // relevance is the mirror of combined
        for i in 0..out.n {
            match (out.combined[i], out.relevance[i]) {
                (Some(c), Some(r)) => prop_assert!((c + r - 255.0).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "mismatched defined-ness {other:?}"),
            }
        }
        // the sorted prefix is ascending in combined distance, covers
        // the display set, and dominates the unsorted tail
        prop_assert!(out.sorted_len >= out.displayed.len());
        for w in out.order[..out.sorted_len].windows(2) {
            prop_assert!(out.combined[w[0]] <= out.combined[w[1]]);
        }
        if let Some(&last) = out.order[..out.sorted_len].last() {
            for &i in &out.order[out.sorted_len..] {
                prop_assert!(out.combined[i] >= out.combined[last]);
            }
        }
        prop_assert_eq!(&out.order[..out.displayed.len()], &out.displayed[..]);
        // display count respects the percentage
        let max_k = ((pct / 100.0) * values.len() as f64).round() as usize;
        prop_assert!(out.displayed.len() <= max_k.max(1));
    }

    /// AND is never more permissive than its parts; OR never less.
    #[test]
    fn boolean_semantics_of_exact_answers(
        values in prop::collection::vec(-100f64..100.0, 1..200),
        lo in -100f64..100.0,
        hi in -100f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let run = |q: Query| {
            run_pipeline(&db, t, &resolver, q.condition.as_ref(),
                &DisplayPolicy::Percentage(100.0)).unwrap().num_exact
        };
        let a = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, lo).build());
        let b = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Le, hi).build());
        let and = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .all().build());
        let or = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .any().build());
        prop_assert!(and <= a.min(b));
        prop_assert!(or >= a.max(b));
        // inclusion-exclusion for these two complementary-ish predicates
        prop_assert_eq!(and + or, a + b);
    }

    /// The spiral arrangement places the displayed prefix without loss
    /// (window large enough) and rank 0 at the center cell.
    #[test]
    fn arrangement_preserves_displayed_items(
        n in 1usize..150,
        side in 13usize..20,
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, 0.0).build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        let grid = arrange_overall(&out.displayed, side, side);
        prop_assert_eq!(grid.occupied(), out.displayed.len().min(side * side));
        if !out.displayed.is_empty() {
            let c = (side - 1) / 2;
            prop_assert_eq!(grid.get(c, c), Some(out.displayed[0] as u32));
        }
    }

    /// The sorted-projection slider fast path serves a drag with the
    /// exact displayed set, exact-answer count and norm params a full
    /// pipeline recompute produces — across monotone ops, top-k display
    /// policies, NULL/NaN-heavy columns and duplicate-heavy values, over
    /// a *sequence* of drags (so contained modifications exercise the §6
    /// incremental cache's filter-on-hit path too).
    #[test]
    fn sorted_projection_drag_matches_full_recompute(
        rows in prop::collection::vec((-1e3f64..1e3, 0u8..5), 1..200),
        dups in 1.0f64..200.0,
        t0 in -1e3f64..1e3,
        drags in prop::collection::vec((-1e3f64..1e3, 0u8..2), 1..5),
        pct in 1.0f64..100.0,
        fitscreen in 0u8..2,
    ) {
        use std::sync::Arc;
        // quantize to force duplicate values (tie-heavy boundaries)
        let rows: Vec<(f64, u8)> = rows
            .into_iter()
            .map(|(v, tag)| ((v / dups).round() * dups, tag))
            .collect();
        let db = table_with_nulls(&rows);
        let policy = if fitscreen == 1 {
            DisplayPolicy::FitScreen { pixels: 96, pixels_per_item: 1 }
        } else {
            DisplayPolicy::Percentage(pct)
        };
        let make = || {
            let mut s = Session::new(Arc::new(db.clone()), ConnectionRegistry::new());
            s.set_display_policy(policy.clone()).unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, t0).build(),
            ).unwrap();
            s
        };
        let mut dragged = make();
        for &(t, greater) in &drags {
            let greater = greater == 1;
            let target = PredicateTarget::Compare {
                op: if greater { CompareOp::Ge } else { CompareOp::Le },
                value: Value::Float(t),
            };
            let drag = dragged.drag_slider(0, target.clone()).unwrap();
            prop_assert!(drag.incremental, "fast path must engage for {target:?}");
            let mut full = make();
            full.set_predicate_target(0, target.clone()).unwrap();
            let res = full.result().unwrap();
            prop_assert_eq!(&drag.displayed, &res.pipeline.displayed, "{:?}", target);
            prop_assert_eq!(drag.num_exact, res.pipeline.num_exact, "{:?}", target);
            prop_assert_eq!(
                drag.norm_params,
                res.pipeline.windows.first().map(|w| w.norm_params)
            );
            prop_assert_eq!(&drag.grid, &res.grid);
        }
    }

    /// The branchless [`apply_slice`] kernel (word-mask fast path, lane
    /// selects, merged degenerate/linear arms) is bit-identical to the
    /// per-row `NormParams::apply` reference on every validity and
    /// finiteness shape, including degenerate and inverted fit ranges.
    #[test]
    fn apply_slice_matches_per_row_apply(
        rows in prop::collection::vec((-1e6f64..1e6, 0u8..8), 0..70),
        dmin in 0.0f64..10.0,
        dspan in -5.0f64..1e6,
    ) {
        use visdb::relevance::{apply_slice, NormParams};
        let params = NormParams { dmin, dmax: dmin + dspan };
        let (vals, mask): (Vec<f64>, Vec<bool>) = rows
            .iter()
            .map(|&(v, tag)| match tag {
                0 => (0.0, false),
                1 => (f64::NAN, true),
                2 => (f64::INFINITY, true),
                3 => (f64::NEG_INFINITY, true),
                4 => (0.0, true),
                _ => (v, true),
            })
            .unzip();
        let mut out_v = vec![123.456; vals.len()];
        let mut out_m = vec![true; vals.len()];
        apply_slice(params, &vals, &mask, &mut out_v, &mut out_m);
        for i in 0..vals.len() {
            prop_assert_eq!(out_m[i], mask[i], "mask at {}", i);
            let expect = if mask[i] { params.apply(vals[i].abs()) } else { 0.0 };
            prop_assert!(
                out_v[i].to_bits() == expect.to_bits(),
                "row {}: {} vs {} under {:?}", i, out_v[i], expect, params
            );
        }
    }

    /// The branchless slice combiners are bit-identical to the per-row
    /// `and_row`/`or_row` folds — across undefined/NaN/±inf/exact-zero
    /// children and zero/negative weights (the negative-weight OR
    /// fallback included).
    #[test]
    fn combine_slices_match_row_folds(
        rows in prop::collection::vec((0.0f64..255.0, 0u8..6, 0u8..6), 0..70),
        w in (-1.0f64..2.0, 0.0f64..2.0, -1.0f64..2.0),
    ) {
        use visdb::relevance::combine::{and_row, combine_and_slices, combine_or_slices, or_row};
        let weights = [w.0, w.1, w.2];
        let shape = |v: f64, tag: u8| -> (f64, bool) {
            match tag {
                0 => (0.0, false),
                1 => (0.0, true),
                2 => (f64::NAN, true),
                3 => (f64::INFINITY, true),
                _ => (v, true),
            }
        };
        let n = rows.len();
        let mut children: Vec<(Vec<f64>, Vec<bool>)> = vec![(vec![0.0; n], vec![false; n]); 3];
        for (i, &(v, t1, t2)) in rows.iter().enumerate() {
            for (k, child) in children.iter_mut().enumerate() {
                let tag = match k {
                    0 => t1,
                    1 => t2,
                    _ => (t1 + t2) % 6,
                };
                let (x, ok) = shape(v + k as f64, tag);
                child.0[i] = x;
                child.1[i] = ok;
            }
        }
        let views: Vec<(&[f64], &[bool])> = children
            .iter()
            .map(|(v, m)| (v.as_slice(), m.as_slice()))
            .collect();
        let mut and_v = vec![9.0; n];
        let mut and_m = vec![true; n];
        combine_and_slices(&views, &weights, &mut and_v, &mut and_m);
        let mut or_v = vec![9.0; n];
        let mut or_m = vec![true; n];
        combine_or_slices(&views, &weights, &mut or_v, &mut or_m);
        for i in 0..n {
            let row: Vec<Option<f64>> = children
                .iter()
                .map(|(v, m)| m[i].then(|| v[i]))
                .collect();
            let expect_and = and_row(&row, &weights);
            let expect_or = or_row(&row, &weights);
            prop_assert!(
                opt_bits_eq(and_m[i].then(|| and_v[i]), expect_and),
                "AND row {}: {:?} vs {:?}", i, and_m[i].then(|| and_v[i]), expect_and
            );
            prop_assert!(
                opt_bits_eq(or_m[i].then(|| or_v[i]), expect_or),
                "OR row {}: {:?} vs {:?}", i, or_m[i].then(|| or_v[i]), expect_or
            );
            // undefined outputs are canonical (0.0 value, false mask)
            if !and_m[i] {
                prop_assert!(and_v[i].to_bits() == 0);
            }
            if !or_m[i] {
                prop_assert!(or_v[i].to_bits() == 0);
            }
        }
    }

    /// Boolean baseline and distance pipeline agree on which items are
    /// exact answers for >= / <= predicates (no strictness mismatch).
    #[test]
    fn baseline_agrees_with_distance_zero(
        values in prop::collection::vec(-50f64..50.0, 1..100),
        threshold in -50f64..50.0,
    ) {
        use visdb::baseline::evaluate_boolean;
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, threshold).build();
        let cond = q.condition.as_ref().unwrap();
        let exact = evaluate_boolean(&db, t, &cond.node).unwrap();
        let resolver = DistanceResolver::new();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        for (i, &e) in exact.iter().enumerate() {
            prop_assert_eq!(e, out.combined[i] == Some(0.0), "row {}", i);
        }
    }
}

/// End-to-end bit-identity of the branchless kernel walks against the
/// scalar reference at every lane/word remainder the fixed-width
/// restructure can mishandle: n ∈ {1..9} straddles the 4-lane blocks and
/// the 8-row validity words, n ∈ {4095, 4096, 4097} the word loop around
/// a 4k boundary — on NULL/NaN/±inf-dense columns and all-NULL frames,
/// composed with partition requests 1/2/7/16 (dropped by the planner at
/// these sizes, bit-identically) and both materialization modes.
#[test]
fn branchless_kernels_bit_identical_at_lane_remainders() {
    let resolver = DistanceResolver::new();
    let policy = DisplayPolicy::Percentage(40.0);
    let sizes = [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 4095, 4096, 4097];
    for &n in &sizes {
        for all_null in [false, true] {
            let rows: Vec<(f64, u8)> = (0..n)
                .map(|i| {
                    let v = (i as f64) * 0.75 - (n as f64) / 3.0;
                    let tag = if all_null { 0 } else { (i % 8) as u8 };
                    (v, tag)
                })
                .collect();
            let db = table_with_extremes(&rows);
            let t = db.table("T").unwrap();
            for or_root in [false, true] {
                let p1 = ConditionNode::Predicate(Predicate::compare(
                    AttrRef::new("x"),
                    CompareOp::Ge,
                    0.0,
                ));
                let p2 = ConditionNode::Predicate(Predicate::range(
                    AttrRef::new("x"),
                    -(n as f64),
                    n as f64 / 4.0,
                ));
                let children = vec![Weighted::new(p1, 0.7), Weighted::new(p2, 0.3)];
                let cond = Weighted::unit(if or_root {
                    ConditionNode::Or(children)
                } else {
                    ConditionNode::And(children)
                });
                let slow = run_pipeline_scalar(&db, t, &resolver, Some(&cond), &policy).unwrap();
                let mat = run_pipeline_opts(
                    &db,
                    t,
                    &resolver,
                    Some(&cond),
                    &policy,
                    PipelineOptions {
                        materialization: Materialization::Materialized,
                        ..Default::default()
                    },
                )
                .unwrap();
                let stream = run_pipeline(&db, t, &resolver, Some(&cond), &policy).unwrap();
                for (tag, out) in [("materialized", &mat), ("streaming", &stream)] {
                    let diff = first_divergence(out, &slow, &policy);
                    assert!(
                        diff.is_none(),
                        "{} ({tag}, n={n}, or={or_root}, all_null={all_null})",
                        diff.unwrap()
                    );
                }
                for parts in [1usize, 2, 7, 16] {
                    let partitioning = t.partitions(parts);
                    for materialization in [Materialization::Materialized, Materialization::Auto] {
                        let part = run_pipeline_opts(
                            &db,
                            t,
                            &resolver,
                            Some(&cond),
                            &policy,
                            PipelineOptions {
                                partitions: Some(&partitioning),
                                materialization,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                        let diff = first_divergence(&part, &slow, &policy);
                        assert!(
                            diff.is_none(),
                            "{} (n={n}, parts={parts}, or={or_root}, all_null={all_null}, {materialization:?})",
                            diff.unwrap()
                        );
                    }
                }
            }
        }
    }
}

/// The same bit-identity above the planner's partition threshold, where
/// the per-partition fan-out and the k-way selection merge actually
/// engage, with the row count chosen to leave a ragged tail chunk
/// (2·CHUNK_ROWS + 5) on extreme-dense data.
#[test]
fn branchless_kernels_bit_identical_above_partition_threshold() {
    let resolver = DistanceResolver::new();
    let policy = DisplayPolicy::Percentage(25.0);
    let n = 32 * 1024 + 5;
    let rows: Vec<(f64, u8)> = (0..n)
        .map(|i| ((i as f64) * 0.5 - (n as f64) / 4.0, (i % 8) as u8))
        .collect();
    let db = table_with_extremes(&rows);
    let t = db.table("T").unwrap();
    for or_root in [false, true] {
        let p1 =
            ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Ge, 100.0));
        let p2 = ConditionNode::Predicate(Predicate::range(AttrRef::new("x"), -500.0, 2000.0));
        let children = vec![Weighted::new(p1, 0.6), Weighted::new(p2, 0.4)];
        let cond = Weighted::unit(if or_root {
            ConditionNode::Or(children)
        } else {
            ConditionNode::And(children)
        });
        let slow = run_pipeline_scalar(&db, t, &resolver, Some(&cond), &policy).unwrap();
        for parts in [2usize, 7] {
            let partitioning = t.partitions(parts);
            for materialization in [Materialization::Materialized, Materialization::Auto] {
                let part = run_pipeline_opts(
                    &db,
                    t,
                    &resolver,
                    Some(&cond),
                    &policy,
                    PipelineOptions {
                        partitions: Some(&partitioning),
                        materialization,
                        trace: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                let trace = part.trace.as_ref().expect("trace requested");
                assert_eq!(trace.partitions, parts, "fan-out must engage at n={n}");
                let diff = first_divergence(&part, &slow, &policy);
                assert!(
                    diff.is_none(),
                    "{} (parts={parts}, or={or_root}, {materialization:?})",
                    diff.unwrap()
                );
            }
        }
    }
}

/// String pool for the string-kernel properties: empty strings, case
/// pairs, near-duplicates, combining accents and CJK — the shapes the
/// offset+bytes layout, the dictionary gather and the per-row reference
/// must agree on byte for byte.
const STR_POOL: &[&str] = &[
    "",
    "a",
    "A",
    "abc",
    "abd",
    "abcdef",
    "naïve",
    "übung",
    "日本語",
    "zz-9",
];

/// A one-`Str`-column table drawn from [`STR_POOL`]; `tag == 0` makes
/// the row NULL. Pool indexes repeat heavily, so dictionaries see
/// duplicate-heavy columns by construction.
fn string_table(rows: &[(usize, u8)]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("s", DataType::Str)]);
    for &(idx, tag) in rows {
        let v = if tag == 0 {
            Value::Null
        } else {
            Value::Str(STR_POOL[idx % STR_POOL.len()].to_owned())
        };
        t = t.row(vec![v]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

/// Map a join-column draw onto a value: NULL / NaN always possible,
/// ±inf only when `specials` (so roughly half the cases keep the inner
/// relation fully finite and exercise the banded sort-merge path, the
/// other half force the exhaustive fallback), and `quant` rounds to
/// integers for duplicate-heavy columns.
fn join_value(v: f64, tag: u8, specials: bool, quant: bool) -> Value {
    match tag {
        0 => Value::Null,
        1 => Value::Float(f64::NAN),
        2 if specials => Value::Float(f64::INFINITY),
        3 if specials => Value::Float(f64::NEG_INFINITY),
        _ => Value::Float(if quant {
            v.round().clamp(-20.0, 20.0)
        } else {
            v
        }),
    }
}

fn pick_op(pick: usize) -> CompareOp {
    match pick % 6 {
        0 => CompareOp::Eq,
        1 => CompareOp::Ne,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The banded sort-merge `IN` join (sorted projection over the
    /// inner relation, outward band sweep cut off by
    /// `gap + cond_lb >= best`) is bit-identical to the scalar
    /// exhaustive O(n·m) sweep — across NULL/NaN-heavy and
    /// duplicate-heavy join columns, ±inf inner values (which decline
    /// the band and fall back to the exhaustive inner loop), filtered
    /// and unfiltered inner queries, the `Exists` link, display
    /// policies, and partitioned execution.
    #[test]
    fn banded_in_join_matches_exhaustive_scalar(
        outer in prop::collection::vec((-1e3f64..1e3, 0u8..12), 1..60),
        inner in prop::collection::vec((-1e3f64..1e3, 0u8..12), 1..60),
        threshold in -1e3f64..1e3,
        filter_t in -1e3f64..1e3,
        specials in 0u8..2,
        quant in 0u8..2,
        with_filter in 0u8..2,
        use_exists in 0u8..2,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let mut t = TableBuilder::new("O", vec![Column::new("x", DataType::Float)]);
        for &(v, tag) in &outer {
            t = t.row(vec![join_value(v, tag, specials == 1, quant == 1)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(t.build());
        let mut t = TableBuilder::new("I", vec![Column::new("y", DataType::Float)]);
        for &(v, tag) in &inner {
            t = t.row(vec![join_value(v, tag, specials == 1, quant == 1)]).unwrap();
        }
        db.add_table(t.build());
        let t = db.table("O").unwrap();
        let resolver = DistanceResolver::new();
        let sub = if with_filter == 1 {
            QueryBuilder::from_tables(["I"]).cmp("y", CompareOp::Le, filter_t).build()
        } else {
            QueryBuilder::from_tables(["I"]).build()
        };
        let qb = QueryBuilder::from_tables(["O"]).cmp("x", CompareOp::Ge, threshold);
        let q = if use_exists == 1 {
            qb.exists(sub).build()
        } else {
            qb.is_in("x", "y", sub).build()
        };
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
                for parts in [1usize, 3] {
                    let part = run_pipeline_partitioned(
                        &db, t, &resolver, q.condition.as_ref(), &policy, parts).unwrap();
                    let diff = first_divergence(&part, &slow, &policy);
                    prop_assert!(
                        diff.is_none(),
                        "{} with {} partitions under {:?}", diff.unwrap(), parts, policy
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// String predicates through the dictionary-gather path (distance
    /// evaluated once per distinct value, gathered per row through the
    /// codes — no per-row `Value` clone) are bit-identical to the
    /// per-row scalar reference — across every comparison operator,
    /// string ranges, NULL-heavy / empty-string / non-ASCII /
    /// duplicate-heavy columns, and the materialized, Auto-streaming
    /// (the `Gather` stream kind) and partitioned modes.
    #[test]
    fn string_gather_kernels_match_scalar_reference(
        rows in prop::collection::vec((0usize..10, 0u8..5), 1..120),
        needle in 0usize..10,
        lo in 0usize..10,
        hi in 0usize..10,
        with_range in 0u8..2,
        op_pick in 0usize..6,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let db = string_table(&rows);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let needle_s = STR_POOL[needle % STR_POOL.len()];
        let (a, b) = (STR_POOL[lo % STR_POOL.len()], STR_POOL[hi % STR_POOL.len()]);
        let (lo_s, hi_s) = if a <= b { (a, b) } else { (b, a) };
        let qb = QueryBuilder::from_tables(["T"]).cmp("s", pick_op(op_pick), needle_s);
        let q = if with_range == 1 {
            qb.between("s", lo_s, hi_s).build()
        } else {
            qb.build()
        };
        let policy = pick_policy(pick, pct);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        let stream = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (stream, slow) {
            (Ok(stream), Ok(slow)) => {
                let diff = first_divergence(&stream, &slow, &policy);
                prop_assert!(diff.is_none(), "streaming: {} under {:?}", diff.unwrap(), policy);
                let mat = run_pipeline_opts(
                    &db, t, &resolver, q.condition.as_ref(), &policy,
                    PipelineOptions {
                        materialization: Materialization::Materialized,
                        ..Default::default()
                    },
                ).unwrap();
                let diff = first_divergence(&mat, &slow, &policy);
                prop_assert!(diff.is_none(), "materialized: {} under {:?}", diff.unwrap(), policy);
                for parts in [2usize, 7] {
                    let part = run_pipeline_partitioned(
                        &db, t, &resolver, q.condition.as_ref(), &policy, parts).unwrap();
                    let diff = first_divergence(&part, &slow, &policy);
                    prop_assert!(
                        diff.is_none(),
                        "partitioned({}): {} under {:?}", parts, diff.unwrap(), policy
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Approximate string `IN` joins (the dictionary-gathered join: one
    /// distance evaluation per distinct outer value against the inner
    /// relation) are bit-identical to the scalar per-row exhaustive
    /// sweep, on NULL-heavy / empty-string / non-ASCII /
    /// duplicate-heavy key columns.
    #[test]
    fn gathered_string_join_matches_exhaustive_scalar(
        outer in prop::collection::vec((0usize..10, 0u8..5), 1..60),
        inner in prop::collection::vec((0usize..10, 0u8..5), 1..60),
        filter in 0usize..10,
        with_filter in 0u8..2,
        op_pick in 0usize..6,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let mk = |name: &str, rows: &[(usize, u8)]| {
            let mut t = TableBuilder::new(name, vec![Column::new("s", DataType::Str)]);
            for &(idx, tag) in rows {
                let v = if tag == 0 {
                    Value::Null
                } else {
                    Value::Str(STR_POOL[idx % STR_POOL.len()].to_owned())
                };
                t = t.row(vec![v]).unwrap();
            }
            t.build()
        };
        let mut db = Database::new("d");
        db.add_table(mk("A", &outer));
        db.add_table(mk("B", &inner));
        let t = db.table("A").unwrap();
        let resolver = DistanceResolver::new();
        let sub = if with_filter == 1 {
            QueryBuilder::from_tables(["B"])
                .cmp("s", pick_op(op_pick), STR_POOL[filter % STR_POOL.len()])
                .build()
        } else {
            QueryBuilder::from_tables(["B"]).build()
        };
        let q = QueryBuilder::from_tables(["A"]).is_in("s", "s", sub).build();
        let policy = pick_policy(pick, pct);
        let fast = run_pipeline(&db, t, &resolver, q.condition.as_ref(), &policy);
        let slow = run_pipeline_scalar(&db, t, &resolver, q.condition.as_ref(), &policy);
        match (fast, slow) {
            (Ok(fast), Ok(slow)) => {
                let diff = first_divergence(&fast, &slow, &policy);
                prop_assert!(diff.is_none(), "{} under {:?}", diff.unwrap(), policy);
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }

    /// Connections over a cross-product base relation now stream (the
    /// `Connection` stream kind evaluates the same per-row closures the
    /// materialized path uses): Auto-streaming, materialized and
    /// partitioned outputs are all bit-identical to the scalar
    /// reference for equi- and non-equijoins on NULL/NaN-bearing
    /// columns.
    #[test]
    fn streamed_connections_match_scalar_reference(
        left in prop::collection::vec((-1e3f64..1e3, 0u8..8), 1..16),
        right in prop::collection::vec((-1e3f64..1e3, 0u8..8), 1..16),
        threshold in -1e3f64..1e3,
        non_equi in 0u8..2,
        op_pick in 0usize..6,
        pct in 1.0f64..100.0,
        pick in 0usize..4,
    ) {
        let mk = |name: &str, col: &str, rows: &[(f64, u8)]| {
            let mut t = TableBuilder::new(name, vec![Column::new(col, DataType::Float)]);
            for &(v, tag) in rows {
                let x = match tag {
                    0 => Value::Null,
                    1 => Value::Float(f64::NAN),
                    _ => Value::Float(v),
                };
                t = t.row(vec![x]).unwrap();
            }
            t.build()
        };
        let mut db = Database::new("d");
        db.add_table(mk("L", "a", &left));
        db.add_table(mk("R", "b", &right));
        let cross = db.table("L").unwrap().cross_product(db.table("R").unwrap(), "LxR");
        let resolver = DistanceResolver::new();
        let kind = if non_equi == 1 {
            ConnectionKind::NonEqui {
                left: AttrRef::new("a"),
                op: pick_op(op_pick),
                right: AttrRef::new("b"),
            }
        } else {
            ConnectionKind::Equi { left: AttrRef::new("a"), right: AttrRef::new("b") }
        };
        let def = ConnectionDef {
            name: "joins".into(),
            left_table: "L".into(),
            right_table: "R".into(),
            kind,
        };
        let u = def.instantiate(vec![]).unwrap();
        let q = QueryBuilder::from_tables(["L", "R"])
            .cmp("a", CompareOp::Ge, threshold)
            .connect(u)
            .build();
        let policy = pick_policy(pick, pct);
        let slow = run_pipeline_scalar(&db, &cross, &resolver, q.condition.as_ref(), &policy);
        let stream = run_pipeline(&db, &cross, &resolver, q.condition.as_ref(), &policy);
        match (stream, slow) {
            (Ok(stream), Ok(slow)) => {
                let diff = first_divergence(&stream, &slow, &policy);
                prop_assert!(diff.is_none(), "streaming: {} under {:?}", diff.unwrap(), policy);
                let mat = run_pipeline_opts(
                    &db, &cross, &resolver, q.condition.as_ref(), &policy,
                    PipelineOptions {
                        materialization: Materialization::Materialized,
                        ..Default::default()
                    },
                ).unwrap();
                let diff = first_divergence(&mat, &slow, &policy);
                prop_assert!(diff.is_none(), "materialized: {} under {:?}", diff.unwrap(), policy);
                for parts in [2usize, 5] {
                    let part = run_pipeline_partitioned(
                        &db, &cross, &resolver, q.condition.as_ref(), &policy, parts).unwrap();
                    let diff = first_divergence(&part, &slow, &policy);
                    prop_assert!(
                        diff.is_none(),
                        "partitioned({}): {} under {:?}", parts, diff.unwrap(), policy
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (f, s) => prop_assert!(false, "one mode errored: {f:?} vs {s:?}"),
        }
    }
}
