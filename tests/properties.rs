//! Cross-crate property-based tests: pipeline invariants on arbitrary
//! data and queries.

use proptest::prelude::*;
use visdb::prelude::*;

fn table_from(values: &[f64]) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for &v in values {
        t = t.row(vec![Value::Float(v)]).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pipeline invariants hold for arbitrary data and thresholds.
    #[test]
    fn pipeline_invariants(
        values in prop::collection::vec(-1e4f64..1e4, 1..300),
        threshold in -1e4f64..1e4,
        pct in 1.0f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, threshold)
            .build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(pct)).unwrap();

        // exact count matches the straight count
        let expect_exact = values.iter().filter(|&&v| v >= threshold).count();
        prop_assert_eq!(out.num_exact, expect_exact);

        // combined distances normalized into [0, 255]
        for d in out.combined.iter().flatten() {
            prop_assert!((0.0..=255.0).contains(d));
        }
        // relevance is the mirror of combined
        for i in 0..out.n {
            match (out.combined[i], out.relevance[i]) {
                (Some(c), Some(r)) => prop_assert!((c + r - 255.0).abs() < 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "mismatched defined-ness {other:?}"),
            }
        }
        // order sorted ascending by combined, displayed a prefix
        for w in out.order.windows(2) {
            prop_assert!(out.combined[w[0]] <= out.combined[w[1]]);
        }
        prop_assert_eq!(&out.order[..out.displayed.len()], &out.displayed[..]);
        // display count respects the percentage
        let max_k = ((pct / 100.0) * values.len() as f64).round() as usize;
        prop_assert!(out.displayed.len() <= max_k.max(1));
    }

    /// AND is never more permissive than its parts; OR never less.
    #[test]
    fn boolean_semantics_of_exact_answers(
        values in prop::collection::vec(-100f64..100.0, 1..200),
        lo in -100f64..100.0,
        hi in -100f64..100.0,
    ) {
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let run = |q: Query| {
            run_pipeline(&db, t, &resolver, q.condition.as_ref(),
                &DisplayPolicy::Percentage(100.0)).unwrap().num_exact
        };
        let a = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, lo).build());
        let b = run(QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Le, hi).build());
        let and = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .all().build());
        let or = run(QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, lo)
            .cmp("x", CompareOp::Le, hi)
            .any().build());
        prop_assert!(and <= a.min(b));
        prop_assert!(or >= a.max(b));
        // inclusion-exclusion for these two complementary-ish predicates
        prop_assert_eq!(and + or, a + b);
    }

    /// The spiral arrangement places the displayed prefix without loss
    /// (window large enough) and rank 0 at the center cell.
    #[test]
    fn arrangement_preserves_displayed_items(
        n in 1usize..150,
        side in 13usize..20,
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, 0.0).build();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        let grid = arrange_overall(&out.displayed, side, side);
        prop_assert_eq!(grid.occupied(), out.displayed.len().min(side * side));
        if !out.displayed.is_empty() {
            let c = (side - 1) / 2;
            prop_assert_eq!(grid.get(c, c), Some(out.displayed[0] as u32));
        }
    }

    /// Boolean baseline and distance pipeline agree on which items are
    /// exact answers for >= / <= predicates (no strictness mismatch).
    #[test]
    fn baseline_agrees_with_distance_zero(
        values in prop::collection::vec(-50f64..50.0, 1..100),
        threshold in -50f64..50.0,
    ) {
        use visdb::baseline::evaluate_boolean;
        let db = table_from(&values);
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"]).cmp("x", CompareOp::Ge, threshold).build();
        let cond = q.condition.as_ref().unwrap();
        let exact = evaluate_boolean(&db, t, &cond.node).unwrap();
        let resolver = DistanceResolver::new();
        let out = run_pipeline(&db, t, &resolver, q.condition.as_ref(),
            &DisplayPolicy::Percentage(100.0)).unwrap();
        for (i, &e) in exact.iter().enumerate() {
            prop_assert_eq!(e, out.combined[i] == Some(0.0), "row {}", i);
        }
    }
}
