//! Fault-injection suite: inject panics, slow chunks and forced
//! cancellations at every pipeline phase in every execution mode, and
//! assert the failure contract end to end —
//!
//! * the response is a structured `Response::Error` with the right
//!   `kind`, never a dead worker, a hung session or a poisoned slot;
//! * re-asking the identical query afterwards is byte-identical to a
//!   service that was never disturbed (no partial cache entries, no
//!   half-written session state);
//! * deadline-exceeded queries return promptly (the walk polls its
//!   token once per 16k-row chunk, so the overrun is bounded by one
//!   chunk quantum);
//! * past the admission watermark new work is shed with a retry-after
//!   hint while admitted work runs to completion.
//!
//! Injection is process-global, guarded by the `FaultGuard` lock — the
//! tests in this file serialize on it by design.

use std::sync::Arc;
use std::time::{Duration, Instant};

use visdb::exec::{fault, FaultAction, Phase};
use visdb::prelude::*;
use visdb::service::PendingResponse;

/// Rows in the test relation: several 16k chunks, so every phase of
/// every mode takes multiple polls.
const N: usize = 40_000;

const PHASES: [Phase; 4] = [
    Phase::Distance,
    Phase::Fit,
    Phase::NormalizeCombine,
    Phase::Rank,
];

/// One execution mode of the service, as the matrix axis.
struct Mode {
    name: &'static str,
    workers: usize,
    partitions: usize,
    materialization: Materialization,
}

const MODES: [Mode; 4] = [
    // workers=1 drives the whole pipeline serially (budget-1 runs
    // inline) — the closest service-level analogue of the scalar walk;
    // the ExecMode::Scalar reference path itself is covered by
    // `scalar_reference_path_polls_its_token` below
    Mode {
        name: "serial",
        workers: 1,
        partitions: 0,
        materialization: Materialization::Materialized,
    },
    Mode {
        name: "materialized",
        workers: 4,
        partitions: 0,
        materialization: Materialization::Materialized,
    },
    Mode {
        name: "streaming",
        workers: 4,
        partitions: 0,
        materialization: Materialization::Streaming,
    },
    Mode {
        name: "partitioned",
        workers: 4,
        partitions: 4,
        materialization: Materialization::Materialized,
    },
];

fn ramp_db(n: usize) -> Arc<Database> {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for i in 0..n {
        t = t.row(vec![Value::Float(i as f64)]).unwrap();
    }
    let mut db = Database::new("ramp");
    db.add_table(t.build());
    Arc::new(db)
}

fn service_in(mode: &Mode, n: usize) -> (Service, SessionId) {
    let s = Service::new(ServiceConfig {
        workers: mode.workers,
        partitions: mode.partitions,
        materialization: mode.materialization,
        ..Default::default()
    });
    s.register_dataset("ramp", ramp_db(n), ConnectionRegistry::new());
    let id = s.create_session("ramp").unwrap();
    (s, id)
}

/// The interaction whose responses the byte-identity checks compare:
/// install a query, then fetch both the summary and the rendered frame.
fn ask(s: &Service, id: SessionId) -> Vec<Response> {
    [
        Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into()),
        Request::Summary { trace: false },
        Request::Render(RenderFormat::Ppm),
    ]
    .into_iter()
    .map(|req| s.submit(id, req).unwrap())
    .collect()
}

/// Submit with a cancel token attached (a `request_id` is enough to
/// mint one), so the chunk walks poll and armed faults can fire.
fn ask_with_token(s: &Service, id: SessionId, rid: u64) -> Response {
    s.submit_opts(
        id,
        Request::Summary { trace: false },
        SubmitOptions {
            deadline: None,
            request_id: Some(rid),
        },
    )
    .unwrap()
}

/// Panic and forced-cancel faults at every phase of every mode: the
/// response is structured, the worker pool survives, and the session
/// afterwards answers byte-identically to an undisturbed service.
#[test]
fn every_phase_of_every_mode_contains_panics_and_cancels() {
    for mode in &MODES {
        let (undisturbed, uid) = service_in(mode, N);
        let reference = ask(&undisturbed, uid);
        for phase in PHASES {
            for action in [FaultAction::Panic, FaultAction::Cancel] {
                let (s, id) = service_in(mode, N);
                assert_eq!(
                    s.submit(
                        id,
                        Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into())
                    )
                    .unwrap(),
                    Response::Ok
                );
                let before = fault::triggered();
                let response = {
                    let _guard = fault::inject(phase, action);
                    ask_with_token(&s, id, 7)
                };
                assert!(
                    fault::triggered() > before,
                    "[{} {phase:?} {action:?}] the injected fault never fired — \
                     this phase is not polling its token in this mode",
                    mode.name
                );
                match (&action, &response) {
                    (FaultAction::Panic, Response::Error { kind, .. }) => assert_eq!(
                        *kind,
                        ErrorKind::Internal,
                        "[{} {phase:?}] {response:?}",
                        mode.name
                    ),
                    (FaultAction::Cancel, Response::Error { kind, .. }) => assert_eq!(
                        *kind,
                        ErrorKind::Cancelled,
                        "[{} {phase:?}] {response:?}",
                        mode.name
                    ),
                    _ => panic!(
                        "[{} {phase:?} {action:?}] expected a structured error, got {response:?}",
                        mode.name
                    ),
                }
                // the worker survived and the session is not wedged
                assert_eq!(s.submit(id, Request::Ping).unwrap(), Response::Ok);
                // the identical interaction now answers byte-identically
                // to a never-disturbed service: nothing half-written
                // survived in the session, and no partial entry landed
                // in any cache
                assert_eq!(
                    ask(&s, id),
                    reference,
                    "[{} {phase:?} {action:?}] disturbed service diverged on re-ask",
                    mode.name
                );
            }
        }
        // the disturbances were counted, not swallowed
        let t = undisturbed.telemetry();
        assert_eq!(t.panics + t.cancelled, 0, "undisturbed service is clean");
    }
}

/// Slow chunks + a deadline in every mode: the injected delay makes the
/// distance walk crawl, the deadline trips mid-walk, and the query
/// comes back `DeadlineExceeded` — long before the slowed walk could
/// have finished, bounded by one chunk quantum past the deadline.
#[test]
fn slow_chunks_plus_deadline_exceed_in_every_mode() {
    for mode in &MODES {
        let (s, id) = service_in(mode, N);
        assert_eq!(
            s.submit(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into())
            )
            .unwrap(),
            Response::Ok
        );
        let before = fault::triggered();
        let (response, elapsed) = {
            let _guard = fault::inject(Phase::Distance, FaultAction::Delay(TICK));
            let started = Instant::now();
            let r = s
                .submit_opts(
                    id,
                    Request::Summary { trace: false },
                    SubmitOptions {
                        deadline: Some(DEADLINE),
                        request_id: None,
                    },
                )
                .unwrap();
            (r, started.elapsed())
        };
        match &response {
            Response::Error { kind, .. } => assert_eq!(
                *kind,
                ErrorKind::DeadlineExceeded,
                "[{}] {response:?}",
                mode.name
            ),
            other => panic!("[{}] expected deadline error, got {other:?}", mode.name),
        }
        // every poll of the distance walk slept TICK; stopping at the
        // deadline means only a handful fired before the token tripped
        let fired = fault::triggered() - before;
        assert!(
            fired >= 1,
            "[{}] the slow-chunk fault must actually fire",
            mode.name
        );
        // bound: the deadline, plus one in-flight sleep per worker that
        // was mid-chunk when it tripped, plus scheduling slack — far
        // below what draining the whole slowed walk would take
        let quantum = TICK * (mode.workers as u32 + 1);
        assert!(
            elapsed < DEADLINE + quantum + Duration::from_millis(500),
            "[{}] deadline overrun: {elapsed:?} (deadline {DEADLINE:?})",
            mode.name
        );
        // the session recovers to exact, undisturbed answers
        match s.submit(id, Request::Summary { trace: false }).unwrap() {
            Response::Summary(sum) => assert_eq!(sum.exact, 10_000),
            other => panic!("[{}] expected summary, got {other:?}", mode.name),
        }
        assert!(s.telemetry().deadline_exceeded >= 1);
    }
}

/// Per-chunk delay of the slow-chunk tests.
const TICK: Duration = Duration::from_millis(60);
/// Deadline short enough that the first slowed chunks exhaust it.
const DEADLINE: Duration = Duration::from_millis(120);

/// The ExecMode::Scalar reference path (not reachable through the
/// service, which always plans vectorized) polls the same token: a
/// forced cancel mid-walk surfaces as `Error::Cancelled` and a re-run
/// is bit-identical to an undisturbed scalar run.
#[test]
fn scalar_reference_path_polls_its_token() {
    use visdb::exec::CancelToken;
    use visdb::relevance::ExecMode;

    let db = ramp_db(N);
    let table = db.table("T").unwrap();
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, 30_000.0)
        .build();
    let policy = DisplayPolicy::Percentage(30.0);
    let scalar_opts = || PipelineOptions {
        mode: ExecMode::Scalar,
        ..Default::default()
    };
    let reference = run_pipeline_opts(
        &db,
        table,
        &resolver,
        q.condition.as_ref(),
        &policy,
        scalar_opts(),
    )
    .unwrap();

    let token = CancelToken::new();
    let before = fault::triggered();
    let err = {
        let _guard = fault::inject(Phase::Distance, FaultAction::Cancel);
        run_pipeline_opts(
            &db,
            table,
            &resolver,
            q.condition.as_ref(),
            &policy,
            PipelineOptions {
                mode: ExecMode::Scalar,
                cancel: Some(&token),
                ..Default::default()
            },
        )
    };
    assert!(fault::triggered() > before, "scalar walk must poll");
    assert!(
        matches!(err, Err(Error::Cancelled)),
        "expected Err(Cancelled), got {err:?}"
    );
    // and an undisturbed re-run still agrees with the reference
    let again = run_pipeline_opts(
        &db,
        table,
        &resolver,
        q.condition.as_ref(),
        &policy,
        scalar_opts(),
    )
    .unwrap();
    assert_eq!(again.order, reference.order);
    assert_eq!(again.combined, reference.combined);
    assert_eq!(again.num_exact, reference.num_exact);
}

/// Saturation: with one worker and a watermark of 2, a burst of slow
/// queries gets partially shed — with a retry-after hint — while every
/// admitted request still runs to completion; once the burst drains,
/// new work is admitted again.
#[test]
fn saturation_sheds_new_work_while_admitted_work_completes() {
    let s = Service::new(ServiceConfig {
        workers: 1,
        pending_watermark: 2,
        ..Default::default()
    });
    s.register_dataset("ramp", ramp_db(N), ConnectionRegistry::new());
    let id = s.create_session("ramp").unwrap();
    assert_eq!(
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into())
        )
        .unwrap(),
        Response::Ok
    );
    // slow every distance chunk so the flood outpaces the one worker
    let pending: Vec<_> = {
        let _guard = fault::inject(
            Phase::Distance,
            FaultAction::Delay(Duration::from_millis(20)),
        );
        let pending: Vec<PendingResponse> = (0..8)
            .map(|rid| {
                s.submit_async_opts(
                    id,
                    Request::Summary { trace: false },
                    SubmitOptions {
                        deadline: None,
                        request_id: Some(rid),
                    },
                )
                .unwrap()
            })
            .collect();
        // hold the guard until every response resolved, so the admitted
        // queries are genuinely slow while the later ones arrive
        let responses: Vec<Response> = pending
            .into_iter()
            .map(|p: PendingResponse| p.wait().unwrap())
            .collect();
        responses
    };
    let shed: Vec<_> = pending
        .iter()
        .filter(|r| {
            matches!(
                r,
                Response::Error {
                    kind: ErrorKind::Shed,
                    ..
                }
            )
        })
        .collect();
    let completed = pending
        .iter()
        .filter(|r| matches!(r, Response::Summary(_)))
        .count();
    assert!(
        !shed.is_empty(),
        "a burst past the watermark must shed: {pending:?}"
    );
    assert!(
        completed >= 1,
        "admitted queries must complete despite the overload: {pending:?}"
    );
    for r in &shed {
        let Response::Error { retry_after_ms, .. } = r else {
            unreachable!()
        };
        assert!(
            retry_after_ms.is_some(),
            "shed responses carry a retry-after hint"
        );
    }
    let t = s.telemetry();
    assert_eq!(t.shed as usize, shed.len());
    assert_eq!(t.pending_depth, 0, "the burst fully drained");
    // the overload is over: new work is admitted and exact again
    match s.submit(id, Request::Summary { trace: false }).unwrap() {
        Response::Summary(sum) => assert_eq!(sum.exact, 10_000),
        other => panic!("expected summary, got {other:?}"),
    }
}

/// The cancel op reaches both a queued and an executing request: the
/// executing one stops at its next chunk poll, the queued one is
/// answered without ever touching the session, and the session stays
/// fully usable.
#[test]
fn cancel_reaches_queued_and_executing_requests() {
    let s = Service::new(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    s.register_dataset("ramp", ramp_db(N), ConnectionRegistry::new());
    let id = s.create_session("ramp").unwrap();
    assert_eq!(
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into())
        )
        .unwrap(),
        Response::Ok
    );
    let (first, second) = {
        // every distance chunk sleeps, so the first summary is still
        // mid-walk when the cancels land
        let _guard = fault::inject(
            Phase::Distance,
            FaultAction::Delay(Duration::from_millis(50)),
        );
        let first = s
            .submit_async_opts(
                id,
                Request::Summary { trace: false },
                SubmitOptions {
                    deadline: None,
                    request_id: Some(1),
                },
            )
            .unwrap();
        let second = s
            .submit_async_opts(
                id,
                Request::Render(RenderFormat::Ppm),
                SubmitOptions {
                    deadline: None,
                    request_id: Some(2),
                },
            )
            .unwrap();
        // let the worker sink into the first query's slowed walk
        std::thread::sleep(Duration::from_millis(60));
        assert!(s.cancel(id, 2), "queued request must be cancellable");
        assert!(s.cancel(id, 1), "executing request must be cancellable");
        (first.wait().unwrap(), second.wait().unwrap())
    };
    for (name, r) in [("executing", &first), ("queued", &second)] {
        assert!(
            matches!(
                r,
                Response::Error {
                    kind: ErrorKind::Cancelled,
                    ..
                }
            ),
            "{name} request should be cancelled, got {r:?}"
        );
    }
    // unknown ids (and already-finished requests) report false
    assert!(!s.cancel(id, 1), "finished request is no longer in flight");
    assert!(!s.cancel(id, 99));
    assert!(s.telemetry().cancelled >= 2);
    // the session is not wedged and answers exactly
    match s.submit(id, Request::Summary { trace: false }).unwrap() {
        Response::Summary(sum) => assert_eq!(sum.exact, 10_000),
        other => panic!("expected summary, got {other:?}"),
    }
}

/// A session mid-drain is exempt from the idle sweep — it is evicted
/// only after its mailbox drains (the service-level companion of the
/// manager's unit tests).
#[test]
fn idle_sweep_waits_for_in_flight_queries() {
    let s = Service::new(ServiceConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(1),
        ..Default::default()
    });
    s.register_dataset("ramp", ramp_db(N), ConnectionRegistry::new());
    let id = s.create_session("ramp").unwrap();
    assert_eq!(
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into())
        )
        .unwrap(),
        Response::Ok
    );
    let response = {
        let _guard = fault::inject(
            Phase::Distance,
            FaultAction::Delay(Duration::from_millis(50)),
        );
        let pending = s
            .submit_async_opts(
                id,
                Request::Summary { trace: false },
                // the request id mints a token, so the chunk walk polls
                // and the injected per-chunk delay applies
                SubmitOptions {
                    deadline: None,
                    request_id: Some(1),
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // the query is mid-walk and long past the 1ms idle horizon,
        // but a busy session must not be reaped under it
        assert_eq!(s.evict_idle_sessions(), 0, "in-flight session evicted");
        pending.wait().unwrap()
    };
    match response {
        Response::Summary(sum) => assert_eq!(sum.exact, 10_000),
        other => panic!("expected summary, got {other:?}"),
    }
    // drained and idle: now the sweep may take it
    std::thread::sleep(Duration::from_millis(10));
    assert_eq!(s.evict_idle_sessions(), 1);
    assert!(s.submit(id, Request::Ping).is_err(), "session evicted");
}
