//! Oversubscription regression tests: the service's global thread
//! budget must hold under many concurrent large queries.
//!
//! Before the shared runtime, every chunked pipeline walk spawned its
//! own scoped threads (up to min(16, cores)) *on top of* the service's
//! fixed worker pool, so N concurrent large queries could put
//! `workers × 16` threads in flight. Now dispatch and chunk fan-out
//! share one budgeted `visdb_exec::Runtime`: the runtime creates
//! exactly `workers` threads at startup and never more, and the peak
//! number of simultaneously *executing* workers can never exceed it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use visdb::prelude::*;

/// Both tests watch the process-wide thread count, so they must not
/// overlap (the harness runs integration tests concurrently).
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    match SERIAL.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Process-wide thread count from `/proc/self/status` (`None` off
/// Linux). This observes threads the runtime's own counters cannot —
/// the exact blind spot a regression to per-walk scoped spawns would
/// hide in.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Large enough that every query's chunk walks fan out
/// (`> PARALLEL_THRESHOLD = 32_768` rows); 1M rows under `--release`,
/// trimmed in debug builds so plain `cargo test` stays fast.
fn workload_rows() -> usize {
    if cfg!(debug_assertions) {
        150_000
    } else {
        1_000_000
    }
}

fn ramp_db(n: usize) -> Arc<Database> {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for i in 0..n {
        t = t.row(vec![Value::Float(i as f64)]).unwrap();
    }
    let mut db = Database::new("ramp");
    db.add_table(t.build());
    Arc::new(db)
}

#[test]
fn concurrent_large_queries_respect_the_global_thread_budget() {
    const BUDGET: usize = 3;
    const CLIENTS: usize = 8;
    let _serial = serialize();
    let rows = workload_rows();
    let db = ramp_db(rows);
    let service = Service::new(ServiceConfig {
        workers: BUDGET,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
    assert_eq!(service.workers(), BUDGET);
    assert_eq!(service.runtime().budget(), BUDGET);
    assert_eq!(
        service.runtime().metrics().threads,
        BUDGET,
        "the runtime creates its threads eagerly and never more"
    );

    // Watch the *OS-level* thread count while the queries run: runtime
    // counters alone would stay green even if chunk walks regressed to
    // spawning scoped threads outside the pool, which is the exact
    // oversubscription this test guards against. Baseline (runtime
    // already up) + CLIENTS submitter threads + the sampler itself is
    // the ceiling; any spawn-per-walk regression bursts past it.
    let baseline = process_threads();
    let stop = AtomicBool::new(false);
    let sampled_max = AtomicUsize::new(0);

    // N concurrent sessions, each running a large two-predicate query:
    // every summary forces a full pipeline run whose distance /
    // normalize+combine walks fan out over the shared runtime
    let results: Vec<(usize, usize)> = std::thread::scope(|scope| {
        if baseline.is_some() {
            let (stop, sampled_max) = (&stop, &sampled_max);
            scope.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if let Some(n) = process_threads() {
                        sampled_max.fetch_max(n, Ordering::AcqRel);
                    }
                    std::thread::yield_now();
                }
            });
        }
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let service = &service;
                scope.spawn(move || {
                    let id = service.create_session("ramp").expect("dataset registered");
                    let lo = (rows / 2 + c * 1000) as f64;
                    let hi = lo + (rows / 4) as f64;
                    let text = format!("SELECT * FROM T WHERE x >= {lo} AND x < {hi}");
                    service
                        .submit(id, Request::SetQueryText(text))
                        .expect("set query");
                    match service
                        .submit(id, Request::Summary { trace: false })
                        .expect("summary")
                    {
                        Response::Summary(s) => (s.objects, s.exact),
                        other => panic!("unexpected response {other:?}"),
                    }
                })
            })
            .collect();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        stop.store(true, Ordering::Release);
        results
    });

    // every query computed the right thing...
    for (c, &(objects, exact)) in results.iter().enumerate() {
        assert_eq!(objects, rows, "client {c}");
        // distance functions do not distinguish < from <=, so the
        // closed interval [lo, hi] is exact: rows/4 + 1 integer points
        assert_eq!(exact, rows / 4 + 1, "client {c}");
    }

    // ...and the budget held: no thread beyond the three created at
    // startup ever existed, and at no instant were more than BUDGET
    // workers executing
    let metrics = service.runtime().metrics();
    assert_eq!(metrics.threads, BUDGET);
    assert!(
        metrics.peak_active <= BUDGET,
        "peak {} live workers exceeds the budget {BUDGET}",
        metrics.peak_active
    );
    assert!(
        metrics.jobs_executed >= CLIENTS,
        "each session drain ran as a runtime job"
    );
    if let Some(baseline) = baseline {
        let ceiling = baseline + CLIENTS + 1; // submitters + the sampler
        let peak = sampled_max.load(Ordering::Acquire);
        assert!(
            peak <= ceiling,
            "process grew from {baseline} to {peak} threads mid-run (ceiling {ceiling}): \
             something is spawning outside the budgeted runtime"
        );
    }
}

#[test]
fn partitioned_service_execution_stays_within_budget_and_byte_identical() {
    const BUDGET: usize = 2;
    let _serial = serialize();
    let rows = workload_rows() / 2;
    let db = ramp_db(rows);
    let query = format!("SELECT * FROM T WHERE x >= {}", (rows / 2) as f64);

    let drive = |partitions: usize| -> (Response, usize) {
        let service = Service::new(ServiceConfig {
            workers: BUDGET,
            partitions,
            ..Default::default()
        });
        service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
        let id = service.create_session("ramp").unwrap();
        service
            .submit(id, Request::SetQueryText(query.clone()))
            .unwrap();
        let frame = service
            .submit(id, Request::Render(RenderFormat::Ppm))
            .unwrap();
        let peak = service.runtime().metrics().peak_active;
        (frame, peak)
    };

    let (plain, peak_plain) = drive(0);
    let (partitioned, peak_partitioned) = drive(7);
    assert_eq!(
        plain, partitioned,
        "partitioned execution must be byte-identical"
    );
    assert!(peak_plain <= BUDGET);
    assert!(peak_partitioned <= BUDGET);
}
