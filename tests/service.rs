//! Integration tests for the serving layer: many concurrent sessions
//! over one shared database must behave exactly like the single-user
//! `Session` of the paper, and the shared query-result cache must serve
//! repeated queries without re-running the pipeline.

use std::sync::Arc;

use visdb::prelude::*;
use visdb::service::{execute, SessionState};

/// One client's §4.3 interaction script, parameterized so distinct
/// clients exercise distinct queries (and two chosen clients collide on
/// purpose to hit the shared cache).
fn script(threshold: usize) -> Vec<Request> {
    vec![
        Request::SetWindowSize { w: 16, h: 16 },
        Request::SetDisplayPolicy(DisplayPolicy::Percentage(50.0)),
        Request::SetQueryText(format!("SELECT * FROM T WHERE x >= {threshold}")),
        Request::Summary { trace: false },
        Request::Render(RenderFormat::Ascii),
        // drag the slider and look again
        Request::MoveSlider {
            window: 0,
            op: CompareOp::Ge,
            value: (threshold / 2) as f64,
        },
        Request::Summary { trace: false },
        Request::Render(RenderFormat::Ppm),
    ]
}

fn ramp_db(n: usize) -> Arc<Database> {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for i in 0..n {
        t = t.row(vec![Value::Float(i as f64)]).unwrap();
    }
    let mut db = Database::new("ramp");
    db.add_table(t.build());
    Arc::new(db)
}

/// Run a client's script on a plain single-threaded session — the
/// paper's original mode — through the exact same execution path the
/// service workers use (minus pool and cache).
fn serial_reference(db: &Arc<Database>, script: &[Request]) -> Vec<Response> {
    let mut session = Session::new(Arc::clone(db), ConnectionRegistry::new());
    session.set_auto_recalculate(false); // the service's lazy mode
    let mut state = SessionState {
        session,
        dataset: "ramp".into(),
    };
    script
        .iter()
        .map(|req| execute(&mut state, req, None))
        .collect()
}

#[test]
fn concurrent_sessions_match_serial_sessions_byte_for_byte() {
    const CLIENTS: usize = 8;
    let db = ramp_db(2_000);
    let service = Service::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());

    // clients 0 and 1 run identical scripts (the shared-cache case);
    // the rest are distinct
    let thresholds: Vec<usize> = (0..CLIENTS)
        .map(|c| {
            if c == 1 {
                client_threshold(0)
            } else {
                client_threshold(c)
            }
        })
        .collect();

    // every client on its own thread, all sessions over one Arc<Database>
    let concurrent: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = thresholds
            .iter()
            .map(|&threshold| {
                let service = &service;
                scope.spawn(move || {
                    let id = service.create_session("ramp").expect("registered dataset");
                    script(threshold)
                        .into_iter()
                        .map(|req| service.submit(id, req).expect("live session"))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    assert_eq!(service.session_count(), CLIENTS);
    for (client, (&threshold, responses)) in thresholds.iter().zip(&concurrent).enumerate() {
        let expected = serial_reference(&db, &script(threshold));
        assert_eq!(
            responses, &expected,
            "client {client} diverged from the serial session"
        );
        // sanity: the script produced real payloads, not errors
        assert!(matches!(responses[3], Response::Summary(_)));
        assert!(
            matches!(&responses[7], Response::Frame { bytes, .. } if bytes.starts_with(b"P6\n"))
        );
    }
}

fn client_threshold(client: usize) -> usize {
    1_000 + client * 97
}

#[test]
fn repeated_query_is_served_from_the_shared_cache() {
    let db = ramp_db(500);
    let service = Service::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());

    let first = service.create_session("ramp").unwrap();
    let second = service.create_session("ramp").unwrap();
    let ask = |id, req| service.submit(id, req).unwrap();

    for id in [first, second] {
        assert_eq!(
            ask(
                id,
                Request::SetQueryText("SELECT * FROM T WHERE x >= 400".into())
            ),
            Response::Ok
        );
    }
    let miss = ask(first, Request::Render(RenderFormat::Ppm));
    let stats_after_miss = service.telemetry().query_cache;
    assert_eq!(stats_after_miss.hits, 0);
    assert_eq!(stats_after_miss.misses, 1);

    // the second user repeats the query: served from the cache, no
    // pipeline run
    let hit = ask(second, Request::Render(RenderFormat::Ppm));
    let stats_after_hit = service.telemetry().query_cache;
    assert_eq!(
        stats_after_hit.hits, 1,
        "repeated render must hit the cache"
    );
    assert_eq!(stats_after_hit.misses, 1, "no second pipeline run");
    assert_eq!(miss, hit, "cached response must be identical");

    // ...and it still matches a from-scratch serial computation
    let serial = serial_reference(
        &db,
        &[
            Request::SetQueryText("SELECT * FROM T WHERE x >= 400".into()),
            Request::Render(RenderFormat::Ppm),
        ],
    );
    assert_eq!(serial[1], hit);

    // a *different* query does not collide with the cached entry
    assert_eq!(
        ask(
            second,
            Request::MoveSlider {
                window: 0,
                op: CompareOp::Ge,
                value: 100.0
            }
        ),
        Response::Ok
    );
    let other = ask(second, Request::Render(RenderFormat::Ppm));
    assert_ne!(other, hit);
    assert_eq!(service.telemetry().query_cache.misses, 2);
}

#[test]
fn concurrent_sessions_share_one_sorted_projection_build() {
    // The slider fast path's per-column sorted projection (~20 B/row) is
    // promoted to a shared per-(generation, column) cache: N sessions
    // dragging the same column must trigger exactly one build.
    let db = ramp_db(2_000);
    let service = Service::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());

    const CLIENTS: usize = 4;
    let ids: Vec<_> = (0..CLIENTS)
        .map(|_| service.create_session("ramp").unwrap())
        .collect();
    for &id in &ids {
        assert_eq!(
            service
                .submit(
                    id,
                    Request::SetQueryText("SELECT * FROM T WHERE x >= 1500".into())
                )
                .unwrap(),
            Response::Ok
        );
    }
    // sequential first drags: the first session builds, the rest hit
    for (i, &id) in ids.iter().enumerate() {
        let drag = service
            .submit(
                id,
                Request::DragSlider {
                    window: 0,
                    op: CompareOp::Ge,
                    value: 1600.0,
                    trace: false,
                },
            )
            .unwrap();
        assert_eq!(
            drag,
            Response::Drag {
                displayed: 500,
                exact: 400,
                incremental: true,
                trace: None
            },
            "client {i}"
        );
    }
    let stats = service.telemetry().projection_cache;
    assert_eq!(stats.misses, 1, "exactly one projection build");
    assert_eq!(stats.hits, CLIENTS - 1, "every other session reuses it");

    // concurrent follow-up drags: per-session indexes are warm, results
    // stay correct under parallel submission
    let responses: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                scope.spawn(move || {
                    service
                        .submit(
                            id,
                            Request::DragSlider {
                                window: 0,
                                op: CompareOp::Ge,
                                value: 1700.0,
                                trace: false,
                            },
                        )
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in responses {
        assert_eq!(
            r,
            Response::Drag {
                displayed: 500,
                exact: 300,
                incremental: true,
                trace: None
            }
        );
    }
    assert_eq!(
        service.telemetry().projection_cache.misses,
        1,
        "warm sessions never rebuild"
    );

    // the drag answers match a serial single-user session exactly
    let mut serial = Session::new(Arc::clone(&db), ConnectionRegistry::new());
    serial.set_auto_recalculate(false);
    serial
        .set_query_text("SELECT * FROM T WHERE x >= 1500")
        .unwrap();
    let reference = serial
        .drag_slider(
            0,
            PredicateTarget::Compare {
                op: CompareOp::Ge,
                value: Value::Float(1700.0),
            },
        )
        .unwrap();
    assert_eq!(reference.displayed.len(), 500);
    assert_eq!(reference.num_exact, 300);
    assert!(reference.incremental);

    // generation rotation evicts the shared build: a session over the
    // re-registered dataset triggers a fresh one
    service.register_dataset("ramp", ramp_db(2_000), ConnectionRegistry::new());
    let fresh = service.create_session("ramp").unwrap();
    service
        .submit(
            fresh,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 1500".into()),
        )
        .unwrap();
    service
        .submit(
            fresh,
            Request::DragSlider {
                window: 0,
                op: CompareOp::Ge,
                value: 1600.0,
                trace: false,
            },
        )
        .unwrap();
    assert_eq!(
        service.telemetry().projection_cache.misses,
        2,
        "the rotated generation must rebuild"
    );
}

#[test]
fn streaming_service_is_byte_identical_to_materialized() {
    // the ServiceConfig materialization knob: a streaming service must
    // produce byte-identical responses to the default (materialized,
    // window-cached) service for the same scripts
    let db = ramp_db(1_500);
    let run = |materialization| {
        let service = Service::new(ServiceConfig {
            workers: 2,
            cache_capacity: 0,
            materialization,
            ..Default::default()
        });
        service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
        let id = service.create_session("ramp").unwrap();
        let responses: Vec<Response> = script(1_000)
            .into_iter()
            .map(|req| service.submit(id, req).unwrap())
            .collect();
        (responses, service.telemetry().window_cache)
    };
    let (materialized, _) = run(visdb::relevance::Materialization::Auto);
    let (streamed, window_stats) = run(visdb::relevance::Materialization::Streaming);
    assert_eq!(streamed, materialized, "streaming must not change bytes");
    assert_eq!(
        window_stats.hits + window_stats.misses,
        0,
        "forced streaming bypasses the shared window cache"
    );
}

#[test]
fn sessions_survive_errors_and_eviction_frees_capacity() {
    let service = Service::new(ServiceConfig {
        workers: 2,
        max_sessions: 2,
        ..Default::default()
    });
    service.register_dataset("ramp", ramp_db(100), ConnectionRegistry::new());

    let a = service.create_session("ramp").unwrap();
    let b = service.create_session("ramp").unwrap();
    // a bad query is an error response, not a dead session
    assert!(matches!(
        service
            .submit(a, Request::SetQueryText("SELECT".into()))
            .unwrap(),
        Response::Error { .. }
    ));
    assert_eq!(service.submit(a, Request::Ping).unwrap(), Response::Ok);

    // at capacity, creating a third session LRU-evicts the stalest (b:
    // `a` was touched by the ping just now)
    let c = service.create_session("ramp").unwrap();
    assert_eq!(service.session_count(), 2);
    assert!(service.submit(b, Request::Ping).is_err(), "b was evicted");
    assert_eq!(service.submit(a, Request::Ping).unwrap(), Response::Ok);
    assert_eq!(service.submit(c, Request::Ping).unwrap(), Response::Ok);
}

#[test]
fn packed_frames_survive_edge_data_through_the_window_cache() {
    // Edge data for the packed `DistanceFrame` representation: an
    // all-NULL column, a NaN-riddled column, and a zero-row relation.
    // Responses must round-trip the shared window cache byte-for-byte —
    // a cached (packed) window must reproduce exactly the frames a cold
    // evaluation renders.
    let mut db = Database::new("edge");
    let mut t = TableBuilder::new(
        "E",
        vec![
            Column::new("dead", DataType::Float), // all NULL
            Column::new("x", DataType::Float),    // NaN-heavy
        ],
    );
    for i in 0..120 {
        let x = if i % 3 == 0 {
            Value::Float(f64::NAN)
        } else {
            Value::Float(i as f64)
        };
        t = t.row(vec![Value::Null, x]).unwrap();
    }
    db.add_table(t.build());
    db.add_table(TableBuilder::new("Z", vec![Column::new("x", DataType::Float)]).build());
    let db = Arc::new(db);

    let drive = |service: &Service, text: &str| -> Vec<Response> {
        let id = service.create_session("edge").unwrap();
        [
            Request::SetWindowSize { w: 8, h: 8 },
            Request::SetDisplayPolicy(DisplayPolicy::Percentage(50.0)),
            Request::SetQueryText(text.into()),
            Request::Summary { trace: false },
            Request::Render(RenderFormat::Ascii),
        ]
        .into_iter()
        .map(|req| service.submit(id, req).unwrap())
        .collect()
    };
    let queries = [
        "SELECT * FROM E WHERE dead >= 10", // all-undefined window
        "SELECT * FROM E WHERE x >= 60 AND x < 100", // NaN-heavy windows
        "SELECT * FROM Z WHERE x >= 1",     // zero-row relation
    ];

    let warm = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0, // only the *window* cache may dedupe
        ..Default::default()
    });
    warm.register_dataset("edge", Arc::clone(&db), ConnectionRegistry::new());
    let cold = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        window_cache_capacity: 0,
        ..Default::default()
    });
    cold.register_dataset("edge", Arc::clone(&db), ConnectionRegistry::new());

    for q in queries {
        let first = drive(&warm, q);
        let cached = drive(&warm, q); // every window served from cache
        assert_eq!(first, cached, "cached windows must round-trip: {q}");
        assert_eq!(drive(&cold, q), first, "cold run must agree: {q}");
        for r in &first {
            assert!(!matches!(r, Response::Error { .. }), "{q}: {r:?}");
        }
    }
    assert!(
        warm.telemetry().window_cache.hits >= 2,
        "edge windows must actually be served from the cache"
    );
}

#[test]
fn shared_windows_are_reused_across_sessions_and_stay_byte_identical() {
    // Two sessions issue overlapping two-predicate queries that differ
    // in exactly one predicate: the unchanged `x < 150` window must be
    // served from the shared predicate-window cache for the second
    // session, and its responses must be byte-identical to a cold run.
    let db = ramp_db(200);
    let q1 = "SELECT * FROM T WHERE x >= 100 AND x < 150";
    let q2 = "SELECT * FROM T WHERE x >= 120 AND x < 150";
    let drive = |service: &Service, text: &str| -> Vec<Response> {
        let id = service.create_session("ramp").unwrap();
        [
            Request::SetQueryText(text.into()),
            Request::Summary { trace: false },
            Request::Render(RenderFormat::Ppm),
        ]
        .into_iter()
        .map(|req| service.submit(id, req).unwrap())
        .collect()
    };

    let service = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0, // isolate the *window* cache from frame hits
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());

    let warm_q1 = drive(&service, q1);
    let after_first = service.telemetry().window_cache;
    assert_eq!(after_first.hits, 0, "first session must evaluate fresh");

    let warm_q2 = drive(&service, q2);
    let after_second = service.telemetry().window_cache;
    assert_eq!(
        after_second.hits, 1,
        "the shared `x < 150` window must be a cache hit"
    );

    // a third session repeating q1 verbatim reuses both of its windows
    let warm_q1_again = drive(&service, q1);
    assert_eq!(service.telemetry().window_cache.hits, 3);
    assert_eq!(warm_q1_again, warm_q1);

    // cold reference: window sharing disabled entirely
    let cold = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0,
        window_cache_capacity: 0,
        ..Default::default()
    });
    cold.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
    assert_eq!(drive(&cold, q1), warm_q1, "q1 must be byte-identical cold");
    assert_eq!(drive(&cold, q2), warm_q2, "q2 must be byte-identical cold");
    assert_eq!(cold.telemetry().window_cache.hits, 0);

    // re-registering the dataset rotates the generation: no stale reuse
    let bigger = ramp_db(400);
    service.register_dataset("ramp", bigger, ConnectionRegistry::new());
    let hits_before = service.telemetry().window_cache.hits;
    let fresh = drive(&service, q1);
    assert_eq!(
        service.telemetry().window_cache.hits,
        hits_before,
        "windows of the replaced dataset must not be reused"
    );
    assert_ne!(fresh, warm_q1, "400-row frames differ from 200-row frames");
}

#[test]
fn metrics_op_snapshots_every_layer_and_counters_stay_monotone() {
    let db = ramp_db(400);
    let service = Service::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
    let user = service.create_session("ramp").unwrap();
    let ask = |req| service.submit(user, req).unwrap();

    assert_eq!(
        ask(Request::SetQueryText(
            "SELECT * FROM T WHERE x >= 300".into()
        )),
        Response::Ok
    );
    ask(Request::Summary { trace: false });

    let snap = match ask(Request::Metrics) {
        Response::Metrics(s) => *s,
        other => panic!("unexpected {other:?}"),
    };
    // one snapshot covers every layer: exec pool, caches, sessions,
    // per-op service traffic, per-phase pipeline latency
    for counter in [
        "exec.jobs_executed",
        "exec.tasks_stolen",
        "cache.query.hits",
        "cache.query.misses",
        "cache.window.hits",
        "cache.window.misses",
        "cache.projection.hits",
        "cache.projection.misses",
        "service.sessions.created",
        "service.sessions.evicted",
        "service.requests.summary",
    ] {
        assert!(snap.counter(counter).is_some(), "missing counter {counter}");
    }
    for gauge in ["exec.threads", "exec.queue_depth", "service.sessions.live"] {
        assert!(snap.gauge(gauge).is_some(), "missing gauge {gauge}");
    }
    for hist in [
        "exec.job_latency_ns",
        "service.latency_ns.summary",
        "pipeline.phase.distance",
        "pipeline.phase.fit",
        "pipeline.phase.normalize_combine",
        "pipeline.phase.rank",
    ] {
        assert!(snap.histogram(hist).is_some(), "missing histogram {hist}");
    }
    assert_eq!(snap.gauge("exec.threads"), Some(2));
    assert_eq!(snap.gauge("service.sessions.live"), Some(1));
    assert_eq!(snap.counter("service.requests.summary"), Some(1));
    let phases = snap.histogram("pipeline.phase.distance").unwrap();
    assert_eq!(phases.count, 1, "one fresh pipeline run so far");

    // a second, different query: every relevant series moves forward
    ask(Request::MoveSlider {
        window: 0,
        op: CompareOp::Ge,
        value: 100.0,
    });
    ask(Request::Summary { trace: false });
    let snap2 = match ask(Request::Metrics) {
        Response::Metrics(s) => *s,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(snap2.counter("service.requests.summary"), Some(2));
    assert_eq!(snap2.counter("service.requests.move_slider"), Some(1));
    assert!(snap2.counter("service.requests.metrics") >= Some(1));
    assert_eq!(
        snap2.histogram("pipeline.phase.distance").unwrap().count,
        2,
        "second fresh run recorded exactly once"
    );
    for (name, v1) in &snap.entries {
        if let visdb::obs::MetricValue::Counter(c1) = v1 {
            let c2 = snap2.counter(name).unwrap();
            assert!(c2 >= *c1, "counter {name} went backwards: {c1} -> {c2}");
        }
    }

    // a cached re-ask does not re-record pipeline phases
    ask(Request::Summary { trace: false });
    let snap3 = match ask(Request::Metrics) {
        Response::Metrics(s) => *s,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(snap3.counter("service.requests.summary"), Some(3));
    assert_eq!(
        snap3.histogram("pipeline.phase.distance").unwrap().count,
        2,
        "a session-cached summary must not double-count a pipeline run"
    );
}

#[test]
fn traces_are_opt_in_and_name_the_bench_phases() {
    let db = ramp_db(600);
    let service = Service::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
    let user = service.create_session("ramp").unwrap();
    let ask = |req| service.submit(user, req).unwrap();

    ask(Request::SetQueryText(
        "SELECT * FROM T WHERE x >= 500".into(),
    ));
    // absent by default
    let plain = match ask(Request::Summary { trace: false }) {
        Response::Summary(s) => s,
        other => panic!("unexpected {other:?}"),
    };
    assert!(
        plain.trace.is_none(),
        "untraced summary must carry no trace"
    );

    // present on request, shaped like the bench `phase_ms` breakdown
    let traced = match ask(Request::Summary { trace: true }) {
        Response::Summary(s) => s,
        other => panic!("unexpected {other:?}"),
    };
    let trace = traced.trace.expect("trace requested");
    assert!(
        trace.mode == "materialized" || trace.mode == "streaming",
        "unexpected mode {:?}",
        trace.mode
    );
    assert_eq!(trace.rows_scanned, 600);
    assert_eq!(trace.partitions, 1);
    // the four phases are the bench's phase_ms fields; a real run
    // spends time in at least one of them
    let total = trace.distance_ns + trace.fit_ns + trace.normalize_combine_ns + trace.rank_ns;
    assert!(total > 0, "all four phase timers are zero");
    assert_eq!(
        (
            traced.objects,
            traced.displayed,
            traced.exact,
            traced.windows
        ),
        (plain.objects, plain.displayed, plain.exact, plain.windows),
        "the trace flag must not change the counters"
    );

    // a traced incremental drag re-reports the previous pipeline run
    // only on the full-recompute fallback, never on the fast path
    let drag = match ask(Request::DragSlider {
        window: 0,
        op: CompareOp::Ge,
        value: 520.0,
        trace: true,
    }) {
        Response::Drag {
            incremental, trace, ..
        } => (incremental, trace),
        other => panic!("unexpected {other:?}"),
    };
    if drag.0 {
        assert!(drag.1.is_none(), "fast-path drag must not attach a trace");
    } else {
        assert!(drag.1.is_some(), "full-recompute drag must attach a trace");
    }
}

#[test]
fn metrics_op_round_trips_over_the_wire() {
    let db = ramp_db(300);
    let service = Service::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
    let handle = |line: &str| visdb::service::server::handle_line(&service, line);

    let r = handle(r#"{"op":"create_session","dataset":"ramp"}"#);
    let session = r.get("session").unwrap().as_u64().unwrap();
    let line = format!(
        r#"{{"session":{session},"op":"set_query","text":"SELECT * FROM T WHERE x >= 200"}}"#
    );
    handle(&line);

    // summary without the flag: no trace key on the wire
    let line = format!(r#"{{"session":{session},"op":"summary"}}"#);
    let r = handle(&line);
    assert!(r.get("summary").unwrap().get("trace").is_none());

    // summary with the flag: the trace object names the bench phases
    let line = format!(r#"{{"session":{session},"op":"summary","trace":true}}"#);
    let r = handle(&line);
    let trace = r.get("summary").unwrap().get("trace").expect("trace");
    for key in [
        "mode",
        "distance_ns",
        "fit_ns",
        "normalize_combine_ns",
        "rank_ns",
        "rows_scanned",
        "rows_pruned",
        "partitions",
    ] {
        assert!(trace.get(key).is_some(), "trace missing {key}");
    }

    // the service-level metrics op: snapshot JSON plus a Prometheus
    // text exposition, no session required
    let r = handle(r#"{"id":9,"op":"metrics"}"#);
    assert_eq!(r.get("id").unwrap().as_u64(), Some(9));
    let metrics = r.get("metrics").expect("metrics object");
    for key in [
        "exec.jobs_executed",
        "cache.query.misses",
        "service.requests.summary",
        "pipeline.phase.distance",
    ] {
        assert!(metrics.get(key).is_some(), "snapshot missing {key}");
    }
    assert_eq!(
        metrics.get("service.requests.summary").unwrap().as_u64(),
        Some(2)
    );
    let phase = metrics.get("pipeline.phase.rank").unwrap();
    assert!(phase.get("count").unwrap().as_u64().unwrap() >= 1);
    let text = r.get("prometheus").unwrap().as_str().unwrap();
    assert!(text.contains("# TYPE exec_jobs_executed counter"));
    assert!(text.contains("# TYPE pipeline_phase_rank summary"));
}
