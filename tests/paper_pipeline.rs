//! End-to-end integration tests: the paper's running example through the
//! whole stack (parser → joins → distances → relevance → arrangement).

use std::sync::Arc;

use visdb::core::JoinOptions;
use visdb::prelude::*;

fn env_session() -> (Session, visdb::data::environmental::GroundTruth) {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 10,
        stations: 1,
        ..Default::default()
    });
    let truth = env.truth.clone();
    let mut s = Session::new(Arc::new(env.db), env.registry);
    s.set_window_size(32, 32).unwrap();
    s.set_display_policy(DisplayPolicy::Percentage(30.0))
        .unwrap();
    s.set_join_options(JoinOptions {
        row_cap: 30_000,
        ..Default::default()
    })
    .unwrap();
    (s, truth)
}

const PAPER_QUERY: &str = "SELECT Temperature, Solar-Radiation, Humidity, Ozone \
     FROM Weather, Air-Pollution \
     WHERE (Temperature > 15 OR Solar-Radiation > 600 OR Humidity < 60) \
     AND CONNECT with-time-diff(7200) ON Air-Pollution, Weather";

#[test]
fn the_papers_example_query_runs_end_to_end() {
    let (mut s, _) = env_session();
    s.set_query_text(PAPER_QUERY).unwrap();
    let res = s.result().unwrap();
    // fig 4 layout: overall + 2 top-level windows (OR part, connection)
    assert_eq!(res.pipeline.windows.len(), 2);
    assert!(res.pipeline.windows[0].label.contains("OR"));
    assert!(res.pipeline.windows[1].label.contains("with-time-diff"));
    // items were materialised from a bounded cross product
    assert!(res.pipeline.n > 0 && res.pipeline.n <= 30_000);
    // something is displayed, nothing beyond the policy's 30%
    let frac = res.pipeline.displayed_fraction();
    assert!(frac > 0.0 && frac <= 0.31, "displayed fraction {frac}");
}

#[test]
fn order_is_sorted_by_combined_distance() {
    let (mut s, _) = env_session();
    s.set_query_text(PAPER_QUERY).unwrap();
    let res = s.result().unwrap();
    let c = &res.pipeline.combined;
    // the sorted prefix (top-k selection) is monotone and covers the
    // display set; the tail holds the remaining defined items unsorted
    let k = res.pipeline.sorted_len;
    assert!(k >= res.pipeline.displayed.len());
    for w in res.pipeline.order[..k].windows(2) {
        assert!(c[w[0]] <= c[w[1]], "sorted prefix not monotone");
    }
    // every unsorted-tail item really belongs after the prefix
    if let Some(&last) = res.pipeline.order[..k].last() {
        for &i in &res.pipeline.order[k..] {
            assert!(c[i] >= c[last], "tail item {i} beats the prefix");
        }
    }
    // displayed is a prefix of order
    assert_eq!(
        res.pipeline.displayed[..],
        res.pipeline.order[..res.pipeline.displayed.len()]
    );
}

#[test]
fn window_positions_are_coherent() {
    // §4.2: "for every data item the colors ... are at the same relative
    // position in each of the windows" — our per-predicate windows reuse
    // the overall grid, so the same item id sits at the same cell.
    let (mut s, _) = env_session();
    s.set_query_text(PAPER_QUERY).unwrap();
    let res = s.result().unwrap();
    // rank 0 of the displayed list sits at the spiral center
    let (w, h) = (res.grid.width(), res.grid.height());
    let center_item = res.grid.get((w - 1) / 2, (h - 1) / 2);
    assert_eq!(
        center_item,
        res.pipeline.displayed.first().map(|&i| i as u32)
    );
}

#[test]
fn fig5_drilldown_matches_fig4_or_window() {
    // "the corresponding window (lower left of figure 4) is identical
    // with the upper left window of figure 5"
    let (mut s, _) = env_session();
    s.set_query_text(PAPER_QUERY).unwrap();
    let or_window_in_fig4 = s.result().unwrap().pipeline.windows[0].clone();
    let view = s.drilldown(&[0], false).unwrap();
    // the drill-down's overall combined distances must rank items the
    // same way as the parent's OR window (same normalization budget)
    assert_eq!(view.pipeline.windows.len(), 3);
    // shared arrangement: identical grids
    assert_eq!(view.grid, s.result().unwrap().grid);
    // consistency: items exactly fulfilling the OR part in fig 4 are
    // exactly the items with combined distance 0 in the drill-down
    let fig4_exact: Vec<usize> = (0..or_window_in_fig4.len())
        .filter(|&i| or_window_in_fig4.raw_at(i) == Some(0.0))
        .collect();
    let fig5_exact: Vec<usize> = (0..view.pipeline.combined.len())
        .filter(|&i| view.pipeline.combined[i] == Some(0.0))
        .collect();
    assert_eq!(fig4_exact, fig5_exact);
}

#[test]
fn approximate_join_rescues_equality_joins() {
    // §4.4 / claim C5: the clock offset breaks `at-same-time`, but the
    // with-time-diff connection still finds near partners.
    let (mut s, _) = env_session();
    s.set_query_text(
        "SELECT Ozone FROM Weather, Air-Pollution \
         WHERE CONNECT at-same-time ON Air-Pollution, Weather",
    )
    .unwrap();
    let exact = s.result().unwrap().pipeline.num_exact;
    assert_eq!(exact, 0, "clock offset must break exact joins");
    // the same join, approximately: plenty of near-zero distances exist
    let res = s.result().unwrap();
    let best = res.pipeline.order.first().copied().unwrap();
    let d = res.pipeline.windows[0].raw_at(best).unwrap().abs();
    assert!(d <= 600.0, "closest approximate pair is {d}s apart");
}

#[test]
fn hot_spots_surface_in_the_relevance_order() {
    // claim C2 at integration level
    let (_, _) = env_session();
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 10,
        stations: 1,
        ..Default::default()
    });
    let truth = env.truth.clone();
    let mut s = Session::new(Arc::new(env.db), env.registry);
    s.set_query(
        QueryBuilder::from_tables(["Air-Pollution"])
            .cmp("Ozone", CompareOp::Gt, 2000.0)
            .build(),
    )
    .unwrap();
    let res = s.result().unwrap();
    assert_eq!(res.pipeline.num_exact, 0); // NULL result for the baseline
    let top: Vec<usize> = res.pipeline.order[..truth.hot_spot_rows.len()].to_vec();
    for hs in &truth.hot_spot_rows {
        assert!(top.contains(hs), "hot spot {hs} not in top ranks {top:?}");
    }
}

#[test]
fn csv_round_trip_preserves_pipeline_results() {
    use visdb::storage::csv::{read_csv, write_csv};
    let env = generate_environmental(&EnvConfig {
        hours: 48,
        stations: 1,
        ..Default::default()
    });
    let w = env.db.table("Weather").unwrap();
    let mut buf = Vec::new();
    write_csv(w, &mut buf).unwrap();
    let back = read_csv("Weather", w.schema().clone(), buf.as_slice()).unwrap();
    assert_eq!(back.len(), w.len());
    // identical pipelines on original and round-tripped tables
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["Weather"])
        .cmp("Temperature", CompareOp::Gt, 15.0)
        .build();
    let p1 = run_pipeline(
        &env.db,
        w,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(50.0),
    )
    .unwrap();
    let p2 = run_pipeline(
        &env.db,
        &back,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(50.0),
    )
    .unwrap();
    assert_eq!(p1.order, p2.order);
    assert_eq!(p1.num_exact, p2.num_exact);
}
