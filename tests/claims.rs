//! Integration tests for the paper's quantitative claims (DESIGN.md §3).

use visdb::baseline::{evaluate_boolean, hot_spot_ranks, kmeans, smallest_cluster_size};
use visdb::color::{count_jnds, Colormap, ColormapKind};
use visdb::prelude::*;

/// Claim C2: approximate answers rescue NULL-result queries and surface
/// single-item hot spots that boolean queries cannot.
#[test]
fn c2_null_results_become_ranked_answers() {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 14,
        stations: 1,
        ..Default::default()
    });
    let pollution = env.db.table("Air-Pollution").unwrap();
    let q = QueryBuilder::from_tables(["Air-Pollution"])
        .cmp("Ozone", CompareOp::Gt, 1500.0)
        .build();
    // boolean: NULL result
    let exact = evaluate_boolean(&env.db, pollution, &q.condition.as_ref().unwrap().node).unwrap();
    assert_eq!(exact.iter().filter(|b| **b).count(), 0);
    // visual feedback: hot spots are the top-ranked items
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &env.db,
        pollution,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )
    .unwrap();
    let ranks = hot_spot_ranks(&out.order[..out.sorted_len], &env.truth.hot_spot_rows);
    for r in &ranks {
        assert!(r.unwrap() < env.truth.hot_spot_rows.len());
    }
}

/// Claim C3: cluster analysis "does not help to find single exceptional
/// data". k-means (even with k-means++ seeding, which gladly spends a
/// centroid on an outlier group) can only assign *labels*: all planted
/// hot spots land in the same cluster, indistinguishable from each other
/// and unranked. The relevance pipeline instead ranks each one
/// individually at the very top.
#[test]
fn c3_cluster_analysis_cannot_isolate_hot_spots() {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 14,
        stations: 1,
        hot_spots: 3,
        ..Default::default()
    });
    let pollution = env.db.table("Air-Pollution").unwrap();
    let hot = env.truth.hot_spot_rows.clone();
    // feature matrix: all four pollutant columns
    let points: Vec<Vec<f64>> = (0..pollution.len())
        .map(|i| {
            (2..6)
                .map(|c| pollution.column(c).unwrap().get_f64(i).unwrap_or(0.0))
                .collect()
        })
        .collect();
    let km = kmeans(&points, 3, 42, 100).unwrap();
    // every hot spot carries the same label: clustering cannot tell the
    // exceptional items apart, let alone rank them
    let labels: Vec<usize> = hot.iter().map(|&i| km.assignments[i]).collect();
    assert!(
        labels.windows(2).all(|w| w[0] == w[1]),
        "hot spots scattered across clusters: {labels:?}"
    );
    assert!(smallest_cluster_size(&km.assignments, 3) >= 1);

    // the relevance ranking separates and ranks them: top-3, in order of
    // their individual ozone extremity
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["Air-Pollution"])
        .cmp("Ozone", CompareOp::Gt, 10_000.0)
        .build();
    let out = run_pipeline(
        &env.db,
        pollution,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(5.0),
    )
    .unwrap();
    for h in &hot {
        let rank = out.rank_of(*h).unwrap();
        assert!(rank < hot.len(), "hot spot {h} ranked {rank}");
    }
    // and the ranking is a strict order (distinct relevance values)
    let top: Vec<f64> = out.order[..hot.len()]
        .iter()
        .map(|&i| out.combined[i].unwrap())
        .collect();
    assert!(top.windows(2).all(|w| w[0] <= w[1]));
}

/// Claim C4: the VisDB colormap offers far more JNDs than gray scale.
#[test]
fn c4_colormap_has_more_jnds_than_grayscale() {
    let visdb = count_jnds(&Colormap::new(ColormapKind::VisDb), 1024);
    let gray = count_jnds(&Colormap::new(ColormapKind::Grayscale), 1024);
    assert!(visdb > gray * 1.5, "visdb {visdb:.0} vs gray {gray:.0}");
    // and the heat alternative sits in between or above gray too
    let heat = count_jnds(&Colormap::new(ColormapKind::Heat), 1024);
    assert!(heat > gray * 0.8);
}

/// Claim C5: approximate string joins recover multi-database
/// correspondences that equality joins lose.
#[test]
fn c5_approximate_join_recovers_correspondences() {
    let data = generate_multidb(&MultiDbConfig {
        customers: 40,
        unmatched_per_side: 10,
        ..Default::default()
    });
    let conn = data
        .registry
        .lookup("same-customer", "CustomersA", "CustomersB")
        .unwrap()
        .clone()
        .instantiate(vec![])
        .unwrap();
    let query = QueryBuilder::from_tables(["CustomersA", "CustomersB"])
        .connect(conn)
        .build();
    let base = visdb::core::materialize_base(&data.db, &query, &Default::default()).unwrap();
    // equality join: nothing
    let exact = evaluate_boolean(&data.db, &base, &query.condition.as_ref().unwrap().node).unwrap();
    assert_eq!(exact.iter().filter(|b| **b).count(), 0);
    // approximate: most true pairs in the top |pairs| ranks
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &data.db,
        &base,
        &resolver,
        query.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )
    .unwrap();
    let m = data.db.table("CustomersB").unwrap().len();
    let truth: Vec<usize> = data.pairs.iter().map(|&(i, j)| i * m + j).collect();
    let top = &out.order[..truth.len()];
    let recovered = truth.iter().filter(|t| top.contains(t)).count();
    assert!(
        recovered * 100 >= truth.len() * 75,
        "only {recovered}/{} correspondences recovered",
        truth.len()
    );
}

/// Claim C7: on a two-group distance distribution (fig 2b) the gap
/// heuristic cuts at the gap, spending the color scale on the near group,
/// while the raw α-quantile mixes both groups.
#[test]
fn c7_gap_heuristic_beats_alpha_quantile_on_bimodal_data() {
    use visdb::relevance::{gap_cutoff, quantile};
    // sorted distances: 200 near (0..20), 200 far (1000..1020)
    let mut d: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
    d.extend((0..200).map(|i| 1000.0 + i as f64 * 0.1));
    // α-quantile for displaying 75% of the data reaches deep into the far
    // group: the normalization range is then ~1000 wide and the near
    // group collapses onto a handful of colors
    let q75 = quantile(&d, 0.75).unwrap();
    assert!(q75 >= 1000.0);
    // the gap heuristic cuts at the boundary
    let cut = gap_cutoff(&d, 50, 350, 10).unwrap();
    assert!((190..=210).contains(&cut), "cut at {cut}");
    // color resolution for the near group: range under gap cut is ~20
    // wide vs ~1010 under the quantile cut — a 50x improvement
    let gap_range = d[cut];
    assert!(gap_range < 25.0);
    assert!(q75 / gap_range > 40.0);
}

/// The CAD near-miss scenario (§4.5): fixed allowances lose parts that
/// fail a single parameter; the ranking surfaces them right behind the
/// exact matches.
#[test]
fn c2b_near_miss_parts_rank_directly_after_exact_matches() {
    let cad = generate_cad(&CadConfig {
        clusters: 3,
        parts_per_cluster: 20,
        near_misses_per_cluster: 1,
        random_parts: 100,
        ..Default::default()
    });
    let proto = cad.prototypes[0].clone();
    let mut qb = QueryBuilder::from_tables(["Parts"]);
    for (p, &target) in proto.iter().enumerate() {
        qb = qb.around(format!("p{p:02}"), target, 3.0);
    }
    let q = qb.build();
    let parts = cad.db.table("Parts").unwrap();
    let exact = evaluate_boolean(&cad.db, parts, &q.condition.as_ref().unwrap().node).unwrap();
    let near_miss_row = cad.near_misses.iter().find(|(_, c, _)| *c == 0).unwrap().0;
    assert!(!exact[near_miss_row], "baseline should miss the near-miss");
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &cad.db,
        parts,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(30.0),
    )
    .unwrap();
    let rank = out.rank_of(near_miss_row).unwrap();
    let exact_count = exact.iter().filter(|b| **b).count();
    assert!(
        rank <= exact_count + 3,
        "near-miss rank {rank}, exact matches {exact_count}"
    );
}

/// Spatial approximate join (§4.4, `with-distance(m)`): sites paired at
/// 400 m rank as the closest station/site pairs, and an exact
/// `at-same-location` join (radius 0) finds nothing.
#[test]
fn c5b_spatial_join_ranks_paired_sites_first() {
    let geo = generate_geographic(&GeoConfig {
        stations: 9,
        paired_sites: 9,
        scattered_sites: 40,
        pair_distance_m: 400.0,
        ..Default::default()
    });
    let near = geo
        .registry
        .lookup("near", "Stations", "Sites")
        .unwrap()
        .clone();
    // radius 0: the exact at-same-location join fails
    let q0 = QueryBuilder::from_tables(["Stations", "Sites"])
        .connect(near.instantiate(vec![0.0]).unwrap())
        .build();
    let base = visdb::core::materialize_base(&geo.db, &q0, &Default::default()).unwrap();
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &geo.db,
        &base,
        &resolver,
        q0.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )
    .unwrap();
    assert_eq!(out.num_exact, 0);
    // the paired sites are the closest approximate partners
    let m = geo.db.table("Sites").unwrap().len();
    let truth: Vec<usize> = geo.pairs.iter().map(|&(s, t)| s * m + t).collect();
    let top = &out.order[..truth.len()];
    let recovered = truth.iter().filter(|t| top.contains(t)).count();
    assert_eq!(recovered, truth.len(), "top pairs {top:?}");
    // radius 500 m: the paired pixels become exact (yellow)
    let q500 = QueryBuilder::from_tables(["Stations", "Sites"])
        .connect(near.instantiate(vec![500.0]).unwrap())
        .build();
    let out = run_pipeline(
        &geo.db,
        &base,
        &resolver,
        q500.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )
    .unwrap();
    assert_eq!(out.num_exact, truth.len());
}
