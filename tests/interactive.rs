//! Integration tests for the §4.3 interaction loop: sliders, weights,
//! percentage, color ranges, selections, auto-recalculate.

use std::sync::Arc;

use visdb::prelude::*;

fn ramp_session(n: usize) -> Session {
    let mut t = TableBuilder::new(
        "T",
        vec![
            Column::new("x", DataType::Float),
            Column::new("y", DataType::Float),
        ],
    );
    for i in 0..n {
        t = t
            .row(vec![Value::Float(i as f64), Value::Float((n - i) as f64)])
            .unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
    s.set_window_size(20, 20).unwrap();
    s.set_display_policy(DisplayPolicy::Percentage(100.0))
        .unwrap();
    s
}

#[test]
fn growing_the_query_range_grows_the_yellow_region() {
    // §4.3: "if the yellow region in the middle of each window is getting
    // larger ..., more ... data items fulfill the condition"
    let mut s = ramp_session(200);
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .between("x", 90.0, 110.0)
            .build(),
    )
    .unwrap();
    let mut last = s.result().unwrap().pipeline.num_exact;
    for widen in [20.0, 40.0, 80.0] {
        s.set_predicate_target(
            0,
            PredicateTarget::Range {
                low: Value::Float(90.0 - widen),
                high: Value::Float(110.0 + widen),
            },
        )
        .unwrap();
        let now = s.result().unwrap().pipeline.num_exact;
        assert!(now > last, "yellow region must grow: {last} -> {now}");
        last = now;
    }
}

#[test]
fn percentage_slider_changes_normalization() {
    // "changing the percentage of data being displayed may completely
    // change the visualization since the distance values are normalized
    // according to the new range"
    let mut s = ramp_session(200);
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 199.0)
            .build(),
    )
    .unwrap();
    s.set_display_policy(DisplayPolicy::Percentage(10.0))
        .unwrap();
    let narrow = s.result().unwrap().pipeline.windows[0].norm_params;
    s.set_display_policy(DisplayPolicy::Percentage(100.0))
        .unwrap();
    let wide = s.result().unwrap().pipeline.windows[0].norm_params;
    assert!(wide.dmax > narrow.dmax, "{wide:?} vs {narrow:?}");
}

#[test]
fn weights_shift_the_combined_ranking() {
    let mut s = ramp_session(100);
    // two competing predicates: x high, y high (y = 100 - x): items can't
    // satisfy both; weights decide which side dominates the ranking
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp_weighted("x", CompareOp::Ge, 100.0, 1.0)
            .cmp_weighted("y", CompareOp::Ge, 100.0, 1.0)
            .build(),
    )
    .unwrap();
    // heavily favour the x predicate
    s.set_weight(0, 1.0).unwrap();
    s.set_weight(1, 0.05).unwrap();
    let top_x = s.result().unwrap().pipeline.order[0];
    // now favour y
    s.set_weight(0, 0.05).unwrap();
    s.set_weight(1, 1.0).unwrap();
    let top_y = s.result().unwrap().pipeline.order[0];
    assert!(
        top_x > top_y,
        "x-heavy top {top_x} should be a high-x row, y-heavy {top_y} a low-x row"
    );
}

#[test]
fn auto_recalculate_off_keeps_stale_results() {
    let mut s = ramp_session(50);
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 25.0)
            .build(),
    )
    .unwrap();
    assert_eq!(s.result().unwrap().pipeline.num_exact, 25);
    s.set_auto_recalculate(false);
    s.set_predicate_target(
        0,
        PredicateTarget::Compare {
            op: CompareOp::Ge,
            value: Value::Float(45.0),
        },
    )
    .unwrap();
    // stale until an explicit recalc
    assert!(s.cached_result().is_none());
    s.recalculate().unwrap();
    assert_eq!(s.cached_result().unwrap().pipeline.num_exact, 5);
}

#[test]
fn color_range_projection_is_consistent_across_windows() {
    // "In the other visualizations the same data items are displayed
    // allowing the user to easily compare the values" — the projected
    // item set is shared; window distances differ.
    let mut s = ramp_session(100);
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 80.0)
            .cmp("y", CompareOp::Ge, 80.0)
            .build(),
    )
    .unwrap();
    let items = s.select_color_range(0, 0.0, 0.0).unwrap(); // exact on x
    assert!(!items.is_empty());
    let res = s.result().unwrap();
    for &i in &items {
        assert_eq!(res.pipeline.windows[0].raw_at(i), Some(0.0));
        // the same items have *large* distances on the competing window
        assert!(res.pipeline.windows[1].raw_at(i).unwrap() < 0.0);
    }
}

#[test]
fn selected_tuple_appears_in_every_window_render() {
    use visdb::core::{render_session, RenderOptions};
    let mut s = ramp_session(100);
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 50.0)
            .cmp("y", CompareOp::Ge, 20.0)
            .build(),
    )
    .unwrap();
    let displayed0 = s.result().unwrap().pipeline.displayed[0];
    s.select_tuple(displayed0).unwrap();
    let fb = render_session(&mut s, &RenderOptions::default()).unwrap();
    // overall + 2 predicate windows -> 3 highlighted cells
    assert_eq!(fb.count_color(visdb::color::HIGHLIGHT), 3);
}

#[test]
fn gap_policy_in_a_session() {
    let mut s = ramp_session(400);
    s.set_display_policy(DisplayPolicy::GapHeuristic {
        rmin: 20,
        rmax: 350,
        z: 8,
    })
    .unwrap();
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 390.0)
            .build(),
    )
    .unwrap();
    let res = s.result().unwrap();
    assert!(!res.pipeline.displayed.is_empty());
    assert!(res.pipeline.displayed.len() <= 351);
}

#[test]
fn set_query_text_round_trip() {
    let mut s = ramp_session(10);
    s.set_query_text("SELECT x FROM T WHERE x BETWEEN 2 AND 4")
        .unwrap();
    assert_eq!(s.result().unwrap().pipeline.num_exact, 3);
    assert!(s.set_query_text("SELECT nope FROM T").is_err());
    assert!(s.set_query_text("garbage").is_err());
}
