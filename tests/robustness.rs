//! Failure injection: the pipeline must degrade gracefully — never panic,
//! never fabricate exact answers — on hostile data (NULL floods, NaN,
//! infinities, empty tables, degenerate windows, all-undefined queries).

use std::sync::Arc;

use visdb::prelude::*;

fn db_from_rows(rows: Vec<Vec<Value>>) -> Database {
    let mut t = TableBuilder::new(
        "T",
        vec![
            Column::new("x", DataType::Float),
            Column::new("s", DataType::Str),
        ],
    );
    for r in rows {
        t = t.row(r).unwrap();
    }
    let mut db = Database::new("d");
    db.add_table(t.build());
    db
}

fn run(db: &Database, q: Query, pct: f64) -> Result<PipelineOutput> {
    let t = db.table("T")?;
    let resolver = DistanceResolver::new();
    run_pipeline(
        db,
        t,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(pct),
    )
}

#[test]
fn all_null_column_yields_no_answers_but_no_panic() {
    let db = db_from_rows(vec![
        vec![Value::Null, Value::from("a")],
        vec![Value::Null, Value::from("b")],
    ]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Gt, 1.0)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    assert_eq!(out.num_exact, 0);
    assert!(out.order.is_empty(), "undefined items must not be ranked");
    assert!(out.displayed.is_empty());
    assert!(out.combined.iter().all(Option::is_none));
}

#[test]
fn nan_values_are_undefined_not_poisonous() {
    let db = db_from_rows(vec![
        vec![Value::Float(f64::NAN), Value::from("a")],
        vec![Value::Float(1.0), Value::from("b")],
        vec![Value::Float(f64::NAN), Value::from("c")],
    ]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, 1.0)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    assert_eq!(out.num_exact, 1);
    assert_eq!(out.order, vec![1]);
    assert_eq!(out.combined[0], None);
    assert_eq!(out.combined[2], None);
}

#[test]
fn infinities_clamp_into_the_color_range() {
    let db = db_from_rows(vec![
        vec![Value::Float(f64::INFINITY), Value::from("a")],
        vec![Value::Float(5.0), Value::from("b")],
        vec![Value::Float(f64::NEG_INFINITY), Value::from("c")],
    ]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, 5.0)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    // every defined combined distance stays colorable
    for d in out.combined.iter().flatten() {
        assert!((0.0..=255.0).contains(d), "{d}");
    }
    // +inf fulfils >= 5 exactly; -inf is infinitely far but clamps
    assert!(out.num_exact >= 1);
}

#[test]
fn empty_table_short_circuits() {
    let db = db_from_rows(vec![]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, 0.0)
        .build();
    let out = run(&db, q, 50.0).unwrap();
    assert_eq!(out.n, 0);
    assert!(out.displayed.is_empty());
    // arrangement of nothing is an empty grid
    let grid = arrange_overall(&out.displayed, 8, 8);
    assert_eq!(grid.occupied(), 0);
}

#[test]
fn mixed_defined_and_undefined_windows_combine_sanely() {
    // AND of a NULL-poisoned predicate and a healthy one: items with a
    // NULL on either side are undefined, the rest rank normally
    let db = db_from_rows(vec![
        vec![Value::Float(1.0), Value::from("hit")],
        vec![Value::Null, Value::from("hit")],
        vec![Value::Float(3.0), Value::from("miss")],
    ]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, 0.0)
        .cmp("s", CompareOp::Eq, "hit")
        .build();
    let out = run(&db, q, 100.0).unwrap();
    assert_eq!(out.combined[1], None); // NULL x under AND
    assert_eq!(out.num_exact, 1); // row 0 only
    assert_eq!(out.order[0], 0);
}

#[test]
fn session_survives_adversarial_interaction_sequence() {
    let env = generate_environmental(&EnvConfig {
        hours: 48,
        stations: 1,
        ..Default::default()
    });
    let mut s = Session::new(Arc::new(env.db), env.registry);
    // garbage first
    assert!(s.set_query_text("SELECT").is_err());
    assert!(s.recalculate().is_err());
    assert!(s.select_tuple(0).is_err()); // result() fails without a query
                                         // then a real query
    s.set_query_text("SELECT Temperature FROM Weather WHERE Temperature > 1000")
        .unwrap();
    // NULL-result query: nothing exact, everything approximate
    assert_eq!(s.result().unwrap().pipeline.num_exact, 0);
    // out-of-range interactions are typed errors, not panics
    assert!(s.select_tuple(10_000_000).is_err());
    assert!(s.select_color_range(0, -5.0, 10.0).is_err());
    assert!(s.select_color_range(42, 0.0, 255.0).is_err());
    assert!(s.set_weight(3, 1.0).is_err());
    assert!(s.drilldown(&[0, 0, 0, 0], false).is_err());
    // after all that, the session still works
    s.set_query_text("SELECT Temperature FROM Weather WHERE Temperature > 10")
        .unwrap();
    assert!(s.result().unwrap().pipeline.num_exact > 0);
}

#[test]
fn one_by_one_window_renders() {
    let db = db_from_rows(vec![vec![Value::Float(1.0), Value::from("a")]]);
    let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
    s.set_window_size(1, 1).unwrap();
    s.set_display_policy(DisplayPolicy::Percentage(100.0))
        .unwrap();
    s.set_query(
        QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 1.0)
            .build(),
    )
    .unwrap();
    let fb = visdb::core::render_session(&mut s, &Default::default()).unwrap();
    assert!(fb.width() > 0 && fb.height() > 0);
}

#[test]
fn huge_weights_and_tiny_weights_stay_finite() {
    let db = db_from_rows(vec![
        vec![Value::Float(1.0), Value::from("a")],
        vec![Value::Float(100.0), Value::from("b")],
    ]);
    let q = QueryBuilder::from_tables(["T"])
        .cmp_weighted("x", CompareOp::Ge, 50.0, 1e6)
        .cmp_weighted("x", CompareOp::Le, 50.0, 1e-9)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    for d in out.combined.iter().flatten() {
        assert!(d.is_finite());
        assert!((0.0..=255.0).contains(d));
    }
}

#[test]
fn degenerate_single_value_column() {
    let db = db_from_rows(vec![
        vec![Value::Float(7.0), Value::from("a")],
        vec![Value::Float(7.0), Value::from("b")],
        vec![Value::Float(7.0), Value::from("c")],
    ]);
    // everything exact
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Eq, 7.0)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    assert_eq!(out.num_exact, 3);
    assert!(out.combined.iter().all(|d| *d == Some(0.0)));
    // nothing exact, all equally distant
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Eq, 0.0)
        .build();
    let out = run(&db, q, 100.0).unwrap();
    assert_eq!(out.num_exact, 0);
    // all displayed anyway (equal distances), all the same color
    assert_eq!(out.displayed.len(), 3);
    let d0 = out.combined[0];
    assert!(out.combined.iter().all(|d| *d == d0));
}

/// An interrupted (cancelled or panicked) query must leave every shared
/// cache — query-result, predicate-window, sorted-projection — without
/// a partial entry: re-asking the identical query on the disturbed
/// service must be byte-identical to a cold, never-disturbed service,
/// and the re-ask must recompute (zero query-cache hits), not be served
/// some half-written frame.
#[test]
fn interrupted_queries_leave_no_partial_cache_entries() {
    use visdb::exec::{fault, FaultAction, Phase};

    fn ramp_service() -> (Service, SessionId) {
        let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..40_000 {
            t = t.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("ramp");
        db.add_table(t.build());
        let s = Service::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        s.register_dataset("ramp", Arc::new(db), ConnectionRegistry::new());
        let id = s.create_session("ramp").unwrap();
        s.submit(
            id,
            Request::SetQueryText("SELECT * FROM T WHERE x >= 30000".into()),
        )
        .unwrap();
        (s, id)
    }

    // what a never-disturbed service answers, bytes and all
    let (cold, cold_id) = ramp_service();
    let cold_frame = cold
        .submit(cold_id, Request::Render(RenderFormat::Ppm))
        .unwrap();

    for phase in [
        Phase::Distance,
        Phase::Fit,
        Phase::NormalizeCombine,
        Phase::Rank,
    ] {
        for action in [FaultAction::Cancel, FaultAction::Panic] {
            let (s, id) = ramp_service();
            let disturbed = {
                let _guard = fault::inject(phase, action);
                s.submit_opts(
                    id,
                    Request::Render(RenderFormat::Ppm),
                    SubmitOptions {
                        deadline: None,
                        request_id: Some(1),
                    },
                )
                .unwrap()
            };
            assert!(
                matches!(disturbed, Response::Error { .. }),
                "[{phase:?} {action:?}] expected an error, got {disturbed:?}"
            );
            let hits_before = s.telemetry().query_cache.hits;
            let frame = s.submit(id, Request::Render(RenderFormat::Ppm)).unwrap();
            assert_eq!(
                s.telemetry().query_cache.hits,
                hits_before,
                "[{phase:?} {action:?}] the interrupted run left a query-cache entry"
            );
            assert_eq!(
                frame, cold_frame,
                "[{phase:?} {action:?}] re-ask diverged from a cold run"
            );
        }
    }
}

#[test]
fn csv_with_malformed_rows_fails_cleanly() {
    use visdb::storage::csv::read_csv;
    let schema = Schema::new(vec![Column::new("x", DataType::Float)]);
    for bad in ["not-a-number\n", "1.0,extra\n", "\u{0}\n"] {
        let r = read_csv("T", schema.clone(), bad.as_bytes());
        assert!(r.is_err(), "input {bad:?} should fail");
    }
}
