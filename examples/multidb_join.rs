//! Approximate joins across independent databases (§4.5).
//!
//! Two customer tables refer to the same people, but the names were
//! entered independently and carry typos. The exact equi-join returns
//! nothing; the *approximate* join (edit-distance on names) recovers the
//! correspondence — "our system will help the user to identify closely
//! related data items of the two databases".
//!
//! ```sh
//! cargo run --example multidb_join
//! ```

use std::sync::Arc;

use visdb::baseline::evaluate_boolean;
use visdb::core::JoinOptions;
use visdb::prelude::*;

fn main() -> Result<()> {
    let data = generate_multidb(&MultiDbConfig::default());

    let conn = data
        .registry
        .lookup("same-customer", "CustomersA", "CustomersB")?
        .clone()
        .instantiate(vec![])?;
    let query = QueryBuilder::from_tables(["CustomersA", "CustomersB"])
        .connect(conn)
        .build();

    // exact equi-join over the cross product: zero matches
    let base = materialize_base(&data.db, &query, &JoinOptions::default())?;
    let cond = query.condition.as_ref().unwrap();
    let exact = evaluate_boolean(&data.db, &base, &cond.node)?;
    let exact_count = exact.iter().filter(|b| **b).count();
    println!(
        "cross product of {} pairs; exact name-equality join matches {exact_count} pairs",
        base.len()
    );

    // approximate join: rank pairs by name distance
    let mut session = Session::new(Arc::new(data.db.clone()), data.registry.clone());
    session.set_display_policy(DisplayPolicy::Percentage(5.0))?;
    session.set_query(query)?;
    let res = session.result()?;

    // score: how many of the true pairs appear among the closest
    // |pairs| items of the relevance order?
    let m = data.db.table("CustomersB")?.len();
    let truth: Vec<usize> = data.pairs.iter().map(|&(i, j)| i * m + j).collect();
    let top_k = truth.len();
    let recovered = truth
        .iter()
        .filter(|&&flat| res.pipeline.order[..top_k.min(res.pipeline.sorted_len)].contains(&flat))
        .count();
    println!(
        "approximate join: {recovered}/{} true correspondences rank in the top {top_k} \
         of {} pairs",
        truth.len(),
        res.pipeline.n
    );

    // show a few recovered pairs with their distances
    let names_a = data.db.table("CustomersA")?;
    let na = names_a.column_by_name("Name")?;
    let names_b = data.db.table("CustomersB")?;
    let nb = names_b.column_by_name("Name")?;
    println!("\nclosest non-identical pairs:");
    for &item in res.pipeline.order[..res.pipeline.sorted_len].iter().take(8) {
        let (i, j) = (item / m, item % m);
        let d = res.pipeline.windows[0].raw_at(item);
        println!(
            "  '{}' ~ '{}' (distance {:?})",
            na.get_str(i).unwrap_or("?"),
            nb.get_str(j).unwrap_or("?"),
            d
        );
    }
    Ok(())
}
