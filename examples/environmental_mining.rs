//! The paper's running example (§3, §4.1): mining an environmental
//! database for the time-lagged ozone correlation and for hot spots.
//!
//! Reproduces, end to end:
//! * the §4.1 query — `(Temperature > 15 OR Solar-Radiation > 600 OR
//!   Humidity < 60) AND Air-Pollution with-time-diff(7200) Weather` —
//!   entered through the mini-SQL front-end with a declared connection,
//! * the fig 4 visualization (overall + OR-part + connection windows),
//! * the fig 5 drill-down into the OR part,
//! * claim C2: a restrictive query returns **zero** exact rows under the
//!   boolean baseline, while the visual feedback query still surfaces the
//!   planted hot spots at the top of the relevance ranking.
//!
//! ```sh
//! cargo run --example environmental_mining
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use visdb::baseline::{evaluate_boolean, hot_spot_ranks};
use visdb::core::JoinOptions;
use visdb::prelude::*;
use visdb::query::printer::render_query;

fn main() -> Result<()> {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 30,
        stations: 1,
        ..Default::default()
    });
    let truth = env.truth.clone();
    // one shared handle; both sessions below reference the same dataset
    let db = Arc::new(env.db.clone());

    // ---- part 1: the §4.1 query through the SQL front-end --------------
    let query_text = "SELECT Temperature, Solar-Radiation, Humidity, Ozone \
         FROM Weather, Air-Pollution \
         WHERE (Temperature > 15 OR Solar-Radiation > 600 OR Humidity < 60) \
         AND CONNECT with-time-diff(7200) ON Air-Pollution, Weather";
    let query = parse_query(query_text, &env.registry)?;
    println!(
        "--- Query Representation (fig 3) ---\n{}",
        render_query(&query)
    );

    let mut session = Session::new(Arc::clone(&db), env.registry.clone());
    session.set_window_size(48, 48)?;
    session.set_display_policy(DisplayPolicy::Percentage(40.0))?;
    session.set_join_options(JoinOptions {
        row_cap: 60_000,
        ..Default::default()
    })?;
    session.set_query(query)?;

    let panel = session.panel()?;
    println!("--- Visualization & Modification panel (fig 4) ---\n{panel}");

    std::fs::create_dir_all("out")?;
    let fb = render_session(&mut session, &RenderOptions::default())?;
    write_ppm(
        &fb,
        BufWriter::new(File::create("out/environmental_fig4.ppm")?),
    )?;
    println!("wrote out/environmental_fig4.ppm");

    // ---- part 2: drill into the OR part (fig 5) ------------------------
    let view = session.drilldown(&[0], false)?;
    println!(
        "--- OR-part drill-down (fig 5): {} predicate windows, {} exact OR answers ---",
        view.pipeline.windows.len(),
        view.pipeline.num_exact
    );
    for w in &view.pipeline.windows {
        let exact = w.zero_raw_count();
        println!("  window [{}]: {exact} exact", w.label);
    }

    // ---- part 3: hot spots vs the boolean baseline (claim C2) ----------
    // A very restrictive query on ozone: nothing satisfies it exactly.
    let pollution = env.db.table("Air-Pollution")?;
    let hunt = QueryBuilder::from_tables(["Air-Pollution"])
        .cmp("Ozone", CompareOp::Gt, 1000.0)
        .build();
    let exact = evaluate_boolean(&env.db, pollution, &hunt.condition.as_ref().unwrap().node)?;
    let exact_count = exact.iter().filter(|b| **b).count();
    println!("\n--- hot-spot hunt: Ozone > 1000 ---");
    println!("boolean baseline returns {exact_count} rows (a NULL result)");

    let mut hunt_session = Session::new(Arc::clone(&db), env.registry.clone());
    hunt_session.set_display_policy(DisplayPolicy::Percentage(10.0))?;
    hunt_session.set_query(hunt)?;
    let res = hunt_session.result()?;
    let ranks = hot_spot_ranks(
        &res.pipeline.order[..res.pipeline.sorted_len],
        &truth.hot_spot_rows,
    );
    println!(
        "visual feedback ranks the {} planted hot spots at positions {:?} of {} items",
        truth.hot_spot_rows.len(),
        ranks,
        res.pipeline.n
    );
    let top = truth.hot_spot_rows.len();
    let found = ranks.iter().flatten().filter(|&&r| r < top).count();
    println!("=> {found}/{top} hot spots are the top-{top} most relevant items");
    Ok(())
}
