//! Many users, one database: the serving layer in action.
//!
//! Twelve simulated users hammer a shared environmental dataset through
//! a 4-worker `Service`. Half of them start from the same "dashboard"
//! query — exactly the situation the shared query-result cache exists
//! for — while the rest explore on their own. The demo prints the
//! aggregate throughput, the cache hit rate, and one user's rendered
//! window.
//!
//! ```sh
//! cargo run --release --example multi_user_service
//! ```

use std::sync::Arc;
use std::time::Instant;

use visdb::prelude::*;

const USERS: usize = 12;
const ROUNDS: usize = 5;
const DASHBOARD_QUERY: &str = "SELECT Temperature FROM Weather WHERE Temperature > 20";

fn main() -> Result<()> {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 30,
        stations: 1,
        ..Default::default()
    });
    let db = Arc::new(env.db);
    println!(
        "dataset: {} tables, {} rows, shared by {USERS} sessions via one Arc",
        db.len(),
        db.total_rows()
    );

    let service = Service::new(ServiceConfig {
        workers: 4,
        ..Default::default()
    });
    service.register_dataset("env", Arc::clone(&db), env.registry);

    let started = Instant::now();
    let mut requests = 0usize;

    // every user on its own thread, like independent clients
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..USERS)
            .map(|user| {
                let service = &service;
                scope.spawn(move || {
                    let id = service.create_session("env").expect("dataset registered");
                    let mut sent = 0usize;
                    let mut ask = |req: Request| {
                        sent += 1;
                        service.submit(id, req).expect("live session")
                    };
                    ask(Request::SetWindowSize { w: 24, h: 24 });
                    // users 0..6: the common dashboard query; others explore
                    let query = if user < USERS / 2 {
                        DASHBOARD_QUERY.to_string()
                    } else {
                        format!(
                            "SELECT Temperature FROM Weather WHERE Temperature > {}",
                            10 + user
                        )
                    };
                    ask(Request::SetQueryText(query));
                    for round in 0..ROUNDS {
                        let frame = ask(Request::Render(RenderFormat::Ascii));
                        assert!(matches!(frame, Response::Frame { .. }));
                        if user >= USERS / 2 {
                            // explorers drag their slider between renders
                            ask(Request::MoveSlider {
                                window: 0,
                                op: CompareOp::Gt,
                                value: (10 + user + round) as f64,
                            });
                        }
                    }
                    let summary = ask(Request::Summary { trace: false });
                    (sent, summary)
                })
            })
            .collect();
        for h in handles {
            let (sent, summary) = h.join().expect("user thread");
            requests += sent;
            if let Response::Summary(s) = summary {
                assert!(s.objects > 0);
            }
        }
    });

    let elapsed = started.elapsed();
    let stats = service.telemetry().query_cache;
    println!(
        "served {requests} requests in {elapsed:.2?} ({:.0} req/s on {} workers)",
        requests as f64 / elapsed.as_secs_f64(),
        service.workers(),
    );
    println!(
        "shared query cache: {} hits / {} misses — {} pipeline runs saved by \
         users looking at the same dashboard",
        stats.hits, stats.misses, stats.hits
    );
    println!("live sessions: {}", service.session_count());

    // one more user peeks at the dashboard: a pure cache hit by now
    let viewer = service.create_session("env")?;
    service.submit(viewer, Request::SetWindowSize { w: 24, h: 24 })?;
    service.submit(viewer, Request::SetQueryText(DASHBOARD_QUERY.into()))?;
    match service.submit(viewer, Request::Render(RenderFormat::Ascii))? {
        Response::Frame { bytes, .. } => {
            println!("\nthe shared dashboard window (exact answers bright):");
            println!("{}", String::from_utf8_lossy(&bytes));
        }
        other => println!("unexpected response: {other:?}"),
    }
    Ok(())
}
