//! Similarity retrieval in a CAD database (§4.5).
//!
//! "In searching for similar parts in traditional CAD databases a query
//! is issued using fixed allowances for some of the parameters. ... the
//! user might miss a part that exactly fits in all except one parameter."
//!
//! We query for parts similar to a cluster prototype using 27 `AROUND`
//! predicates. The boolean baseline (fixed allowances) misses the
//! planted near-miss parts; the relevance ranking puts them right after
//! the exact matches.
//!
//! ```sh
//! cargo run --example cad_similarity
//! ```

use std::sync::Arc;

use visdb::baseline::evaluate_boolean;
use visdb::data::cad::NUM_PARAMS;
use visdb::prelude::*;

fn main() -> Result<()> {
    let cad = generate_cad(&CadConfig::default());
    let cluster = 0usize;
    let proto = cad.prototypes[cluster].clone();

    // similarity query: every parameter within a fixed allowance
    let allowance = 3.0;
    let mut qb = QueryBuilder::from_tables(["Parts"]);
    for (p, &target) in proto.iter().enumerate() {
        qb = qb.around(format!("p{p:02}"), target, allowance);
    }
    let query = qb.build();

    // boolean baseline: all-or-nothing fixed allowances
    let parts = cad.db.table("Parts")?;
    let cond = query.condition.as_ref().unwrap();
    let exact = evaluate_boolean(&cad.db, parts, &cond.node)?;
    let exact_rows: Vec<usize> = (0..parts.len()).filter(|&i| exact[i]).collect();

    // the planted near-misses for this cluster
    let planted: Vec<usize> = cad
        .near_misses
        .iter()
        .filter(|(_, c, _)| *c == cluster)
        .map(|(row, _, _)| *row)
        .collect();
    let missed: Vec<usize> = planted
        .iter()
        .copied()
        .filter(|r| !exact_rows.contains(r))
        .collect();
    println!(
        "boolean query with ±{allowance} allowances: {} matches",
        exact_rows.len()
    );
    println!(
        "planted near-miss parts {planted:?}: baseline misses {:?}",
        missed
    );

    // visual feedback query: relevance ranking over the same predicates
    let mut session = Session::new(Arc::new(cad.db.clone()), ConnectionRegistry::new());
    session.set_display_policy(DisplayPolicy::Percentage(25.0))?;
    session.set_query(query)?;
    let res = session.result()?;

    let mut report: Vec<(usize, usize)> = missed
        .iter()
        .map(|&row| {
            let rank = res.pipeline.rank_of(row).unwrap_or(usize::MAX);
            (row, rank)
        })
        .collect();
    report.sort_by_key(|&(_, rank)| rank);
    println!("\nrelevance ranking over {} parts:", res.pipeline.n);
    println!(
        "  exact matches (yellow region): {}",
        res.pipeline.num_exact
    );
    for (row, rank) in &report {
        println!("  near-miss part at row {row}: relevance rank {rank}");
    }
    let cluster_size = exact_rows.len();
    let recovered = report
        .iter()
        .filter(|(_, rank)| *rank < cluster_size + planted.len() + 5)
        .count();
    println!(
        "=> {recovered}/{} near-misses appear directly after the exact matches",
        report.len()
    );

    // weighting: suppress the one deviating parameter and the near-miss
    // becomes an exact-quality answer (the §4.5 adjustment workflow)
    if let Some(&(row, _)) = report.first() {
        let (_, _, dev) = *cad
            .near_misses
            .iter()
            .find(|(r, _, _)| *r == row)
            .expect("planted row");
        session.set_weight(dev, 0.05)?;
        let res = session.result()?;
        match res.pipeline.rank_of(row) {
            Some(new_rank) => println!(
                "after down-weighting parameter p{dev:02} to 0.05, row {row} ranks {new_rank} \
                 (of {} displayed)",
                res.pipeline.displayed.len()
            ),
            None => println!(
                "after down-weighting parameter p{dev:02} to 0.05, row {row} still ranks beyond \
                 the top {}",
                res.pipeline.sorted_len
            ),
        }
    }
    let _ = NUM_PARAMS;
    Ok(())
}
