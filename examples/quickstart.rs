//! Quickstart: build a tiny table, run a visual feedback query, inspect
//! the panel, and write the visualization to `out/quickstart.ppm`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

use visdb::prelude::*;
use visdb::render::ascii::to_ascii;

fn main() -> Result<()> {
    // 1. A small sensor table.
    let mut db = Database::new("demo");
    let mut t = TableBuilder::new(
        "Readings",
        vec![
            Column::new("Hour", DataType::Int),
            Column::new("Temperature", DataType::Float).with_unit("°C"),
            Column::new("Humidity", DataType::Float).with_unit("%"),
        ],
    );
    for h in 0..24 * 14 {
        let temp = 12.0
            + 9.0 * (((h % 24) as f64 - 14.0) / 24.0 * std::f64::consts::TAU).cos()
            + (h as f64 * 0.37).sin();
        let hum = (90.0 - 2.0 * temp + (h as f64 * 0.11).cos() * 6.0).clamp(10.0, 100.0);
        t = t.row(vec![Value::Int(h), Value::Float(temp), Value::Float(hum)])?;
    }
    db.add_table(t.build());

    // 2. A query with two weighted predicates. Exact answers are rare;
    //    the visual feedback shows how close everything else comes.
    let mut session = Session::new(Arc::new(db), ConnectionRegistry::new());
    session.set_window_size(24, 24)?;
    session.set_display_policy(DisplayPolicy::Percentage(60.0))?;
    session.set_query(
        QueryBuilder::from_tables(["Readings"])
            .cmp_weighted("Temperature", CompareOp::Gt, 20.0, 1.0)
            .cmp_weighted("Humidity", CompareOp::Lt, 50.0, 0.5)
            .build(),
    )?;

    // 3. The numbers of the modification panel (fig 4/5, right side).
    let panel = session.panel()?;
    println!("{panel}");

    // 4. The visualization part: overall window + one per predicate.
    let fb = render_session(&mut session, &RenderOptions::default())?;
    println!("{}", to_ascii(&fb, 72));
    std::fs::create_dir_all("out")?;
    let file = File::create("out/quickstart.ppm")?;
    write_ppm(&fb, BufWriter::new(file))?;
    println!("wrote out/quickstart.ppm ({}x{})", fb.width(), fb.height());

    // 5. Interactive modification: relax the temperature slider and watch
    //    the yellow region grow.
    let before = session.result()?.pipeline.num_exact;
    session.set_predicate_target(
        0,
        PredicateTarget::Compare {
            op: CompareOp::Gt,
            value: Value::Float(16.0),
        },
    )?;
    let after = session.result()?.pipeline.num_exact;
    println!("exact answers: {before} -> {after} after relaxing Temperature > 20 to > 16");
    Ok(())
}
