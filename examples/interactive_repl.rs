//! A command-driven VisDB session — the headless stand-in for the
//! paper's interactive interface (§4.3).
//!
//! Reads commands from stdin (or runs a scripted demo with `--demo`):
//!
//! ```text
//! query SELECT * FROM Weather WHERE Temperature > 15
//! show                 # ASCII visualization
//! panel                # the modification panel numbers
//! range 0 10 30        # set window 0's predicate to BETWEEN 10 AND 30
//! weight 0 0.5         # set window 0's weight
//! percent 20           # display 20% of the data
//! select 123           # select tuple 123 (highlights + prints values)
//! colors 0 0 64        # project to the yellow..green band of window 0
//! auto off             # defer recalculation
//! recalc               # recalculate now
//! stats                # per-phase trace of the last pipeline run
//! quit
//! ```
//!
//! ```sh
//! cargo run --example interactive_repl -- --demo
//! echo "query SELECT * FROM Weather WHERE Humidity < 40\nshow" | \
//!   cargo run --example interactive_repl
//! ```

use std::io::BufRead;
use std::sync::Arc;

use visdb::prelude::*;
use visdb::render::ascii::to_ascii;

fn run_command(session: &mut Session, line: &str) -> Result<bool> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(true);
    }
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "quit" | "exit" => return Ok(false),
        "query" => {
            session.set_query_text(rest)?;
            println!("ok: query installed");
        }
        "show" => {
            let fb = render_session(session, &RenderOptions::default())?;
            println!("{}", to_ascii(&fb, 76));
        }
        "panel" => println!("{}", session.panel()?),
        "range" => {
            let mut it = rest.split_whitespace();
            let idx: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                Error::invalid_parameter("range", "usage: range <window> <low> <high>")
            })?;
            let low: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(f64::NAN);
            let high: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(f64::NAN);
            session.set_predicate_target(
                idx,
                PredicateTarget::Range {
                    low: Value::Float(low),
                    high: Value::Float(high),
                },
            )?;
            println!("ok: window {idx} range [{low}, {high}]");
        }
        "weight" => {
            let mut it = rest.split_whitespace();
            let idx: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let w: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
            session.set_weight(idx, w)?;
            println!("ok: window {idx} weight {w}");
        }
        "percent" => {
            let p: f64 = rest.trim().parse().map_err(|_| {
                Error::invalid_parameter("percent", "usage: percent <0..100>")
            })?;
            session.set_display_policy(DisplayPolicy::Percentage(p))?;
            println!("ok: displaying {p}% of the data");
        }
        "select" => {
            let item: usize = rest.trim().parse().map_err(|_| {
                Error::invalid_parameter("select", "usage: select <item>")
            })?;
            let row = session.select_tuple(item)?;
            let vals: Vec<String> = row.iter().map(ToString::to_string).collect();
            println!("selected tuple {item}: ({})", vals.join(", "));
        }
        "colors" => {
            let mut it = rest.split_whitespace();
            let idx: usize = it.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let lo: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(0.0);
            let hi: f64 = it.next().and_then(|s| s.parse().ok()).unwrap_or(255.0);
            let items = session.select_color_range(idx, lo, hi)?;
            println!("{} items in color range [{lo}, {hi}] of window {idx}", items.len());
        }
        "append" => {
            // append <table> <v1,v2,...> — grow the dataset in place;
            // the session rebases onto the new generation, repairing
            // its slider band instead of starting from scratch
            let (tname, cells) = rest.split_once(' ').ok_or_else(|| {
                Error::invalid_parameter("append", "usage: append <table> <v1,v2,...>")
            })?;
            let tname = tname.trim();
            let row: Vec<Value> = {
                let table = session.db().table(tname)?;
                let schema = table.schema();
                let cells: Vec<&str> = cells.split(',').collect();
                if cells.len() != schema.columns().len() {
                    return Err(Error::invalid_parameter(
                        "append",
                        format!(
                            "expected {} cells for table '{tname}', got {}",
                            schema.columns().len(),
                            cells.len()
                        ),
                    ));
                }
                cells
                    .iter()
                    .zip(schema.columns())
                    .map(|(cell, col)| visdb::storage::csv::parse_cell(cell, col.data_type))
                    .collect::<Result<_>>()?
            };
            let mut db = session.db().clone();
            db.table_mut(tname)?.append_rows(vec![row])?;
            let total = db.total_rows();
            use visdb::core::BandRebase;
            let outcome = session.rebase(Arc::new(db), format!("repl#{total}"));
            println!(
                "ok: appended 1 row to {tname} ({total} rows total, band {})",
                match outcome {
                    BandRebase::Repaired => "repaired",
                    BandRebase::Dropped => "dropped",
                    BandRebase::None => "cold",
                }
            );
        }
        "auto" => {
            session.set_auto_recalculate(rest.trim() != "off");
            println!("ok: auto recalculate {}", rest.trim());
        }
        "recalc" => {
            session.recalculate()?;
            println!("ok: recalculated");
        }
        "stats" | ":stats" => {
            // turn trace collection on for this session (recomputing
            // once if the current result was produced untraced), then
            // read the paper's cost centers off the last pipeline run
            session.set_collect_trace(true);
            session.result()?;
            if let Some(t) = session.last_trace() {
                let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
                println!(
                    "pipeline trace ({}): distance {:.3} ms | fit {:.3} ms | \
                     normalize+combine {:.3} ms | rank {:.3} ms",
                    if t.streaming { "streaming" } else { "materialized" },
                    ms(t.phases.distance),
                    ms(t.phases.fit),
                    ms(t.phases.normalize_combine),
                    ms(t.phases.rank),
                );
                println!(
                    "rows: {} scanned, {} pruned | partitions: {} | windows: {} evaluated, \
                     {} cache hits, {} shared hits",
                    t.rows_scanned,
                    t.rows_pruned,
                    t.partitions,
                    t.windows_evaluated,
                    t.cache_hits,
                    t.shared_hits,
                );
            } else {
                println!("no trace yet: install a query first");
            }
        }
        other => println!("unknown command '{other}' (try: query/show/panel/range/weight/percent/select/colors/auto/recalc/stats/quit)"),
    }
    Ok(true)
}

fn main() -> Result<()> {
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 14,
        stations: 1,
        ..Default::default()
    });
    let mut session = Session::new(Arc::new(env.db), env.registry);
    session.set_window_size(32, 32)?;
    session.set_display_policy(DisplayPolicy::Percentage(30.0))?;
    println!("VisDB interactive session over the environmental database");
    println!("tables: Weather, Air-Pollution; type commands (or --demo):\n");

    if std::env::args().any(|a| a == "--demo") {
        for cmd in [
            "query SELECT Temperature, Humidity FROM Weather WHERE Temperature > 15 AND Humidity < 60",
            "panel",
            "show",
            "weight 1 0.3",
            "range 0 18 25",
            "panel",
            "stats",
            "quit",
        ] {
            println!("visdb> {cmd}");
            if let Err(e) = run_command(&mut session, cmd) {
                println!("error: {e}");
            }
        }
        return Ok(());
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        match run_command(&mut session, &line) {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
