//! Lloyd's k-means over numeric attribute matrices.
//!
//! The cluster-analysis comparator of §2.2: good at finding *groups* of
//! similar data, structurally unable to isolate a *single* exceptional
//! item (it gets absorbed into its nearest cluster) — which is exactly
//! what claim C3 measures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use visdb_types::{Error, Result};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means (k-means++ seeding, Lloyd iterations, at most `max_iter`).
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, max_iter: usize) -> Result<KMeansResult> {
    if points.is_empty() {
        return Err(Error::invalid_parameter("points", "empty point set"));
    }
    let dims = points[0].len();
    if points.iter().any(|p| p.len() != dims) {
        return Err(Error::invalid_parameter("points", "ragged dimensionality"));
    }
    if k == 0 || k > points.len() {
        return Err(Error::invalid_parameter(
            "k",
            format!("need 1 <= k <= n, got k={k}, n={}", points.len()),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sq_dist(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // all points coincide with existing centroids
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        // assign
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(p, &centroids[a])
                        .partial_cmp(&sq_dist(p, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // update
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignments[i]] += 1;
            for d in 0..dims {
                sums[assignments[i]][d] += p[d];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..dims {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| sq_dist(p, &centroids[assignments[i]]))
        .sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![i as f64 * 0.01, 0.0]);
            pts.push(vec![100.0 + i as f64 * 0.01, 0.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 1, 100).unwrap();
        // points alternate blob membership; assignments must follow
        let a0 = r.assignments[0];
        for i in (0..100).step_by(2) {
            assert_eq!(r.assignments[i], a0);
            assert_eq!(r.assignments[i + 1], 1 - a0);
        }
        assert!(r.inertia < 50.0);
    }

    #[test]
    fn outlier_gets_absorbed_with_small_k() {
        // 99 points in one blob + 1 extreme outlier; k=2 splits the blob
        // or isolates the outlier depending on seeding — but with k=1 the
        // outlier is necessarily absorbed (the C3 phenomenon)
        let mut pts: Vec<Vec<f64>> = (0..99).map(|i| vec![i as f64 * 0.01]).collect();
        pts.push(vec![10_000.0]);
        let r = kmeans(&pts, 1, 3, 50).unwrap();
        assert!(r.assignments.iter().all(|&a| a == 0));
        assert!(r.inertia > 1e6); // the outlier dominates the inertia
    }

    #[test]
    fn parameter_validation() {
        assert!(kmeans(&[], 1, 0, 10).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 0, 10).is_err());
        assert!(kmeans(&[vec![1.0]], 2, 0, 10).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 0, 10).is_err());
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let pts = vec![vec![0.0], vec![10.0], vec![20.0]];
        let r = kmeans(&pts, 3, 5, 100).unwrap();
        assert!(r.inertia < 1e-9, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 2, 9, 100).unwrap();
        let b = kmeans(&pts, 2, 9, 100).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn identical_points_converge() {
        let pts = vec![vec![5.0, 5.0]; 10];
        let r = kmeans(&pts, 3, 0, 50).unwrap();
        assert!(r.inertia < 1e-9);
    }
}
