//! # visdb-baseline
//!
//! The comparators the paper positions VisDB against (§2.2, §3):
//!
//! * [`boolean`] — a traditional exact query interface: every condition
//!   evaluates to true/false, results are all-or-nothing. This is the
//!   baseline that produces "NULL results, or more data than the user is
//!   willing to deal with" and demonstrates why approximate answers
//!   matter (claims C2, C5).
//! * [`kmeans`] — cluster analysis, the statistics-side alternative; used
//!   to reproduce the claim that clustering "does not help to find single
//!   exceptional data, so-called hot spots" (claim C3).
//! * [`metrics`] — scoring helpers (hot-spot rank, cluster isolation).

pub mod boolean;
pub mod kmeans;
pub mod metrics;

pub use boolean::evaluate_boolean;
pub use kmeans::{kmeans, KMeansResult};
pub use metrics::{hot_spot_ranks, smallest_cluster_size};
