//! Scoring helpers for the experiment harness.

/// Positions (0-based ranks) of target rows inside a relevance-ordered
/// index list; rows absent from the ordering get `None`.
///
/// Used by claim C2: a planted hot spot that ranks near the top of the
/// relevance order is "findable" through the visualization, while a
/// boolean baseline either returns it (drowned among thousands) or not
/// at all.
/// Pass only the *ranked* part of a pipeline's order (its
/// `sorted_len` prefix): positions in the unsorted top-k tail carry no
/// rank information, and an unranked hot spot is exactly the `None`
/// ("not findable") outcome this metric is meant to report.
pub fn hot_spot_ranks(order: &[usize], targets: &[usize]) -> Vec<Option<usize>> {
    targets
        .iter()
        .map(|t| order.iter().position(|i| i == t))
        .collect()
}

/// Size of the smallest cluster in a k-means assignment — claim C3: if an
/// outlier were isolated, the smallest cluster would have size 1; in
/// practice it is absorbed and the smallest cluster stays large.
pub fn smallest_cluster_size(assignments: &[usize], k: usize) -> usize {
    let mut counts = vec![0usize; k];
    for &a in assignments {
        if a < k {
            counts[a] += 1;
        }
    }
    counts.into_iter().filter(|&c| c > 0).min().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks() {
        let order = vec![9, 3, 7, 1];
        assert_eq!(
            hot_spot_ranks(&order, &[7, 9, 4]),
            vec![Some(2), Some(0), None]
        );
    }

    #[test]
    fn smallest_cluster() {
        let a = vec![0, 0, 0, 1, 1, 2];
        assert_eq!(smallest_cluster_size(&a, 3), 1);
        assert_eq!(smallest_cluster_size(&[], 3), 0);
        // empty clusters are ignored
        let a = vec![0, 0, 2, 2];
        assert_eq!(smallest_cluster_size(&a, 3), 2);
    }
}
