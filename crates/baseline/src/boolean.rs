//! Exact boolean evaluation of VisDB condition trees — what a
//! traditional query interface returns: a row either fulfils the whole
//! condition or is absent from the answer.
//!
//! Comparison operators here are *strict* (`<` vs `<=` matter), unlike
//! the graded distance functions.

use visdb_distance::geo;
use visdb_query::ast::{AttrRef, ConditionNode, Predicate, PredicateTarget, Query, SubqueryLink};
use visdb_query::connection::{ConnectionKind, ConnectionUse};
use visdb_storage::{ColumnData, Database, Table};
use visdb_types::{Error, Result, Value};

/// Evaluate a condition tree exactly over a table. NULL operands make a
/// predicate false (SQL-ish three-valued logic collapsed to false).
pub fn evaluate_boolean(db: &Database, table: &Table, node: &ConditionNode) -> Result<Vec<bool>> {
    let n = table.len();
    match node {
        ConditionNode::Predicate(p) => eval_predicate(table, p),
        ConditionNode::And(children) => {
            let mut acc = vec![true; n];
            for c in children {
                let v = evaluate_boolean(db, table, &c.node)?;
                for i in 0..n {
                    acc[i] &= v[i];
                }
            }
            Ok(acc)
        }
        ConditionNode::Or(children) => {
            let mut acc = vec![false; n];
            for c in children {
                let v = evaluate_boolean(db, table, &c.node)?;
                for i in 0..n {
                    acc[i] |= v[i];
                }
            }
            Ok(acc)
        }
        ConditionNode::Not(inner) => {
            let v = evaluate_boolean(db, table, inner)?;
            Ok(v.into_iter().map(|b| !b).collect())
        }
        ConditionNode::Connection(c) => eval_connection(table, c),
        ConditionNode::Subquery { link, query } => eval_subquery(db, table, link, query),
    }
}

fn resolve<'a>(table: &'a Table, attr: &AttrRef) -> Result<&'a ColumnData> {
    let tried: Vec<String> = match &attr.table {
        Some(t) => vec![format!("{t}.{}", attr.column), attr.column.clone()],
        None => vec![attr.column.clone()],
    };
    for name in &tried {
        if let Ok(c) = table.column_by_name(name) {
            return Ok(c);
        }
    }
    Err(Error::UnknownColumn {
        table: table.name().to_string(),
        column: tried.join(" / "),
    })
}

fn eval_predicate(table: &Table, p: &Predicate) -> Result<Vec<bool>> {
    let col = resolve(table, &p.attr)?;
    let n = table.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let v = col.get(i);
        let b = match &p.target {
            PredicateTarget::Compare { op, value } => match v.partial_cmp_value(value) {
                Some(ord) => op.eval(ord),
                None => false,
            },
            PredicateTarget::Range { low, high } => {
                let ge = matches!(
                    v.partial_cmp_value(low),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                );
                let le = matches!(
                    v.partial_cmp_value(high),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                ge && le
            }
            PredicateTarget::Around { center, deviation } => match (v.as_f64(), center.as_f64()) {
                (Some(x), Some(c)) => (x - c).abs() <= *deviation,
                _ => false,
            },
        };
        out.push(b);
    }
    Ok(out)
}

fn eval_connection(table: &Table, c: &ConnectionUse) -> Result<Vec<bool>> {
    let (left, right) = c.def.kind.attrs();
    let lc = resolve(table, left)?;
    let rc = resolve(table, right)?;
    let n = table.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let b = match &c.def.kind {
            ConnectionKind::Equi { .. } | ConnectionKind::ForeignKey { .. } => {
                let (a, b) = (lc.get(i), rc.get(i));
                !a.is_null() && a == b
            }
            ConnectionKind::NonEqui { op, .. } => match lc.get(i).partial_cmp_value(&rc.get(i)) {
                Some(ord) => op.eval(ord),
                None => false,
            },
            ConnectionKind::TimeDiff { .. } => {
                let expected = *c.params.first().unwrap_or(&0.0);
                match (lc.get_f64(i), rc.get_f64(i)) {
                    (Some(a), Some(b)) => (a - b) == expected,
                    _ => false,
                }
            }
            ConnectionKind::SpatialWithin { .. } => {
                let radius = *c.params.first().unwrap_or(&0.0);
                match (lc.get_location(i), rc.get_location(i)) {
                    (Some(a), Some(b)) => geo::haversine_m(a, b) <= radius,
                    _ => false,
                }
            }
        };
        out.push(b);
    }
    Ok(out)
}

fn eval_subquery(
    db: &Database,
    table: &Table,
    link: &SubqueryLink,
    query: &Query,
) -> Result<Vec<bool>> {
    let inner_name = query
        .tables
        .first()
        .ok_or_else(|| Error::invalid_query("subquery must reference a table"))?;
    let inner = db.table(inner_name)?;
    let inner_match: Vec<bool> = match &query.condition {
        Some(w) => evaluate_boolean(db, inner, &w.node)?,
        None => vec![true; inner.len()],
    };
    let n = table.len();
    match link {
        SubqueryLink::Exists => {
            let any = inner_match.iter().any(|b| *b);
            Ok(vec![any; n])
        }
        SubqueryLink::In {
            outer,
            inner: inner_attr,
        } => {
            let oc = resolve(table, outer)?;
            let ic = resolve(inner, inner_attr)?;
            let matching_values: Vec<Value> = (0..inner.len())
                .filter(|&j| inner_match[j])
                .map(|j| ic.get(j))
                .collect();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let v = oc.get(i);
                out.push(!v.is_null() && matching_values.contains(&v));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::CompareOp;
    use visdb_query::builder::QueryBuilder;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType};

    fn db() -> Database {
        let mut db = Database::new("t");
        db.add_table(
            TableBuilder::new(
                "T",
                vec![
                    Column::new("x", DataType::Float),
                    Column::new("s", DataType::Str),
                ],
            )
            .row(vec![Value::Float(1.0), Value::from("a")])
            .unwrap()
            .row(vec![Value::Float(5.0), Value::from("b")])
            .unwrap()
            .row(vec![Value::Null, Value::from("c")])
            .unwrap()
            .build(),
        );
        db
    }

    #[test]
    fn strict_comparison_semantics() {
        let db = db();
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Lt, 5.0)
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![true, false, false]); // strict <, NULL -> false
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Le, 5.0)
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![true, true, false]);
    }

    #[test]
    fn and_or_not() {
        let db = db();
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Gt, 0.0)
            .cmp("s", CompareOp::Eq, "a")
            .any()
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![true, true, false]);
        let q = QueryBuilder::from_tables(["T"])
            .cmp("s", CompareOp::Eq, "a")
            .negate_last()
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![false, true, true]);
    }

    #[test]
    fn range_and_around() {
        let db = db();
        let t = db.table("T").unwrap();
        let q = QueryBuilder::from_tables(["T"])
            .between("x", 0.0, 2.0)
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![true, false, false]);
        let q = QueryBuilder::from_tables(["T"])
            .around("x", 4.0, 1.5)
            .build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![false, true, false]);
    }

    #[test]
    fn in_subquery_exact() {
        let mut database = db();
        database.add_table(
            TableBuilder::new("U", vec![Column::new("y", DataType::Float)])
                .row(vec![Value::Float(5.0)])
                .unwrap()
                .build(),
        );
        let sub = QueryBuilder::from_tables(["U"]).select(["y"]).build();
        let q = QueryBuilder::from_tables(["T"])
            .is_in("x", "y", sub)
            .build();
        let t = database.table("T").unwrap();
        let v = evaluate_boolean(&database, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![false, true, false]);
    }

    #[test]
    fn exists_subquery_exact() {
        let db = db();
        let t = db.table("T").unwrap();
        let sub = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Gt, 100.0)
            .build();
        let q = QueryBuilder::from_tables(["T"]).exists(sub).build();
        let v = evaluate_boolean(&db, t, &q.condition.unwrap().node).unwrap();
        assert_eq!(v, vec![false; 3]);
    }
}
