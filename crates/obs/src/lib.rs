//! # visdb-obs
//!
//! Lock-light telemetry for the VisDB engine: atomic [`Counter`]s and
//! [`Gauge`]s, fixed-bucket log-scale latency [`Histogram`]s with
//! p50/p90/p99 readout, a cheap hierarchical [`Span`] timer, and a
//! [`Registry`] that snapshots every registered metric into one
//! deterministic, comparable [`Snapshot`] (JSON-friendly integers plus a
//! Prometheus-style text exposition for the future HTTP transport).
//!
//! Design rules, in the `crates/compat` spirit of zero external
//! dependencies:
//!
//! * **Recording never locks.** Every write path is a handful of
//!   `Relaxed` atomic ops on pre-resolved `Arc` handles; the registry's
//!   mutex is touched only at registration and snapshot time. Hot loops
//!   hold an `Arc<Counter>`/`Arc<Histogram>` and pay one `fetch_add`
//!   (counters) or three (histograms) per event.
//! * **Fixed memory.** A histogram is 258 `AtomicU64`s — no resizing,
//!   no per-record allocation, no sampling reservoir.
//! * **Deterministic readout.** Snapshots carry integers only (counts,
//!   nanoseconds, bucket-upper-bound quantiles), sorted by metric name,
//!   so two snapshots of an idle registry are `==` and service tests can
//!   assert on them exactly.
//!
//! The histogram buckets are log-linear: 4 linear subdivisions per
//! octave (power of two), giving a worst-case quantile overestimate of
//! 25% across the full `u64` range — precise enough to tell a 100 µs
//! cache hit from a 10 ms recompute at every magnitude, in 2 KiB per
//! histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets: values 1..=3 map to the first three
/// buckets, then 4 buckets per octave for exponents 2..=63, so the
/// largest reachable index is `3 + 61*4 + 3 = 250`.
const NUM_BUCKETS: usize = 251;

/// Linear subdivisions per octave (the log-linear "resolution"); bucket
/// relative width is `1/SUB` of the octave base, hence the ≤ 25%
/// quantile overestimate.
const SUB_BITS: u32 = 2; // 2^2 = 4 subdivisions

/// A monotonically increasing event counter (requests served, cache
/// hits, rows pruned). All operations are `Relaxed`: counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, live sessions, peak actives).
/// Signed so decrements racing past zero stay meaningful.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the level.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raise the level to `v` if above the current value (high-water
    /// marks like peak active workers).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-linear latency histogram over `u64` values
/// (by convention: nanoseconds).
///
/// Buckets subdivide each power-of-two octave into 4 linear slices, so
/// every recorded value lands in a bucket whose upper bound is at most
/// 25% above it. Quantile readout returns that upper bound — a
/// deterministic integer, never an interpolation — so p50/p90/p99 are
/// comparable across snapshots and safe to gate on.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a value: `0..=2` hold 1, 2, 3 (and 0); from 4 on,
/// four buckets per octave keyed by the exponent and the next two
/// mantissa bits.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        (v.max(1) - 1) as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let frac = (v >> (exp - SUB_BITS)) & 3;
        ((exp - SUB_BITS) * 4 + 3) as usize + frac as usize
    }
}

/// Inclusive upper bound of a bucket (the value quantile readout
/// reports). Saturates at `u64::MAX` for the top octave.
fn bucket_upper(idx: usize) -> u64 {
    if idx < 3 {
        return (idx + 1) as u64;
    }
    let exp = (idx - 3) as u32 / 4 + SUB_BITS;
    let frac = ((idx - 3) % 4) as u128;
    let upper = (1u128 << exp) + (frac + 1) * (1u128 << (exp - SUB_BITS)) - 1;
    upper.min(u64::MAX as u128) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one value (three `Relaxed` `fetch_add`s; no allocation).
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total recorded events.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with p50/p90/p99 computed from the bucket
    /// counts (self-consistent: the quantiles and `count` come from one
    /// pass over the same loaded bucket values).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (idx, &c) in buckets.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_upper(idx);
                }
            }
            bucket_upper(NUM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Integer-only point-in-time view of a [`Histogram`]. Quantiles are
/// bucket upper bounds (≤ 25% above the true value), in the recorded
/// unit (nanoseconds by convention).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded events.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// 50th-percentile upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (integer division; 0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// One registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A name → metric map. Registration and snapshotting lock a mutex;
/// recording through the returned `Arc` handles never does. Names are
/// dotted paths by convention (`service.latency.summary`,
/// `cache.window.hits`); the Prometheus exposition rewrites the dots.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// A clash with a differently-typed metric replaces it.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        match inner.get(name) {
            Some(Metric::Counter(c)) => Arc::clone(c),
            _ => {
                let c = Arc::new(Counter::new());
                inner.insert(name.to_string(), Metric::Counter(Arc::clone(&c)));
                c
            }
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        match inner.get(name) {
            Some(Metric::Gauge(g)) => Arc::clone(g),
            _ => {
                let g = Arc::new(Gauge::new());
                inner.insert(name.to_string(), Metric::Gauge(Arc::clone(&g)));
                g
            }
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        match inner.get(name) {
            Some(Metric::Histogram(h)) => Arc::clone(h),
            _ => {
                let h = Arc::new(Histogram::new());
                inner.insert(name.to_string(), Metric::Histogram(Arc::clone(&h)));
                h
            }
        }
    }

    /// Register an externally-owned counter (a subsystem that keeps its
    /// own handle — e.g. the exec runtime's job counter) under `name`.
    pub fn register_counter(&self, name: &str, c: Arc<Counter>) {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), Metric::Counter(c));
    }

    /// Register an externally-owned gauge under `name`.
    pub fn register_gauge(&self, name: &str, g: Arc<Gauge>) {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), Metric::Gauge(g));
    }

    /// Register an externally-owned histogram under `name`.
    pub fn register_histogram(&self, name: &str, h: Arc<Histogram>) {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), Metric::Histogram(h));
    }

    /// A deterministic point-in-time view of every registered metric,
    /// sorted by name. Two snapshots of a quiescent registry are `==`.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        Snapshot {
            entries: inner
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One snapshotted metric value — integers only, so snapshots compare
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's count/sum/quantiles.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a whole [`Registry`]: `(name, value)` pairs
/// sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The metrics, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The counter under `name`, if it is one.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge under `name`, if it is one.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram under `name`, if it is one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition (`# TYPE` lines, counters and
    /// gauges as plain samples, histograms as summaries with
    /// `quantile` labels plus `_sum`/`_count`). Dots and other
    /// non-identifier characters in metric names become underscores.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.entries {
            let name = sanitize_metric_name(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
                    let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", h.p90);
                    let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }
}

/// Rewrite a dotted metric path into the Prometheus identifier charset
/// (`[a-zA-Z0-9_:]`).
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A hierarchical wall-clock span: started at construction, recorded
/// into `<path>` (a dotted histogram name) on drop. Children extend the
/// path, so one query can decompose as `query`, `query.pipeline`,
/// `query.pipeline.rank` without any thread-local machinery — the guard
/// *is* the context.
#[derive(Debug)]
pub struct Span {
    registry: Arc<Registry>,
    path: String,
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Start a root span recording into `registry` under `name`.
    pub fn root(registry: &Arc<Registry>, name: &str) -> Span {
        let hist = registry.histogram(name);
        Span {
            registry: Arc::clone(registry),
            path: name.to_string(),
            hist,
            start: Instant::now(),
        }
    }

    /// Start a child span under `<self.path>.<name>`.
    pub fn child(&self, name: &str) -> Span {
        let path = format!("{}.{}", self.path, name);
        let hist = self.registry.histogram(&path);
        Span {
            registry: Arc::clone(&self.registry),
            path,
            hist,
            start: Instant::now(),
        }
    }

    /// The dotted path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(3);
        g.inc();
        g.dec();
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set_max(7);
        g.set_max(2);
        assert_eq!(g.get(), 7);
    }

    /// Every `u64` maps to a bucket whose bounds actually contain it,
    /// bucket indices are monotone in the value, and the upper bound
    /// overestimates by at most 25%.
    #[test]
    fn bucket_bounds_contain_and_bound_error() {
        // exhaustive over the small range, then probes around every
        // octave boundary across the full range
        let mut probes: Vec<u64> = (0..=4096).collect();
        for exp in 2..=63u32 {
            let base = 1u64 << exp;
            for d in [0u64, 1, 2, 3] {
                probes.push(base.saturating_sub(d));
                probes.push(base.saturating_add(d));
            }
            probes.push(base + (base >> 1));
            probes.push(base + (base >> 2) - 1);
        }
        probes.push(u64::MAX);
        for &v in &probes {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(v <= upper, "v={v} above its bucket upper {upper}");
            if idx > 0 {
                let below = bucket_upper(idx - 1);
                assert!(
                    v.max(1) > below,
                    "v={v} should be above the previous bucket's upper {below}"
                );
            }
            // ≤ 25% overestimate (the log-linear resolution guarantee)
            assert!(
                (upper as u128) * 4 <= (v.max(1) as u128) * 5,
                "v={v}: upper {upper} overestimates by more than 25%"
            );
        }
        // monotone: increasing values never decrease the bucket index
        for w in probes.windows(2) {
            if w[0] <= w[1] {
                assert!(bucket_index(w[0]) <= bucket_index(w[1]));
            }
        }
    }

    /// Quantile readout is bounded below by the true quantile and above
    /// by 1.25× it, for a known distribution.
    #[test]
    fn quantile_bounds() {
        let h = Histogram::new();
        // 1..=1000: true p50 = 500, p90 = 900, p99 = 990
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500500);
        for (q, truth) in [(s.p50, 500u64), (s.p90, 900), (s.p99, 990)] {
            assert!(q >= truth, "quantile {q} below true value {truth}");
            assert!(
                (q as u128) * 4 <= (truth as u128) * 5,
                "quantile {q} more than 25% above true value {truth}"
            );
        }
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
    }

    /// Concurrent recording from many threads loses nothing: the final
    /// count/sum equal the arithmetic truth.
    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let threads = 8;
        let per = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (h, c, g) = (Arc::clone(&h), Arc::clone(&c), Arc::clone(&g));
                std::thread::spawn(move || {
                    for i in 0..per {
                        h.record(t * per + i);
                        c.inc();
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        let total: u64 = (0..threads * per).sum();
        assert_eq!(s.sum, total);
        assert_eq!(c.get(), threads * per);
        assert_eq!(g.get(), 0);
    }

    /// Two snapshots of an idle registry are identical, and entries are
    /// sorted by name regardless of registration order.
    #[test]
    fn snapshot_determinism_and_order() {
        let r = Arc::new(Registry::new());
        r.counter("z.last").inc();
        r.histogram("m.middle").record(42);
        r.gauge("a.first").set(-3);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        let names: Vec<&str> = s1.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
        assert_eq!(s1.counter("z.last"), Some(1));
        assert_eq!(s1.gauge("a.first"), Some(-3));
        assert_eq!(s1.histogram("m.middle").map(|h| h.count), Some(1));
        assert_eq!(s1.get("missing"), None);
    }

    #[test]
    fn registry_handles_are_shared_and_registerable() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(r.snapshot().counter("x"), Some(2));

        let external = Arc::new(Counter::new());
        external.add(7);
        r.register_counter("ext", Arc::clone(&external));
        assert_eq!(r.snapshot().counter("ext"), Some(7));
    }

    #[test]
    fn spans_record_hierarchically() {
        let r = Arc::new(Registry::new());
        {
            let root = Span::root(&r, "query");
            {
                let child = root.child("rank");
                assert_eq!(child.path(), "query.rank");
            }
        }
        let s = r.snapshot();
        assert_eq!(s.histogram("query").map(|h| h.count), Some(1));
        assert_eq!(s.histogram("query.rank").map(|h| h.count), Some(1));
        // the child's interval is contained in the root's
        let root = s.histogram("query").unwrap();
        let child = s.histogram("query.rank").unwrap();
        assert!(child.sum <= root.sum);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("service.requests.summary").add(3);
        r.gauge("exec.queue_depth").set(2);
        r.histogram("service.latency.summary").record(1000);
        let text = r.snapshot().prometheus();
        assert!(text.contains("# TYPE service_requests_summary counter"));
        assert!(text.contains("service_requests_summary 3"));
        assert!(text.contains("# TYPE exec_queue_depth gauge"));
        assert!(text.contains("exec_queue_depth 2"));
        assert!(text.contains("# TYPE service_latency_summary summary"));
        assert!(text.contains("service_latency_summary{quantile=\"0.5\"}"));
        assert!(text.contains("service_latency_summary_count 1"));
    }
}
