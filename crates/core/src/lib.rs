//! # visdb-core
//!
//! The VisDB engine: everything the paper's interactive system does,
//! reassembled as a headless API.
//!
//! A [`session::Session`] owns a database, the declared connections, a
//! query and the display parameters; it materialises the base relation
//! (including bounded approximate-join cross products, [`joins`]), runs
//! the relevance pipeline, arranges items into windows, and exposes all
//! the §4.3 interactions — sliders, weights, color-range projection,
//! tuple selection, drill-down into query parts — as methods that
//! recalculate automatically (or on demand in `auto_recalculate(false)`
//! mode).
//!
//! Rendering ([`render`]) turns the session state into framebuffers that
//! reproduce the fig 4/5 visualization panel; [`sliders`] builds the
//! right-hand modification panel with the exact fields the figures show
//! (`# objects`, `# displayed`, `% displayed`, `first/last of color`,
//! `query range`, `weight`, ...).

pub mod joins;
pub mod render;
pub mod session;
pub mod sliders;

pub use joins::{materialize_base, JoinOptions};
pub use render::{render_session, RenderOptions};
pub use session::{
    parse_projection_key, projection_key, BandRebase, DrilldownView, Session, SessionResult,
    SliderDrag,
};
pub use sliders::{OverallPanel, Panel, SliderModel};
