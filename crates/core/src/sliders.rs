//! The query-modification panel of fig 4/5.
//!
//! For every selection predicate the panel shows (§4.3): the database
//! minimum/maximum of the attribute, the lowest and highest value among
//! the *visualized* items, the `# of results`, the current `query range`,
//! the `weight`, the values of a `selected tuple`, and the
//! `first/last of color` readouts for a selected color range. The overall
//! column shows `# objects`, `# displayed`, `% displayed` and the number
//! of exact results.

use std::fmt;

use visdb_types::Value;

/// Panel state for one predicate slider.
#[derive(Debug, Clone, Default)]
pub struct SliderModel {
    /// Window/slider caption (predicate or connection label).
    pub label: String,
    /// Attribute name, when the window belongs to a single attribute.
    pub attr: Option<String>,
    /// Attribute minimum over the whole database (`min:` in fig 5).
    pub db_min: Option<f64>,
    /// Attribute maximum over the whole database (`max:`).
    pub db_max: Option<f64>,
    /// Lowest attribute value among displayed items.
    pub displayed_min: Option<f64>,
    /// Highest attribute value among displayed items.
    pub displayed_max: Option<f64>,
    /// Number of items exactly fulfilling this predicate (`# of results`).
    pub num_results: usize,
    /// Current query range `(lower, upper)`; `None` for non-range
    /// predicates (connections show `---`).
    pub query_range: Option<(Option<f64>, Option<f64>)>,
    /// Weighting factor.
    pub weight: f64,
    /// Attribute value of the currently selected tuple.
    pub selected_tuple: Option<Value>,
    /// Attribute value at the start of the selected color range
    /// (`first of color`).
    pub first_of_color: Option<f64>,
    /// Attribute value at the end of the selected color range
    /// (`last of color`).
    pub last_of_color: Option<f64>,
}

/// Panel state for the overall-result column.
#[derive(Debug, Clone, Default)]
pub struct OverallPanel {
    /// Total data items considered (`# objects`).
    pub num_objects: usize,
    /// Items displayed (`# displayed`).
    pub num_displayed: usize,
    /// Percentage displayed (`% displayed`).
    pub pct_displayed: f64,
    /// Exact answers (`# of results` under the overall spectrum).
    pub num_results: usize,
}

/// The whole modification panel.
#[derive(Debug, Clone, Default)]
pub struct Panel {
    /// Overall-result column.
    pub overall: OverallPanel,
    /// One slider per predicate window.
    pub sliders: Vec<SliderModel>,
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => {
            if x.abs() >= 1000.0 {
                format!("{x:.0}")
            } else {
                format!("{x:.1}")
            }
        }
        None => "---".to_string(),
    }
}

impl fmt::Display for Panel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Visualization and Query Modification ==")?;
        writeln!(f, "# objects    {:>10}", self.overall.num_objects)?;
        writeln!(f, "# displayed  {:>10}", self.overall.num_displayed)?;
        writeln!(
            f,
            "% displayed  {:>9.1}%",
            self.overall.pct_displayed * 100.0
        )?;
        writeln!(f, "# results    {:>10}", self.overall.num_results)?;
        for (i, s) in self.sliders.iter().enumerate() {
            writeln!(f, "--- window {} [{}] ---", i + 1, s.label)?;
            if let Some(attr) = &s.attr {
                writeln!(f, "  attribute     {attr}")?;
            }
            writeln!(
                f,
                "  min/max       {} / {}",
                fmt_opt(s.db_min),
                fmt_opt(s.db_max)
            )?;
            writeln!(
                f,
                "  displayed     {} .. {}",
                fmt_opt(s.displayed_min),
                fmt_opt(s.displayed_max)
            )?;
            match s.query_range {
                Some((lo, hi)) => {
                    writeln!(f, "  query range   {} .. {}", fmt_opt(lo), fmt_opt(hi))?
                }
                None => writeln!(f, "  query range   --- .. ---")?,
            }
            writeln!(f, "  weight        {:.3}", s.weight)?;
            writeln!(f, "  # of results  {}", s.num_results)?;
            if let Some(v) = &s.selected_tuple {
                writeln!(f, "  select. tuple {v}")?;
            }
            if s.first_of_color.is_some() || s.last_of_color.is_some() {
                writeln!(
                    f,
                    "  first/last of color {} / {}",
                    fmt_opt(s.first_of_color),
                    fmt_opt(s.last_of_color)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_formats_like_the_figure() {
        let panel = Panel {
            overall: OverallPanel {
                num_objects: 68376,
                num_displayed: 27224,
                pct_displayed: 0.398,
                num_results: 5217,
            },
            sliders: vec![SliderModel {
                label: "Temperature > 15".into(),
                attr: Some("Temperature".into()),
                db_min: Some(-5.3),
                db_max: Some(33.6),
                displayed_min: Some(16.5),
                displayed_max: Some(18.7),
                num_results: 30000,
                query_range: Some((Some(15.0), None)),
                weight: 1.0,
                selected_tuple: Some(Value::Float(18.7)),
                first_of_color: Some(16.5),
                last_of_color: Some(18.7),
            }],
        };
        let s = panel.to_string();
        assert!(s.contains("# objects         68376"));
        assert!(s.contains("# displayed       27224"));
        assert!(s.contains("39.8%"));
        assert!(s.contains("Temperature > 15"));
        assert!(s.contains("query range   15.0 .. ---"));
        assert!(s.contains("first/last of color 16.5 / 18.7"));
    }

    #[test]
    fn connection_sliders_show_dashes() {
        let panel = Panel {
            overall: OverallPanel::default(),
            sliders: vec![SliderModel {
                label: "W. with-time-diff(120) Air-P.".into(),
                weight: 0.5,
                ..Default::default()
            }],
        };
        let s = panel.to_string();
        assert!(s.contains("min/max       --- / ---"));
        assert!(s.contains("query range   --- .. ---"));
        assert!(s.contains("weight        0.500"));
    }
}
