//! Rendering a session into the fig 4/5 visualization panel.

use visdb_arrange::place_like;
use visdb_color::Rgb;
use visdb_render::{compose_grid, render_item_window, render_spectrum, Framebuffer, WindowSpec};
use visdb_types::Result;

use crate::session::Session;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Windows per row in the composed panel (fig 4 uses 2).
    pub columns: usize,
    /// Margin between windows in pixels.
    pub margin: usize,
    /// Also append slider spectrum strips under the windows. The strips
    /// are a full-relation view: for a session running the streaming
    /// execution mode ([`Session::set_materialization`]) the
    /// per-window strips cover only the ranked rows its
    /// late-materialized windows hold (the rendered windows themselves
    /// are complete — they only ever paint displayed items).
    ///
    /// [`Session::set_materialization`]: crate::Session::set_materialization
    pub with_spectra: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            columns: 2,
            margin: 4,
            with_spectra: false,
        }
    }
}

/// Render the whole visualization part: the overall-result window first
/// ("the upper left part of the visualization window", §3), then one
/// window per selection predicate with *position-coherent* item
/// placement.
pub fn render_session(session: &mut Session, opts: &RenderOptions) -> Result<Framebuffer> {
    let highlighted: Vec<u32> = session
        .selected_item()
        .map(|i| i as u32)
        .into_iter()
        .collect();
    let ppi = session.pixels_per_item();
    let map0 = session.colormap().clone();
    session.result()?; // ensure the cache is fresh
    let map = map0.clone();
    let res = session.cached_result().expect("cached by result()");

    let mut frames = Vec::with_capacity(1 + res.pipeline.windows.len());

    // overall result window: color by combined distance
    let combined = res.pipeline.combined.clone();
    let overall_colors = move |item: u32| -> Option<Rgb> {
        combined
            .get(item as usize)
            .copied()
            .flatten()
            .and_then(|d| map.color_for_distance(d).ok())
    };
    frames.push(render_item_window(
        &WindowSpec {
            grid: &res.grid,
            colors: &overall_colors,
            highlighted: &highlighted,
        },
        ppi,
    ));

    // per-predicate windows: same placement, window-local colors
    for win in &res.pipeline.windows {
        let grid = place_like(&res.grid);
        // windows cover every displayed item whether materialized or
        // late-materialized (the grid only places displayed items)
        let win = win.clone();
        let map = map0.clone();
        let colors = move |item: u32| -> Option<Rgb> {
            win.normalized_at(item as usize)
                .and_then(|d| map.color_for_distance(d).ok())
        };
        frames.push(render_item_window(
            &WindowSpec {
                grid: &grid,
                colors: &colors,
                highlighted: &highlighted,
            },
            ppi,
        ));
    }

    if opts.with_spectra {
        let map = &map0;
        let width = res.grid.width() * ppi.side();
        frames.push(render_spectrum(&res.pipeline.combined, map, width, 8));
        for win in &res.pipeline.windows {
            frames.push(render_spectrum(&win.normalized_options(), map, width, 8));
        }
    }

    Ok(compose_grid(&frames, opts.columns, opts.margin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use visdb_query::ast::CompareOp;
    use visdb_query::builder::QueryBuilder;
    use visdb_query::connection::ConnectionRegistry;
    use visdb_relevance::pipeline::DisplayPolicy;
    use visdb_storage::{Database, TableBuilder};
    use visdb_types::{Column, DataType, Value};

    fn session() -> Session {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..400 {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
        s.set_window_size(16, 16).unwrap();
        s.set_display_policy(DisplayPolicy::Percentage(50.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 390.0)
                .cmp("x", CompareOp::Lt, 398.0)
                .build(),
        )
        .unwrap();
        s
    }

    #[test]
    fn renders_overall_plus_predicate_windows() {
        let mut s = session();
        let fb = render_session(&mut s, &RenderOptions::default()).unwrap();
        // 3 windows in 2 columns: 2 cells wide, 2 rows
        assert!(fb.width() >= 2 * 16);
        assert!(fb.height() >= 2 * 16);
        // there must be yellow-ish exact answers somewhere
        let yellowish = fb
            .pixels()
            .iter()
            .filter(|p| p.r > 200 && p.g > 200 && p.b < 90)
            .count();
        assert!(yellowish > 0, "no exact-answer pixels rendered");
    }

    #[test]
    fn highlight_is_rendered_white() {
        let mut s = session();
        s.select_tuple(395).unwrap();
        let fb = render_session(&mut s, &RenderOptions::default()).unwrap();
        // the item appears highlighted in all 3 windows
        assert_eq!(fb.count_color(visdb_color::HIGHLIGHT), 3);
    }

    #[test]
    fn spectra_extend_the_panel() {
        let mut s = session();
        let plain = render_session(&mut s, &RenderOptions::default()).unwrap();
        let with = render_session(
            &mut s,
            &RenderOptions {
                with_spectra: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.height() > plain.height());
    }

    #[test]
    fn pixels_per_item_scales_output() {
        let mut s = session();
        let fb1 = render_session(&mut s, &RenderOptions::default()).unwrap();
        s.set_pixels_per_item(visdb_arrange::PixelsPerItem::Four)
            .unwrap();
        let fb2 = render_session(&mut s, &RenderOptions::default()).unwrap();
        assert!(fb2.width() > fb1.width());
    }
}
