//! Base-relation materialisation, including approximate joins (§4.4).
//!
//! "The totality of data items that need to be considered in this case
//! corresponds to the cross product of all tables involved."
//!
//! A full cross product of two 10⁵-row tables is 10¹⁰ items — far beyond
//! the display budget and memory. Two bounding strategies keep the
//! semantics while staying tractable:
//!
//! * **Band join** — when the query contains a `TimeDiff` connection, the
//!   only pairs that can ever be displayed are those whose time
//!   difference is near the expected offset. We enumerate exactly the
//!   pairs within `band_seconds` of the offset (sort + binary search,
//!   O((n+m) log m + |result|)) plus a deterministic sample of far pairs
//!   so the windows still show the far-distance color mass.
//! * **Uniform pair sampling** — otherwise, a deterministic stride sample
//!   of the cross product bounded by `row_cap`.
//!
//! Both strategies are *substitutions for a scrolling display*, not for
//! the math: every retained pair gets its true distance.

use visdb_query::ast::{ConditionNode, Query, Weighted};
use visdb_query::connection::ConnectionKind;
use visdb_storage::{Database, Table};
use visdb_types::{Error, Result};

/// Bounds for cross-product materialisation.
#[derive(Debug, Clone)]
pub struct JoinOptions {
    /// Maximum number of base-relation rows to materialise.
    pub row_cap: usize,
    /// Half-width of the time band around a `TimeDiff` connection's
    /// expected offset, in seconds.
    pub band_seconds: f64,
    /// Fraction of the row cap reserved for far (out-of-band) pairs so
    /// the distance distribution keeps its tail.
    pub far_fraction: f64,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            row_cap: 200_000,
            band_seconds: 3_600.0 * 6.0,
            far_fraction: 0.25,
        }
    }
}

/// Find the first `TimeDiff` connection in the condition tree, returning
/// `(left attr column name, right attr column name, expected offset)`.
fn find_time_diff(node: &ConditionNode) -> Option<(String, String, f64)> {
    let mut found = None;
    node.visit(&mut |n| {
        if found.is_some() {
            return;
        }
        if let ConditionNode::Connection(u) = n {
            if let ConnectionKind::TimeDiff { left, right } = &u.def.kind {
                found = Some((
                    left.column.clone(),
                    right.column.clone(),
                    *u.params.first().unwrap_or(&0.0),
                ));
            }
        }
    });
    found
}

/// Materialise the base relation for a query: the single table itself, or
/// a bounded cross product for multi-table queries.
pub fn materialize_base(db: &Database, query: &Query, opts: &JoinOptions) -> Result<Table> {
    match query.tables.len() {
        0 => Err(Error::invalid_query("query references no tables")),
        1 => Ok(db.table(&query.tables[0])?.clone()),
        2 => {
            let left = db.table(&query.tables[0])?;
            let right = db.table(&query.tables[1])?;
            let time_diff = query
                .condition
                .as_ref()
                .and_then(|w: &Weighted| find_time_diff(&w.node));
            materialize_pair(left, right, time_diff, opts)
        }
        n => Err(Error::invalid_query(format!(
            "queries over {n} tables are not supported (the paper's interface joins two relations at a time)"
        ))),
    }
}

fn materialize_pair(
    left: &Table,
    right: &Table,
    time_diff: Option<(String, String, f64)>,
    opts: &JoinOptions,
) -> Result<Table> {
    let n = left.len();
    let m = right.len();
    let total = n.saturating_mul(m);
    let name = format!("{}x{}", left.name(), right.name());
    if total <= opts.row_cap {
        return Ok(left.cross_product(right, name));
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if let Some((lcol_name, rcol_name, expected)) = &time_diff {
        // band join on timestamps: keep pairs with
        // |t_left - t_right - expected| <= band. NOTE: the TimeDiff kind
        // declares left = first query table? Not necessarily — resolve by
        // column presence: try left table first, fall back to swapped.
        let (lcol, rcol, sign) = match (
            left.column_by_name(lcol_name),
            right.column_by_name(rcol_name),
        ) {
            (Ok(a), Ok(b)) => (a, b, 1.0),
            _ => (
                left.column_by_name(rcol_name)?,
                right.column_by_name(lcol_name)?,
                -1.0,
            ),
        };
        // sort right rows by timestamp for binary search
        let mut right_ts: Vec<(f64, usize)> = (0..m)
            .filter_map(|j| rcol.get_f64(j).map(|t| (t, j)))
            .collect();
        right_ts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let band_cap = ((1.0 - opts.far_fraction) * opts.row_cap as f64) as usize;
        'left: for i in 0..n {
            let Some(tl) = lcol.get_f64(i) else { continue };
            // want: tl - tr - expected*sign ≈ 0  =>  tr ≈ tl - expected*sign
            let target = tl - expected * sign;
            let lo = target - opts.band_seconds;
            let hi = target + opts.band_seconds;
            let start = right_ts.partition_point(|(t, _)| *t < lo);
            for &(t, j) in &right_ts[start..] {
                if t > hi {
                    break;
                }
                pairs.push((i, j));
                if pairs.len() >= band_cap {
                    break 'left;
                }
            }
        }
    }
    // top up with a deterministic stride sample of the full cross product
    let want_far = opts.row_cap.saturating_sub(pairs.len());
    if want_far > 0 {
        let stride = (total / want_far.max(1)).max(1);
        let mut k = 0usize;
        while k < total && pairs.len() < opts.row_cap {
            pairs.push((k / m, k % m));
            k += stride;
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let left_idx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let right_idx: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let lpart = left.gather(left.name(), &left_idx);
    let rpart = right.gather(right.name(), &right_idx);
    // zip the gathered halves row-by-row
    let schema = left.schema().join(right.schema(), right.name());
    let mut out = Table::new(name, schema);
    for r in 0..pairs.len() {
        let mut row = lpart.row(r)?;
        row.extend(rpart.row(r)?);
        out.push_row(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::AttrRef;
    use visdb_query::builder::QueryBuilder;
    use visdb_query::connection::ConnectionDef;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn ts_table(name: &str, count: usize, step: i64, offset: i64) -> Table {
        let mut b = TableBuilder::new(
            name,
            vec![
                Column::new("DateTime", DataType::Timestamp),
                Column::new("v", DataType::Float),
            ],
        );
        for i in 0..count {
            b = b
                .row(vec![
                    Value::Timestamp(i as i64 * step + offset),
                    Value::Float(i as f64),
                ])
                .unwrap();
        }
        b.build()
    }

    fn db_two(n: usize, m: usize) -> Database {
        let mut db = Database::new("d");
        db.add_table(ts_table("L", n, 3600, 0));
        db.add_table(ts_table("R", m, 3600, 600));
        db
    }

    fn time_conn(db: &Database) -> visdb_query::connection::ConnectionUse {
        let _ = db;
        ConnectionDef {
            name: "with-time-diff".into(),
            left_table: "L".into(),
            right_table: "R".into(),
            kind: ConnectionKind::TimeDiff {
                left: AttrRef::qualified("L", "DateTime"),
                right: AttrRef::qualified("R", "DateTime"),
            },
        }
        .instantiate(vec![7200.0])
        .unwrap()
    }

    #[test]
    fn single_table_passthrough() {
        let db = db_two(5, 5);
        let q = QueryBuilder::from_tables(["L"]).build();
        let t = materialize_base(&db, &q, &JoinOptions::default()).unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn small_cross_product_is_full() {
        let db = db_two(10, 10);
        let q = QueryBuilder::from_tables(["L", "R"]).build();
        let t = materialize_base(&db, &q, &JoinOptions::default()).unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.schema().len(), 4);
        assert!(t.schema().index_of("R.DateTime").is_some());
    }

    #[test]
    fn capped_cross_product_samples() {
        let db = db_two(500, 500); // 250k pairs > cap
        let q = QueryBuilder::from_tables(["L", "R"]).build();
        let opts = JoinOptions {
            row_cap: 10_000,
            ..Default::default()
        };
        let t = materialize_base(&db, &q, &opts).unwrap();
        assert!(t.len() <= 10_000);
        assert!(t.len() >= 9_000, "sample too small: {}", t.len());
    }

    #[test]
    fn band_join_keeps_near_offset_pairs() {
        let db = db_two(500, 500);
        let conn = time_conn(&db);
        let q = QueryBuilder::from_tables(["L", "R"]).connect(conn).build();
        let opts = JoinOptions {
            row_cap: 50_000,
            band_seconds: 4.0 * 3600.0,
            far_fraction: 0.1,
        };
        let t = materialize_base(&db, &q, &opts).unwrap();
        assert!(t.len() <= 50_000);
        // count pairs whose diff is within 1h of the expected 7200s
        let lt = t.column_by_name("DateTime").unwrap();
        let rt = t.column_by_name("R.DateTime").unwrap();
        let near = (0..t.len())
            .filter(|&i| {
                let d = lt.get_f64(i).unwrap() - rt.get_f64(i).unwrap() - 7200.0;
                d.abs() <= 3600.0
            })
            .count();
        // every left row has ~2-3 in-band-hour partners; must be well
        // represented (a uniform sample would have almost none)
        assert!(near >= 500, "only {near} near pairs");
    }

    #[test]
    fn three_tables_rejected() {
        let db = db_two(3, 3);
        let q = QueryBuilder::from_tables(["L", "R", "L"]).build();
        assert!(materialize_base(&db, &q, &JoinOptions::default()).is_err());
    }
}
