//! The interactive VisDB session.
//!
//! Owns database + connections + query + display parameters, caches the
//! computed [`SessionResult`], and exposes every §4.3 interaction as a
//! method. "In the normal mode, the system recalculates the visualization
//! after each modification of the query. The user may also switch to an
//! 'auto recalculate off' mode where queries are only recalculated on
//! demand."

use std::sync::Arc;

use visdb_arrange::{arrange_overall, ItemGrid, PixelsPerItem};
use visdb_color::{Colormap, ColormapKind};
use visdb_distance::registry::{ColumnDistance, DistanceResolver};
use visdb_exec::CancelToken;
use visdb_index::{IncrementalCache, ProjectionSource, SortedProjection};
use visdb_query::ast::{CompareOp, ConditionNode, PredicateTarget, Query, Weighted};
use visdb_query::connection::ConnectionRegistry;
use visdb_query::parser::parse_query;
use visdb_query::validate::validate;
use visdb_relevance::cache::{PipelineCache, WindowSource};
use visdb_relevance::eval::{EvalContext, ExecMode};
use visdb_relevance::normalize::{fit_k, NormParams};
use visdb_relevance::pipeline::{
    display_count, run_pipeline_opts, DisplayPolicy, Materialization, PipelineOptions,
    PipelineOutput, PipelineTrace, SharedWindows,
};
use visdb_storage::{Database, Row, Table};
use visdb_types::{Error, Result, Value};

use crate::joins::{materialize_base, JoinOptions};
use crate::sliders::{OverallPanel, Panel, SliderModel};

/// The cached computation of one query evaluation.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The materialised base relation (table or bounded cross product).
    pub base: Table,
    /// The relevance pipeline output.
    pub pipeline: PipelineOutput,
    /// The spiral arrangement of the displayed items.
    pub grid: ItemGrid,
}

/// The interactive answer of one slider drag ([`Session::drag_slider`]):
/// everything the §4.3 panel shows after a bound modification, without
/// the full O(n) pipeline artifacts (those are recomputed lazily by the
/// next [`Session::result`] call).
#[derive(Debug, Clone)]
pub struct SliderDrag {
    /// The items the display policy selects, in relevance order —
    /// bit-identical to `PipelineOutput::displayed` of a full recompute.
    pub displayed: Vec<usize>,
    /// Exact answers (combined distance 0) of the modified query.
    pub num_exact: usize,
    /// The dragged window's fitted normalization.
    pub norm_params: Option<NormParams>,
    /// Spiral arrangement of the displayed items.
    pub grid: ItemGrid,
    /// True when the sorted-projection fast path served the drag
    /// (O(log n + k) work); false means a full pipeline recompute ran.
    pub incremental: bool,
    /// Hit/miss counters of the §6 incremental range cache backing the
    /// fast path (None on the full-recompute fallback).
    pub index_stats: Option<visdb_index::CacheStats>,
}

/// The per-session sorted-projection slider index: one column's sorted
/// permutation behind the §6 incremental range cache. Rebuilt when the
/// dragged column (or the base relation) changes. The projection itself
/// (~20 bytes/row: coords + perm + sorted values) lives behind an `Arc`:
/// with a shared [`ProjectionSource`] attached
/// ([`Session::set_shared_projections`]), N sessions dragging the same
/// column share **one** build per (dataset generation, column) instead
/// of paying one each; only the thin candidate-band cache stays
/// per-session.
struct SliderIndex {
    table: String,
    rows: usize,
    column: String,
    cache: IncrementalCache<Arc<SortedProjection>>,
}

/// The shared-projection cache key: dataset-generation scope, table, row
/// count and column, length-prefix framed exactly like
/// [`visdb_relevance::window_key`] — so a crafted scope/table/column
/// string cannot shift bytes across field boundaries, and the serving
/// layer's dataset invalidation can parse the scope back out with
/// [`visdb_relevance::key_scope`].
pub fn projection_key(scope: &str, table: &str, rows: usize, column: &str) -> String {
    format!(
        "{}:{scope}{}:{table}{rows};{}:{column}",
        scope.len(),
        table.len(),
        column.len()
    )
}

/// Inverse of [`projection_key`]: recover `(scope, table, rows, column)`
/// from a stored key, or `None` for byte sequences that are not
/// well-formed keys. The serving layer uses this to migrate shared
/// projections across dataset appends — matching entries of the old
/// generation are re-keyed (and merged) instead of rebuilt.
pub fn parse_projection_key(key: &str) -> Option<(&str, &str, usize, &str)> {
    fn framed(s: &str) -> Option<(&str, &str)> {
        let (len, rest) = s.split_once(':')?;
        let len: usize = len.parse().ok()?;
        if !rest.is_char_boundary(len) {
            return None;
        }
        Some(rest.split_at(len))
    }
    let (scope, rest) = framed(key)?;
    let (table, rest) = framed(rest)?;
    let (rows, col_frame) = rest.split_once(';')?;
    let rows: usize = rows.parse().ok()?;
    let (column, tail) = framed(col_frame)?;
    tail.is_empty().then_some((scope, table, rows, column))
}

/// How [`Session::rebase`] handled the slider index across a dataset
/// append (the serving layer's `delta.bands_*` counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandRebase {
    /// No slider index existed; nothing to carry over.
    None,
    /// The index was carried to the new generation and its §6 candidate
    /// band repaired by examining only the appended rows.
    Repaired,
    /// The index could not be carried over and was dropped (it is
    /// rebuilt lazily on the next drag).
    Dropped,
}

/// A drill-down view of one query part (§4.4: double-clicking a boolean
/// operator opens a visualization window for that subtree).
#[derive(Debug, Clone)]
pub struct DrilldownView {
    /// Pipeline output for the subtree (its own windows).
    pub pipeline: PipelineOutput,
    /// Arrangement: shared with the parent ("the same arrangement as for
    /// the overall result") or independent, per the `independent` flag
    /// passed to [`Session::drilldown`].
    pub grid: ItemGrid,
}

/// An interactive VisDB session.
///
/// The database is held behind an [`Arc`]: any number of sessions —
/// across threads — share one loaded dataset with zero copies, which is
/// what the `visdb-service` serving layer builds on.
pub struct Session {
    db: Arc<Database>,
    registry: ConnectionRegistry,
    resolver: DistanceResolver,
    query: Option<Query>,
    policy: DisplayPolicy,
    join_opts: JoinOptions,
    window_w: usize,
    window_h: usize,
    ppi: PixelsPerItem,
    colormap: Colormap,
    auto_recalculate: bool,
    selected_item: Option<usize>,
    color_range: Option<(usize, f64, f64)>,
    result: Option<SessionResult>,
    /// §6 incremental recalculation: unchanged predicate windows are
    /// reused across query modifications.
    pipeline_cache: PipelineCache,
    /// Cross-session predicate-window reuse: a cache shared with other
    /// sessions over the same dataset generation (see
    /// [`Session::set_shared_windows`]).
    shared_windows: Option<(String, Arc<dyn WindowSource>)>,
    /// Cross-session sorted-projection reuse for the slider fast path
    /// (see [`Session::set_shared_projections`]).
    shared_projections: Option<(String, Arc<dyn ProjectionSource>)>,
    /// Horizontal partitions per pipeline run (0/1 = unpartitioned).
    /// A pure scheduling knob: outputs are bit-identical either way.
    partitions: usize,
    /// Streaming vs materialized pipeline execution (see
    /// [`Session::set_materialization`]). Bit-identical either way.
    materialization: Materialization,
    /// Sorted-projection slider index (see [`Session::drag_slider`]).
    slider_index: Option<SliderIndex>,
    /// Collect a [`visdb_relevance::PipelineTrace`] on every
    /// recalculation (see [`Session::set_collect_trace`]).
    collect_trace: bool,
    /// Cooperative cancellation for the *current* request (see
    /// [`Session::set_cancel_token`]): pipeline runs poll it per chunk
    /// and stop with a structured error when it trips.
    cancel: Option<CancelToken>,
}

impl Session {
    /// New session over a shared database and its declared connections.
    ///
    /// Pass `Arc::new(db)` for a single-user session, or clone one
    /// `Arc<Database>` into many sessions to multiplex users over the
    /// same dataset (see `visdb-service`).
    pub fn new(db: Arc<Database>, registry: ConnectionRegistry) -> Self {
        Session {
            db,
            registry,
            resolver: DistanceResolver::new(),
            query: None,
            policy: DisplayPolicy::Percentage(25.0),
            join_opts: JoinOptions::default(),
            window_w: 64,
            window_h: 64,
            ppi: PixelsPerItem::One,
            colormap: Colormap::new(ColormapKind::VisDb),
            auto_recalculate: true,
            selected_item: None,
            color_range: None,
            result: None,
            pipeline_cache: PipelineCache::new(),
            shared_windows: None,
            shared_projections: None,
            partitions: 0,
            materialization: Materialization::Auto,
            slider_index: None,
            collect_trace: false,
            cancel: None,
        }
    }

    /// Attach (or clear) the cancellation/deadline token for requests
    /// executed from now on. The serving layer sets a fresh token per
    /// request and clears it after; pipeline runs poll the token once
    /// per 16k-row chunk and return [`Error::Cancelled`] /
    /// [`Error::DeadlineExceeded`] when it trips — leaving every cache
    /// layer untouched, so a re-ask is byte-identical to a cold run.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Recycle the session after a panic unwound through a request
    /// (the serving layer's poisoned-slot recovery): drop any result or
    /// incremental state a half-finished run may have left behind, so
    /// the next identical query recomputes from scratch — byte-identical
    /// to a cold run. Configuration (query, policy, weights, shared
    /// caches) is left exactly as the user set it.
    pub fn recover(&mut self) {
        self.result = None;
        self.pipeline_cache = PipelineCache::new();
        self.slider_index = None;
        self.cancel = None;
    }

    /// Replace the distance resolver (application-specific distances).
    /// A custom resolver changes distance semantics, so any shared
    /// window cache attached earlier is detached — its entries would no
    /// longer be valid for this session.
    pub fn with_resolver(mut self, resolver: DistanceResolver) -> Self {
        self.resolver = resolver;
        self.shared_windows = None;
        self
    }

    /// Attach a predicate-window cache shared with other sessions (§6
    /// incremental reuse made cross-session: another user's slider drag
    /// leaves every unchanged window pre-evaluated for this one).
    ///
    /// `scope` must uniquely identify the dataset *generation* — the
    /// serving layer uses `name#generation` so sessions over a replaced
    /// dataset of the same name never share entries. Sessions with a
    /// non-default distance resolver must not share a cache (attaching
    /// one and then calling [`Session::with_resolver`] detaches it).
    /// Multi-table (sampled cross-product) bases never consult the
    /// shared cache — their row content is not identified by the key.
    pub fn set_shared_windows(&mut self, scope: impl Into<String>, cache: Arc<dyn WindowSource>) {
        self.shared_windows = Some((scope.into(), cache));
    }

    /// Attach a sorted-projection cache shared with other sessions: the
    /// slider fast path's per-column build (~20 bytes/row) is fetched
    /// from — and contributed to — a per-(dataset generation, column)
    /// shared store instead of being rebuilt per session.
    ///
    /// `scope` must uniquely identify the dataset *generation*, exactly
    /// like [`Session::set_shared_windows`]. Projections are pure column
    /// data, so they remain shareable under custom distance resolvers.
    pub fn set_shared_projections(
        &mut self,
        scope: impl Into<String>,
        cache: Arc<dyn ProjectionSource>,
    ) {
        self.shared_projections = Some((scope.into(), cache));
    }

    /// Move this session onto a new generation of its dataset after an
    /// **append** (`db` must hold the same tables with the old rows
    /// unchanged and new rows only at the end — the delta-generation
    /// contract of `visdb-service`). O(Δ) in the appended rows:
    ///
    /// * the shared-cache scopes are re-pointed at the new generation
    ///   (the serving layer migrates the caches themselves first);
    /// * the cached [`SessionResult`] is invalidated — displayed sets
    ///   and normalizations may legitimately change under new data;
    /// * the slider index's sorted projection is swapped for the new
    ///   generation's (shared-cache hit, or an O(Δ log Δ + n) local
    ///   [`SortedProjection::extended`] merge) and its §6 candidate band
    ///   repaired in place via [`IncrementalCache::rebase`], examining
    ///   only rows `old_n..new_n`.
    pub fn rebase(&mut self, db: Arc<Database>, scope: impl Into<String>) -> BandRebase {
        let scope = scope.into();
        self.db = db;
        // the per-session window cache fingerprints (table, rows,
        // budget) and would miss anyway; drop it eagerly so no code
        // path can ever consult pre-append entries
        self.pipeline_cache.invalidate();
        self.invalidate();
        if let Some((s, _)) = &mut self.shared_windows {
            s.clone_from(&scope);
        }
        let outcome = match self.slider_index.take() {
            None => BandRebase::None,
            Some(mut si) => {
                let carried = (|| {
                    let table = self.db.table(&si.table).ok()?;
                    let n2 = table.len();
                    if n2 < si.rows {
                        return None; // shrank: not an append
                    }
                    let proj: Arc<SortedProjection> = match &self.shared_projections {
                        Some((_, shared)) => {
                            let key = projection_key(&scope, &si.table, n2, &si.column);
                            match shared.lookup(&key) {
                                Some(p) => p,
                                None => {
                                    let col = table.column_by_name(&si.column).ok()?;
                                    let p =
                                        Arc::new(si.cache.index().extended(n2, |i| col.get_f64(i)));
                                    shared.store(key, Arc::clone(&p));
                                    p
                                }
                            }
                        }
                        None => {
                            let col = table.column_by_name(&si.column).ok()?;
                            Arc::new(si.cache.index().extended(n2, |i| col.get_f64(i)))
                        }
                    };
                    si.cache.rebase(proj, si.rows, n2);
                    si.rows = n2;
                    Some(())
                })();
                match carried {
                    Some(()) => {
                        self.slider_index = Some(si);
                        BandRebase::Repaired
                    }
                    None => BandRebase::Dropped,
                }
            }
        };
        if let Some((s, _)) = &mut self.shared_projections {
            *s = scope;
        }
        outcome
    }

    /// Run the pipeline over `parts` horizontal partitions of the base
    /// relation (0 or 1 restores the unpartitioned walk). Results are
    /// bit-identical either way — partitioning only changes how the
    /// work is scheduled on the shared runtime — so the cached result
    /// stays valid.
    pub fn set_partitions(&mut self, parts: usize) {
        self.partitions = parts;
    }

    /// Streaming vs materialized pipeline execution. `Streaming` trades
    /// the §6 window caches for zero-materialization execution:
    /// recalculations skip both cache layers and run the two-pass
    /// streaming pipeline whenever the query shape allows, assembling
    /// predicate windows lazily at the ranked (sorted-prefix) rows. The
    /// default `Auto` keeps today's cached, materialized behaviour for
    /// sessions (caches are attached, so the planner materializes).
    ///
    /// Pipeline outputs — combined distances, relevance, ranking,
    /// display sets, window values at every ranked row — are
    /// bit-identical in all modes. The one intentional exception: the
    /// optional per-window spectrum strips
    /// ([`crate::RenderOptions::with_spectra`], default off) are a
    /// full-relation view, so under streaming they show only the ranked
    /// rows a late-materialized window covers.
    pub fn set_materialization(&mut self, materialization: Materialization) {
        self.materialization = materialization;
        self.invalidate();
    }

    /// Collect a per-phase [`visdb_relevance::PipelineTrace`] on every
    /// recalculation, retrievable through [`Session::last_trace`]. Off
    /// by default: the disabled path costs one branch per pipeline run
    /// and allocates nothing. Enabling drops a cached untraced result so
    /// the next lookup re-runs with tracing on.
    pub fn set_collect_trace(&mut self, on: bool) {
        if on && !self.collect_trace {
            // a cached result computed without tracing has no trace to
            // report; recompute lazily
            if self
                .result
                .as_ref()
                .is_some_and(|r| r.pipeline.trace.is_none())
            {
                self.invalidate();
            }
        }
        self.collect_trace = on;
    }

    /// The trace of the last full pipeline run, when trace collection is
    /// enabled ([`Session::set_collect_trace`]) and a result is cached.
    /// Slider drags answered entirely by the sorted-projection fast path
    /// keep the previous full run's trace.
    pub fn last_trace(&self) -> Option<&PipelineTrace> {
        self.result
            .as_ref()
            .and_then(|r| r.pipeline.trace.as_deref())
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// A new shared handle to the underlying database.
    pub fn shared_db(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    /// The current display policy.
    pub fn display_policy(&self) -> &DisplayPolicy {
        &self.policy
    }

    /// The declared connections.
    pub fn registry(&self) -> &ConnectionRegistry {
        &self.registry
    }

    /// Current colormap.
    pub fn colormap(&self) -> &Colormap {
        &self.colormap
    }

    /// Window dimensions in items.
    pub fn window_size(&self) -> (usize, usize) {
        (self.window_w, self.window_h)
    }

    /// Pixels per item.
    pub fn pixels_per_item(&self) -> PixelsPerItem {
        self.ppi
    }

    /// Currently highlighted (selected) item.
    pub fn selected_item(&self) -> Option<usize> {
        self.selected_item
    }

    /// Toggle automatic recalculation (§4.3 "'auto recalculate off' mode
    /// ... useful for large databases").
    pub fn set_auto_recalculate(&mut self, on: bool) {
        self.auto_recalculate = on;
    }

    /// Set the display policy (percentage slider / pixel budget / gap
    /// heuristic). "Note that changing the percentage of data being
    /// displayed may completely change the visualization since the
    /// distance values are normalized according to the new range."
    pub fn set_display_policy(&mut self, policy: DisplayPolicy) -> Result<()> {
        self.policy = policy;
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Set the window dimensions (items per window).
    pub fn set_window_size(&mut self, w: usize, h: usize) -> Result<()> {
        if w == 0 || h == 0 {
            return Err(Error::invalid_parameter("window", "dimensions must be > 0"));
        }
        self.window_w = w;
        self.window_h = h;
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Set how many pixels represent one item.
    pub fn set_pixels_per_item(&mut self, ppi: PixelsPerItem) -> Result<()> {
        self.ppi = ppi;
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Switch the colormap (rendering only; no recalculation needed).
    pub fn set_colormap(&mut self, kind: ColormapKind) {
        self.colormap = Colormap::new(kind);
    }

    /// Bound cross-product materialisation. Drops the incremental window
    /// cache: different sampling can produce a same-size base relation
    /// with different rows.
    pub fn set_join_options(&mut self, opts: JoinOptions) -> Result<()> {
        self.join_opts = opts;
        self.pipeline_cache.invalidate();
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Incremental-recalculation statistics: how many predicate windows
    /// were reused vs re-evaluated across modifications (§6).
    pub fn cache_stats(&self) -> (usize, usize) {
        (self.pipeline_cache.hits, self.pipeline_cache.misses)
    }

    /// Install a query (validated against the catalog).
    pub fn set_query(&mut self, query: Query) -> Result<()> {
        validate(&self.db, &query)?;
        self.query = Some(query);
        self.selected_item = None;
        self.color_range = None;
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Parse and install a query from the mini SQL dialect.
    pub fn set_query_text(&mut self, text: &str) -> Result<()> {
        let q = parse_query(text, &self.registry)?;
        self.set_query(q)
    }

    /// The current query.
    pub fn query(&self) -> Option<&Query> {
        self.query.as_ref()
    }

    fn invalidate(&mut self) {
        self.result = None;
    }

    fn maybe_recalculate(&mut self) -> Result<()> {
        if self.auto_recalculate && self.query.is_some() {
            self.recalculate()
        } else {
            Ok(())
        }
    }

    /// Force recalculation (the on-demand mode's "recalculate" button).
    pub fn recalculate(&mut self) -> Result<()> {
        let query = self
            .query
            .as_ref()
            .ok_or_else(|| Error::invalid_query("no query installed"))?;
        let base = materialize_base(&self.db, query, &self.join_opts)?;
        let streaming = self.materialization == Materialization::Streaming;
        // the shared cache key identifies the base by (table, row count);
        // sampled cross products can collide on both, so only plain
        // single-table bases participate; forced streaming bypasses both
        // cache layers entirely (nothing cacheable is produced)
        let shared = self
            .shared_windows
            .as_ref()
            .filter(|_| query.tables.len() == 1 && !streaming)
            .map(|(scope, cache)| SharedWindows {
                scope,
                cache: cache.as_ref(),
            });
        let partitioning = (self.partitions > 1).then(|| base.partitions(self.partitions));
        let pipeline = run_pipeline_opts(
            &self.db,
            &base,
            &self.resolver,
            query.condition.as_ref(),
            &self.policy,
            PipelineOptions {
                cache: (!streaming).then_some(&mut self.pipeline_cache),
                shared,
                partitions: partitioning.as_ref(),
                materialization: self.materialization,
                trace: self.collect_trace,
                cancel: self.cancel.as_ref(),
                ..Default::default()
            },
        )?;
        let grid = arrange_overall(&pipeline.displayed, self.window_w, self.window_h);
        self.result = Some(SessionResult {
            base,
            pipeline,
            grid,
        });
        Ok(())
    }

    /// The cached result, recalculating if needed.
    pub fn result(&mut self) -> Result<&SessionResult> {
        if self.result.is_none() {
            self.recalculate()?;
        }
        Ok(self.result.as_ref().expect("just recalculated"))
    }

    /// The cached result without recalculation (None when stale).
    pub fn cached_result(&self) -> Option<&SessionResult> {
        self.result.as_ref()
    }

    // ----- query modification (the sliders) -------------------------------

    fn top_level_mut(query: &mut Query, idx: usize) -> Result<&mut Weighted> {
        let cond = query
            .condition
            .as_mut()
            .ok_or_else(|| Error::invalid_query("query has no condition"))?;
        if matches!(cond.node, ConditionNode::And(_) | ConditionNode::Or(_)) {
            match &mut cond.node {
                ConditionNode::And(cs) | ConditionNode::Or(cs) => cs
                    .get_mut(idx)
                    .ok_or_else(|| Error::invalid_parameter("window", format!("no window {idx}"))),
                _ => unreachable!("matched above"),
            }
        } else if idx == 0 {
            Ok(cond)
        } else {
            Err(Error::invalid_parameter(
                "window",
                format!("no window {idx}"),
            ))
        }
    }

    /// Replace the target of the `idx`-th top-level predicate (dragging
    /// its slider). Errors if that window is not a simple predicate.
    pub fn set_predicate_target(&mut self, idx: usize, target: PredicateTarget) -> Result<()> {
        {
            let query = self
                .query
                .as_mut()
                .ok_or_else(|| Error::invalid_query("no query installed"))?;
            let w = Self::top_level_mut(query, idx)?;
            match &mut w.node {
                ConditionNode::Predicate(p) => p.target = target,
                other => {
                    return Err(Error::invalid_query(format!(
                        "window {idx} is not a simple predicate (found {})",
                        match other {
                            ConditionNode::Connection(_) => "a connection",
                            ConditionNode::Subquery { .. } => "a subquery",
                            _ => "a boolean subtree",
                        }
                    )))
                }
            }
        }
        let q = self.query.clone().expect("query present");
        validate(&self.db, &q)?;
        self.invalidate();
        self.maybe_recalculate()
    }

    /// A slider drag (§4.3 / §6): replace the target of the `idx`-th
    /// top-level predicate like [`Session::set_predicate_target`], but
    /// answer the *interactive* questions — which items display, how
    /// many exact answers, the window's normalization — through the
    /// sorted-projection fast path whenever the query shape allows:
    /// a single-table, single-window monotone numeric comparison under a
    /// top-k display policy. On that path the fit is O(log n) position
    /// arithmetic on the column's cached sorted permutation, the
    /// exact-answer set comes from the §6 [`IncrementalCache`] (a
    /// *contained* bound modification re-filters the cached candidate
    /// band — only the delta between the old and new bound is examined),
    /// and only O(k) candidate rows are touched — no O(n) pass at all.
    ///
    /// The returned [`SliderDrag`] is **bit-identical** (displayed set,
    /// exact count, norm params) to what a full recompute would produce
    /// (property-tested in `tests/properties.rs`); the full
    /// [`SessionResult`] artifacts are recomputed lazily on the next
    /// [`Session::result`] call. Queries outside the fast path's shape
    /// fall back to a full recompute of identical output.
    pub fn drag_slider(&mut self, idx: usize, target: PredicateTarget) -> Result<SliderDrag> {
        {
            let query = self
                .query
                .as_mut()
                .ok_or_else(|| Error::invalid_query("no query installed"))?;
            let w = Self::top_level_mut(query, idx)?;
            match &mut w.node {
                ConditionNode::Predicate(p) => p.target = target,
                _ => {
                    return Err(Error::invalid_query(format!(
                        "window {idx} is not a simple predicate"
                    )))
                }
            }
        }
        let q = self.query.clone().expect("query present");
        validate(&self.db, &q)?;
        self.invalidate();
        if let Some(drag) = self.try_incremental_drag()? {
            return Ok(drag);
        }
        self.recalculate()?;
        let res = self.result.as_ref().expect("just recalculated");
        Ok(SliderDrag {
            displayed: res.pipeline.displayed.clone(),
            num_exact: res.pipeline.num_exact,
            norm_params: res.pipeline.windows.get(idx).map(|w| w.norm_params),
            grid: res.grid.clone(),
            incremental: false,
            index_stats: None,
        })
    }

    /// Cumulative hit/miss counters of the slider fast path's §6
    /// incremental range cache (None before any incremental drag).
    pub fn slider_index_stats(&self) -> Option<visdb_index::CacheStats> {
        self.slider_index.as_ref().map(|si| si.cache.stats())
    }

    /// The sorted-projection fast path of [`Session::drag_slider`].
    /// Returns `Ok(None)` whenever the query, policy, column or data
    /// shape puts bit-exactness in doubt — the caller then runs the full
    /// pipeline instead.
    fn try_incremental_drag(&mut self) -> Result<Option<SliderDrag>> {
        let Some(query) = &self.query else {
            return Ok(None);
        };
        if query.tables.len() != 1 {
            return Ok(None);
        }
        let Some(cond) = &query.condition else {
            return Ok(None);
        };
        // exactly one top-level window, a bare predicate at the root
        let ConditionNode::Predicate(pred) = &cond.node else {
            return Ok(None);
        };
        let weight = cond.weight;
        // monotone numeric comparison with a finite threshold
        let (greater, t) = match &pred.target {
            PredicateTarget::Compare { op, value } => match (op, value.as_f64()) {
                (CompareOp::Gt | CompareOp::Ge, Some(t)) if t.is_finite() => (true, t),
                (CompareOp::Lt | CompareOp::Le, Some(t)) if t.is_finite() => (false, t),
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // the pipeline rejects out-of-range percentages; leave that to it
        if let DisplayPolicy::Percentage(p) | DisplayPolicy::TwoSidedPercentage(p) = &self.policy {
            if !(0.0..=100.0).contains(p) || *p <= 0.0 {
                return Ok(None);
            }
        }
        let table = self.db.table(&query.tables[0])?;
        let n = table.len();
        // resolve the column and its distance behaviour through the
        // evaluator's own logic — the fast path must see exactly the
        // column and semantics the pipeline would, so the resolution
        // rules live in one place (`EvalContext`), not two
        let ctx = EvalContext {
            db: &self.db,
            table,
            resolver: &self.resolver,
            display_budget: self.policy.budget(n),
            mode: ExecMode::Vectorized,
            partitions: None,
            cancel: self.cancel.as_ref(),
        };
        let Ok((col, dt, class, col_name)) = ctx.column(&pred.attr) else {
            return Ok(None);
        };
        // require plain numeric distance semantics (overrides change the
        // arithmetic)
        if !matches!(
            ctx.distance_for(&pred.attr, dt, class),
            ColumnDistance::Numeric
        ) {
            return Ok(None);
        }
        // build (or reuse) the sorted projection for this column: the
        // per-session index first, then the shared per-(generation,
        // column) cache, then a fresh build that feeds the shared cache
        let reusable = matches!(
            &self.slider_index,
            Some(si) if si.table == table.name() && si.rows == n && si.column == col_name
        );
        if !reusable {
            // only plain single-table bases share projections: the key
            // identifies rows by (scope, table, count), which sampled
            // cross products can collide on (query.tables.len() == 1 is
            // already guaranteed on this path)
            let proj: Arc<SortedProjection> = match &self.shared_projections {
                Some((scope, shared)) => {
                    let key = projection_key(scope, table.name(), n, &col_name);
                    match shared.lookup(&key) {
                        Some(proj) => proj,
                        None => {
                            let proj = Arc::new(SortedProjection::build(n, |i| col.get_f64(i)));
                            shared.store(key, Arc::clone(&proj));
                            proj
                        }
                    }
                }
                None => Arc::new(SortedProjection::build(n, |i| col.get_f64(i))),
            };
            self.slider_index = Some(SliderIndex {
                table: table.name().to_string(),
                rows: n,
                column: col_name,
                cache: IncrementalCache::new(proj, 0.25),
            });
        }
        let si = self.slider_index.as_mut().expect("ensured above");
        let proj = si.cache.index();
        if !proj.is_fully_finite() {
            // ±inf values make non-finite distances; the position
            // arithmetic cannot reproduce their normalization bit-exactly
            return Ok(None);
        }
        let m = proj.defined();
        let Some(k) = display_count(&self.policy, n, m, 1) else {
            return Ok(None);
        };
        let budget = self.policy.budget(n);
        let empty_drag = |grid_w: usize, grid_h: usize| SliderDrag {
            displayed: Vec::new(),
            num_exact: 0,
            norm_params: Some(NormParams {
                dmin: 0.0,
                dmax: 0.0,
            }),
            grid: arrange_overall(&[], grid_w, grid_h),
            incremental: true,
            index_stats: None,
        };
        if m == 0 {
            // nothing defined: the pipeline displays nothing and fits a
            // degenerate normalization
            let mut d = empty_drag(self.window_w, self.window_h);
            d.index_stats = Some(si.cache.stats());
            return Ok(Some(d));
        }

        // --- O(log n) position arithmetic on the sorted projection ----
        // exact answers occupy a contiguous band of sorted positions
        let (e, zero_from, zero_to) = if greater {
            let p = proj.position_ge(t);
            (m - p, p, m)
        } else {
            let q = proj.position_gt(t);
            (q, 0, q)
        };
        let nonzero = m - e;
        // |d| of sorted position j (only valid outside the zero band);
        // uses the identical float ops as the distance kernels: for
        // x < t, |x - t| == t - x exactly (rounding is sign-symmetric)
        let abs_at = |proj: &SortedProjection, j: usize| {
            if greater {
                t - proj.value_at(j)
            } else {
                proj.value_at(j) - t
            }
        };
        let max_abs = if nonzero == 0 {
            0.0
        } else if greater {
            abs_at(proj, 0)
        } else {
            abs_at(proj, m - 1)
        };
        if !max_abs.is_finite() {
            // finite column values can still overflow to an infinite
            // distance (`t - x`); the pipeline's fit filters non-finite
            // distances out of the transform range, which the position
            // arithmetic cannot reproduce — fall back
            return Ok(None);
        }
        // the §5.2 weight-proportional fit, by position instead of
        // selection: the k-th smallest |d| is a binary-searchable cut
        let dmax = match fit_k(n, weight, budget) {
            None => max_abs,
            Some(kf) => {
                let kf = kf.min(m);
                if kf == m {
                    max_abs
                } else {
                    let need = kf.saturating_sub(e);
                    if need == 0 {
                        0.0
                    } else if greater {
                        abs_at(proj, zero_from - need)
                    } else {
                        abs_at(proj, zero_to + need - 1)
                    }
                }
            }
        };
        let params1 = NormParams { dmin: 0.0, dmax };
        if nonzero > 0 && dmax > 0.0 {
            // decline when the magnitude spread risks `apply` underflowing
            // a nonzero distance to exactly 0 (it would miscount exacts)
            let min_pos = if greater {
                abs_at(proj, zero_from - 1)
            } else {
                abs_at(proj, zero_to)
            };
            if min_pos < dmax * 1e-300 {
                return Ok(None);
            }
        }
        // final combined distance = the pipeline's two-stage transform:
        // window normalization, then `normalize_combined` (skipped when
        // every defined item is exact, exactly like the pipeline)
        let params2 = NormParams {
            dmin: 0.0,
            dmax: params1.apply(max_abs),
        };
        let combined_of = |d_abs: f64| {
            let c1 = params1.apply(d_abs);
            if nonzero == 0 {
                c1
            } else {
                params2.apply(c1)
            }
        };

        // --- display selection: contiguous candidate bands -------------
        // Work bounds that keep the drag sublinear: the exact side may
        // gather a few multiples of the display count (it arrives
        // pre-sorted from the cache), the tie-class band a tighter one
        // (it must be sorted here).
        let band_limit = (4 * k).max(1024);
        let exact_limit = (16 * k).max(4096);
        if e > exact_limit {
            return Ok(None);
        }
        let value_box = if greater {
            (t, proj.value_at(m - 1))
        } else {
            (proj.value_at(0), t)
        };
        let exact_rows: Vec<usize> = if e == 0 {
            Vec::new()
        } else {
            // the §6 incremental cache answers the value interval of the
            // bound; a contained drag filters the cached candidate band
            let rows = si.cache.range_query(&[value_box.0], &[value_box.1])?;
            debug_assert_eq!(rows.len(), e);
            rows
        };
        let proj = si.cache.index();
        let displayed = if k <= e {
            // ranks within the zero class tie-break by row id, and the
            // cache returns rows sorted by id
            exact_rows[..k].to_vec()
        } else {
            let needed = k - e;
            // the `needed` closest non-exact items, extended to the whole
            // equal-combined boundary class (ties there break by row id
            // against rows *outside* the positional band)
            let boundary = combined_of(abs_at(
                proj,
                if greater {
                    zero_from - needed
                } else {
                    zero_to + needed - 1
                },
            ));
            let (band_lo, band_hi) = if greater {
                // combined is non-increasing in j on [0, zero_from)
                (
                    partition_pos(0, zero_from, |j| combined_of(abs_at(proj, j)) > boundary),
                    zero_from,
                )
            } else {
                // combined is non-decreasing in j on [zero_to, m)
                (
                    zero_to,
                    partition_pos(zero_to, m, |j| combined_of(abs_at(proj, j)) <= boundary),
                )
            };
            if band_hi - band_lo > band_limit {
                return Ok(None);
            }
            let mut cand: Vec<(f64, usize)> = (band_lo..band_hi)
                .map(|j| (combined_of(abs_at(proj, j)), proj.row_at(j)))
                .collect();
            cand.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut out = exact_rows;
            out.extend(cand.into_iter().take(needed).map(|(_, row)| row));
            out
        };
        let grid = arrange_overall(&displayed, self.window_w, self.window_h);
        Ok(Some(SliderDrag {
            displayed,
            num_exact: e,
            norm_params: Some(params1),
            grid,
            incremental: true,
            index_stats: Some(si.cache.stats()),
        }))
    }

    /// Set the weighting factor of the `idx`-th top-level window.
    pub fn set_weight(&mut self, idx: usize, weight: f64) -> Result<()> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(Error::invalid_parameter(
                "weight",
                "must be finite and >= 0",
            ));
        }
        {
            let query = self
                .query
                .as_mut()
                .ok_or_else(|| Error::invalid_query("no query installed"))?;
            Self::top_level_mut(query, idx)?.weight = weight;
        }
        self.invalidate();
        self.maybe_recalculate()
    }

    /// Set the connection parameter of the `idx`-th top-level window
    /// (e.g. nudging the expected time difference).
    pub fn set_connection_params(&mut self, idx: usize, params: Vec<f64>) -> Result<()> {
        {
            let query = self
                .query
                .as_mut()
                .ok_or_else(|| Error::invalid_query("no query installed"))?;
            let w = Self::top_level_mut(query, idx)?;
            match &mut w.node {
                ConditionNode::Connection(u) => {
                    if params.len() != u.def.kind.arity() {
                        return Err(Error::invalid_parameter(
                            "params",
                            format!("connection expects {} params", u.def.kind.arity()),
                        ));
                    }
                    u.params = params;
                }
                _ => {
                    return Err(Error::invalid_query(format!(
                        "window {idx} is not a connection"
                    )))
                }
            }
        }
        self.invalidate();
        self.maybe_recalculate()
    }

    // ----- exploration -----------------------------------------------------

    /// Select a data item: returns its full tuple and highlights it in
    /// every window ("to get the data item highlighted in all
    /// visualization parts and the values for the attributes displayed in
    /// the 'selected tuple' field", §4.3).
    pub fn select_tuple(&mut self, item: usize) -> Result<Row> {
        let res = self.result()?;
        let row = res.base.row(item)?;
        self.selected_item = Some(item);
        Ok(row)
    }

    /// Clear the tuple selection.
    pub fn clear_selection(&mut self) {
        self.selected_item = None;
    }

    /// Select a color range on window `window_idx` (normalized distance
    /// interval `[lo, hi]` in 0..=255). Returns the displayed items whose
    /// distance for that window falls in the range — "to get only those
    /// data items displayed that have the selected color for the
    /// considered attribute" (§4.3).
    pub fn select_color_range(
        &mut self,
        window_idx: usize,
        lo: f64,
        hi: f64,
    ) -> Result<Vec<usize>> {
        if !(0.0..=255.0).contains(&lo) || !(0.0..=255.0).contains(&hi) || lo > hi {
            return Err(Error::invalid_parameter(
                "color range",
                format!("need 0 <= lo <= hi <= 255, got [{lo}, {hi}]"),
            ));
        }
        let res = self.result()?;
        let win =
            res.pipeline.windows.get(window_idx).ok_or_else(|| {
                Error::invalid_parameter("window", format!("no window {window_idx}"))
            })?;
        let items: Vec<usize> = res
            .pipeline
            .displayed
            .iter()
            .copied()
            .filter(|&i| matches!(win.normalized_at(i), Some(d) if d >= lo && d <= hi))
            .collect();
        self.color_range = Some((window_idx, lo, hi));
        Ok(items)
    }

    /// Clear the color-range selection.
    pub fn clear_color_range(&mut self) {
        self.color_range = None;
    }

    /// The optional fig 1b visualization (§4.2): place the displayed
    /// items by the *sign* of their distances on two predicate windows
    /// (negative left/bottom, positive right/top), sorted by relevance
    /// from the middle outwards. Both windows must carry signed
    /// distances (metric or ordinal attributes).
    pub fn arrange_2d(&mut self, window_x: usize, window_y: usize) -> Result<ItemGrid> {
        let (w, h) = (self.window_w, self.window_h);
        let res = self.result()?;
        let get = |idx: usize| -> Result<&visdb_relevance::PredicateWindow> {
            res.pipeline
                .windows
                .get(idx)
                .ok_or_else(|| Error::invalid_parameter("window", format!("no window {idx}")))
        };
        let wx = get(window_x)?;
        let wy = get(window_y)?;
        if !wx.signed || !wy.signed {
            return Err(Error::invalid_query(
                "the 2D arrangement needs signed distances on both axes \
                 (metric or ordinal attributes)",
            ));
        }
        // displayed items in relevance order, with their signed distances
        let items: Vec<visdb_arrange::grouped2d::Item2D> = res
            .pipeline
            .displayed
            .iter()
            .filter_map(|&i| match (wx.raw_at(i), wy.raw_at(i)) {
                (Some(dx), Some(dy)) => Some(visdb_arrange::grouped2d::Item2D { item: i, dx, dy }),
                _ => None,
            })
            .collect();
        Ok(visdb_arrange::arrange_grouped2d(&items, w, h))
    }

    /// Drill down into a query part by child-index path from the root
    /// condition (§4.4: double-clicking a boolean operator box). With
    /// `independent = false` the items keep the overall arrangement; with
    /// `true` they are re-sorted by the subtree's own relevance.
    pub fn drilldown(&mut self, path: &[usize], independent: bool) -> Result<DrilldownView> {
        let query = self
            .query
            .as_ref()
            .ok_or_else(|| Error::invalid_query("no query installed"))?
            .clone();
        let cond = query
            .condition
            .as_ref()
            .ok_or_else(|| Error::invalid_query("query has no condition"))?;
        let sub = cond
            .node
            .descend(path)
            .ok_or_else(|| Error::invalid_parameter("path", "no such query part"))?
            .clone();
        let (w, h) = (self.window_w, self.window_h);
        let policy = self.policy.clone();
        // ensure the main result exists (for the shared arrangement)
        let _ = self.result()?;
        let res = self.result.as_ref().expect("cached");
        let sub_weighted = Weighted::unit(sub);
        // drill-down windows are rendered at the *parent's* displayed
        // rows (shared arrangement), which a late-materialized window
        // would not cover — materialize explicitly
        let pipeline = run_pipeline_opts(
            &self.db,
            &res.base,
            &self.resolver,
            Some(&sub_weighted),
            &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                cancel: self.cancel.as_ref(),
                ..Default::default()
            },
        )?;
        let grid = if independent {
            arrange_overall(&pipeline.displayed, w, h)
        } else {
            res.grid.clone()
        };
        Ok(DrilldownView { pipeline, grid })
    }

    // ----- the panel -------------------------------------------------------

    /// Build the modification panel (the right side of fig 4/5).
    pub fn panel(&mut self) -> Result<Panel> {
        let selected = self.selected_item;
        let color_range = self.color_range;
        self.result()?; // ensure the cache is fresh
        let query = self.query.clone().expect("query ran");
        let res = self.result.as_ref().expect("cached by result()");
        let overall = OverallPanel {
            num_objects: res.pipeline.n,
            num_displayed: res.pipeline.displayed.len(),
            pct_displayed: res.pipeline.displayed_fraction(),
            num_results: res.pipeline.num_exact,
        };
        let top: Vec<&Weighted> = match query.condition.as_ref().map(|c| &c.node) {
            Some(ConditionNode::And(cs)) | Some(ConditionNode::Or(cs)) => cs.iter().collect(),
            Some(_) => vec![query.condition.as_ref().expect("present")],
            None => Vec::new(),
        };
        let mut sliders = Vec::with_capacity(res.pipeline.windows.len());
        for (i, win) in res.pipeline.windows.iter().enumerate() {
            let node = top.get(i).map(|w| &w.node);
            let mut s = SliderModel {
                label: win.label.clone(),
                weight: win.weight,
                num_results: win.zero_raw_count(),
                ..Default::default()
            };
            if let Some(ConditionNode::Predicate(p)) = node {
                s.attr = Some(p.attr.column.clone());
                // database min/max from column stats
                if let Ok(col_id) = res
                    .base
                    .schema()
                    .require(res.base.name(), &p.attr.column)
                    .or_else(|_| match &p.attr.table {
                        Some(t) => res
                            .base
                            .schema()
                            .require(res.base.name(), &format!("{t}.{}", p.attr.column)),
                        None => Err(Error::UnknownColumn {
                            table: res.base.name().into(),
                            column: p.attr.column.clone(),
                        }),
                    })
                {
                    let stats = res.base.stats(col_id)?;
                    s.db_min = stats.min;
                    s.db_max = stats.max;
                    let col = res.base.column(col_id)?;
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &item in &res.pipeline.displayed {
                        if let Some(v) = col.get_f64(item) {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    if lo.is_finite() {
                        s.displayed_min = Some(lo);
                        s.displayed_max = Some(hi);
                    }
                    if let Some(item) = selected {
                        s.selected_tuple = Some(col.get(item));
                    }
                    // first/last of color for the active color range
                    if let Some((wi, clo, chi)) = color_range {
                        if wi == i {
                            let mut vlo = f64::INFINITY;
                            let mut vhi = f64::NEG_INFINITY;
                            for &item in &res.pipeline.displayed {
                                if let Some(d) = win.normalized_at(item) {
                                    if d >= clo && d <= chi {
                                        if let Some(v) = col.get_f64(item) {
                                            vlo = vlo.min(v);
                                            vhi = vhi.max(v);
                                        }
                                    }
                                }
                            }
                            if vlo.is_finite() {
                                s.first_of_color = Some(vlo);
                                s.last_of_color = Some(vhi);
                            }
                        }
                    }
                }
                s.query_range = Some(match &p.target {
                    PredicateTarget::Compare { op, value } => {
                        use visdb_query::ast::CompareOp::*;
                        let v = value.as_f64();
                        match op {
                            Gt | Ge => (v, None),
                            Lt | Le => (None, v),
                            Eq | Ne => (v, v),
                        }
                    }
                    PredicateTarget::Range { low, high } => (low.as_f64(), high.as_f64()),
                    PredicateTarget::Around { center, deviation } => {
                        let c = center.as_f64();
                        (c.map(|c| c - deviation), c.map(|c| c + deviation))
                    }
                });
            }
            sliders.push(s);
        }
        Ok(Panel { overall, sliders })
    }
}

/// Convenience for examples: a value as `f64` or NaN.
pub fn value_as_f64(v: &Value) -> f64 {
    v.as_f64().unwrap_or(f64::NAN)
}

/// First index in `[lo, hi)` where the monotone predicate flips to
/// false (`pred` must be true on a prefix). The slider fast path's
/// binary search over sorted-projection positions.
fn partition_pos(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut a, mut b) = (lo, hi);
    while a < b {
        let mid = a + (b - a) / 2;
        if pred(mid) {
            a = mid + 1;
        } else {
            b = mid;
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::CompareOp;
    use visdb_query::builder::QueryBuilder;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType};

    fn session_with_ramp(n: usize) -> Session {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        Session::new(Arc::new(db), ConnectionRegistry::new())
    }

    #[test]
    fn query_runs_and_caches() {
        let mut s = session_with_ramp(100);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 90.0)
                .build(),
        )
        .unwrap();
        let res = s.result().unwrap();
        assert_eq!(res.pipeline.num_exact, 10);
        assert!(res.grid.occupied() > 0);
        assert!(s.cached_result().is_some());
    }

    #[test]
    fn auto_recalculate_off_defers() {
        let mut s = session_with_ramp(50);
        s.set_auto_recalculate(false);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 25.0)
                .build(),
        )
        .unwrap();
        assert!(s.cached_result().is_none());
        s.recalculate().unwrap();
        assert!(s.cached_result().is_some());
    }

    #[test]
    fn slider_modification_changes_results() {
        let mut s = session_with_ramp(100);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 90.0)
                .build(),
        )
        .unwrap();
        assert_eq!(s.result().unwrap().pipeline.num_exact, 10);
        s.set_predicate_target(
            0,
            PredicateTarget::Compare {
                op: CompareOp::Ge,
                value: Value::Float(50.0),
            },
        )
        .unwrap();
        assert_eq!(s.result().unwrap().pipeline.num_exact, 50);
    }

    #[test]
    fn weight_modification() {
        let mut s = session_with_ramp(100);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 50.0)
                .cmp("x", CompareOp::Lt, 60.0)
                .build(),
        )
        .unwrap();
        s.set_weight(1, 0.2).unwrap();
        let res = s.result().unwrap();
        assert_eq!(res.pipeline.windows[1].weight, 0.2);
        assert!(s.set_weight(5, 0.5).is_err());
        assert!(s.set_weight(0, f64::NAN).is_err());
    }

    #[test]
    fn select_tuple_and_highlight() {
        let mut s = session_with_ramp(10);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 5.0)
                .build(),
        )
        .unwrap();
        let row = s.select_tuple(7).unwrap();
        assert_eq!(row[0], Value::Float(7.0));
        assert_eq!(s.selected_item(), Some(7));
        s.clear_selection();
        assert_eq!(s.selected_item(), None);
    }

    #[test]
    fn color_range_projection() {
        let mut s = session_with_ramp(100);
        s.set_display_policy(DisplayPolicy::Percentage(100.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 99.0)
                .build(),
        )
        .unwrap();
        // yellow band: exact answers only
        let exact = s.select_color_range(0, 0.0, 0.0).unwrap();
        assert_eq!(exact.len(), 1);
        // whole spectrum: everything displayed
        let all = s.select_color_range(0, 0.0, 255.0).unwrap();
        assert_eq!(all.len(), 100);
        assert!(s.select_color_range(0, 10.0, 5.0).is_err());
        assert!(s.select_color_range(9, 0.0, 255.0).is_err());
    }

    #[test]
    fn drilldown_or_part() {
        let mut s = session_with_ramp(100);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 90.0)
                .cmp("x", CompareOp::Lt, 5.0)
                .any()
                .between("x", 0.0, 100.0)
                .build(),
        )
        .unwrap();
        // root is AND(OR(...), range); drill into the OR part
        let view = s.drilldown(&[0], false).unwrap();
        assert_eq!(view.pipeline.windows.len(), 2);
        // shared arrangement equals the main grid
        let main_grid = s.result().unwrap().grid.clone();
        assert_eq!(view.grid, main_grid);
        let indep = s.drilldown(&[0], true).unwrap();
        assert_eq!(indep.pipeline.windows.len(), 2);
        assert!(s.drilldown(&[9], false).is_err());
    }

    #[test]
    fn panel_fields() {
        let mut s = session_with_ramp(100);
        s.set_display_policy(DisplayPolicy::Percentage(50.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 80.0)
                .build(),
        )
        .unwrap();
        s.select_tuple(99).unwrap();
        let panel = s.panel().unwrap();
        assert_eq!(panel.overall.num_objects, 100);
        assert_eq!(panel.overall.num_displayed, 50);
        assert!((panel.overall.pct_displayed - 0.5).abs() < 1e-9);
        assert_eq!(panel.overall.num_results, 20);
        let sl = &panel.sliders[0];
        assert_eq!(sl.attr.as_deref(), Some("x"));
        assert_eq!(sl.db_min, Some(0.0));
        assert_eq!(sl.db_max, Some(99.0));
        assert_eq!(sl.query_range, Some((Some(80.0), None)));
        assert_eq!(sl.num_results, 20);
        assert_eq!(sl.selected_tuple, Some(Value::Float(99.0)));
        // displayed values concentrate on the top of the ramp (items past
        // the normalization range all clamp to 255 and tie, so a stray
        // low item may slip in — the dominant mass must be x >= 50)
        assert_eq!(sl.displayed_max, Some(99.0));
        let res = s.result().unwrap();
        let high = res.pipeline.displayed.iter().filter(|&&i| i >= 50).count();
        assert!(high >= 45, "only {high} of 50 displayed items are x >= 50");
    }

    #[test]
    fn first_last_of_color() {
        let mut s = session_with_ramp(100);
        s.set_display_policy(DisplayPolicy::Percentage(100.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 99.0)
                .build(),
        )
        .unwrap();
        // distances: 99-x normalized; pick the yellow-ish band
        s.select_color_range(0, 0.0, 64.0).unwrap();
        let panel = s.panel().unwrap();
        let sl = &panel.sliders[0];
        assert!(sl.first_of_color.is_some());
        assert!(sl.last_of_color.unwrap() <= 99.0);
        assert!(
            sl.first_of_color.unwrap() >= 70.0,
            "{:?}",
            sl.first_of_color
        );
    }

    #[test]
    fn incremental_cache_reuses_unchanged_windows() {
        let mut s = session_with_ramp(100);
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 50.0)
                .cmp("x", CompareOp::Lt, 80.0)
                .build(),
        )
        .unwrap();
        let (h0, m0) = s.cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, 2); // first run evaluates both windows
                           // nudge only the first slider: the second window is reused
        s.set_predicate_target(
            0,
            PredicateTarget::Compare {
                op: CompareOp::Ge,
                value: Value::Float(55.0),
            },
        )
        .unwrap();
        let (h1, m1) = s.cache_stats();
        assert_eq!(h1, 1, "unchanged window must be a cache hit");
        assert_eq!(m1, 3);
        // and the cached run is still correct: distance-exact answers are
        // x in 55..=80 (boundaries are distance-0, see visdb_distance)
        assert_eq!(s.result().unwrap().pipeline.num_exact, 26);
    }

    #[test]
    fn arrange_2d_places_items_by_sign() {
        let mut s = session_with_ramp(100);
        s.set_display_policy(DisplayPolicy::Percentage(100.0))
            .unwrap();
        s.set_window_size(20, 20).unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Eq, 50.0)
                .cmp("x", CompareOp::Eq, 50.0)
                .build(),
        )
        .unwrap();
        let grid = s.arrange_2d(0, 1).unwrap();
        assert!(grid.occupied() > 0);
        // an item below the target (x = 10 -> dx = dy = -40) must sit in
        // the left-bottom quadrant; one above in the right-top
        let (lx, ly) = grid.position_of(10).unwrap();
        assert!(lx < 10 && ly >= 10, "({lx},{ly})");
        let (hx, hy) = grid.position_of(90).unwrap();
        assert!(hx >= 10 && hy < 10, "({hx},{hy})");
        // the exact answer sits in the center block
        let (cx, cy) = grid.position_of(50).unwrap();
        assert!(
            (8..=11).contains(&cx) && (8..=11).contains(&cy),
            "({cx},{cy})"
        );
        assert!(s.arrange_2d(0, 7).is_err());
    }

    #[test]
    fn arrange_2d_rejects_unsigned_windows() {
        let mut t = TableBuilder::new(
            "S",
            vec![
                Column::new("x", DataType::Float),
                Column::new("name", DataType::Str),
            ],
        );
        t = t.row(vec![Value::Float(1.0), Value::from("a")]).unwrap();
        let mut db = Database::new("d");
        db.add_table(t.build());
        let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
        s.set_query(
            QueryBuilder::from_tables(["S"])
                .cmp("x", CompareOp::Eq, 1.0)
                .cmp("name", CompareOp::Eq, "a") // string: unsigned
                .build(),
        )
        .unwrap();
        assert!(s.arrange_2d(0, 1).is_err());
    }

    /// Drag via the fast path and via a full recompute on a *fresh*
    /// session; the interactive answers must be bit-identical.
    fn assert_drag_matches_full(
        make: impl Fn() -> Session,
        targets: &[PredicateTarget],
        expect_incremental: bool,
    ) {
        let mut fast = make();
        for target in targets {
            let drag = fast.drag_slider(0, target.clone()).unwrap();
            assert_eq!(
                drag.incremental, expect_incremental,
                "fast-path engagement for {target:?}"
            );
            let mut full = make();
            full.set_predicate_target(0, target.clone()).unwrap();
            let res = full.result().unwrap();
            assert_eq!(drag.displayed, res.pipeline.displayed, "{target:?}");
            assert_eq!(drag.num_exact, res.pipeline.num_exact, "{target:?}");
            assert_eq!(
                drag.norm_params,
                res.pipeline.windows.first().map(|w| w.norm_params),
                "{target:?}"
            );
            assert_eq!(drag.grid, res.grid, "{target:?}");
            // and the dragged session's own lazy full recompute agrees
            let lazy = fast.result().unwrap();
            assert_eq!(drag.displayed, lazy.pipeline.displayed);
        }
    }

    fn ge(t: f64) -> PredicateTarget {
        PredicateTarget::Compare {
            op: CompareOp::Ge,
            value: Value::Float(t),
        }
    }

    fn lt(t: f64) -> PredicateTarget {
        PredicateTarget::Compare {
            op: CompareOp::Lt,
            value: Value::Float(t),
        }
    }

    #[test]
    fn drag_slider_matches_full_recompute_bit_for_bit() {
        let make = || {
            let mut s = session_with_ramp(500);
            s.set_display_policy(DisplayPolicy::Percentage(10.0))
                .unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 450.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(
            make,
            &[
                ge(430.0),
                ge(470.0),
                ge(499.0),
                ge(600.0),
                ge(-5.0),
                lt(100.0),
                lt(0.5),
            ],
            true,
        );
    }

    #[test]
    fn drag_slider_handles_nulls_nans_and_duplicates() {
        let make = || {
            let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
            for i in 0..400 {
                let v = match i % 9 {
                    0 => Value::Null,
                    1 => Value::Float(f64::NAN),
                    2 | 3 => Value::Float((i / 9) as f64), // duplicates
                    _ => Value::Float(((i * 37) % 211) as f64),
                };
                b = b.row(vec![v]).unwrap();
            }
            let mut db = Database::new("d");
            db.add_table(b.build());
            let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
            s.set_display_policy(DisplayPolicy::FitScreen {
                pixels: 300,
                pixels_per_item: 1,
            })
            .unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 100.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(make, &[ge(90.0), ge(120.0), ge(120.0), lt(40.0)], true);
    }

    #[test]
    fn drag_slider_contained_nudges_hit_the_incremental_cache() {
        let mut s = session_with_ramp(2000);
        s.set_display_policy(DisplayPolicy::Percentage(2.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 1500.0)
                .build(),
        )
        .unwrap();
        let d0 = s.drag_slider(0, ge(1500.0)).unwrap();
        assert!(d0.incremental);
        // tightening drags stay inside the cached candidate band: every
        // one is a hit that only re-filters the delta
        for t in [1510.0, 1525.0, 1550.0, 1580.0] {
            let d = s.drag_slider(0, ge(t)).unwrap();
            assert!(d.incremental);
            assert_eq!(d.num_exact, 2000 - t as usize);
        }
        let stats = s.slider_index_stats().unwrap();
        assert_eq!(stats.misses, 1, "only the first drag retrieves");
        assert_eq!(stats.hits, 4, "contained nudges filter the cached band");
    }

    #[test]
    fn drag_slider_declines_on_distance_overflow() {
        // finite column values whose distance overflows to +inf: the
        // pipeline's fit filters non-finite distances, so the fast path
        // must fall back rather than fit an infinite range
        let make = || {
            let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
            for v in [1e308, -1e308, 0.0, 5.0] {
                b = b.row(vec![Value::Float(v)]).unwrap();
            }
            let mut db = Database::new("d");
            db.add_table(b.build());
            let mut s = Session::new(Arc::new(db), ConnectionRegistry::new());
            s.set_display_policy(DisplayPolicy::Percentage(100.0))
                .unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 0.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(make, &[ge(1e308)], false);
    }

    #[test]
    fn drag_slider_falls_back_outside_the_fast_path() {
        // two predicates: the combined distance mixes windows, so the
        // fast path declines and a full recompute serves the drag
        let make = || {
            let mut s = session_with_ramp(300);
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 200.0)
                    .cmp("x", CompareOp::Lt, 280.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(make, &[ge(150.0)], false);
        // equality predicates are not monotone: fallback, still correct
        let make_eq = || {
            let mut s = session_with_ramp(300);
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Eq, 100.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(
            make_eq,
            &[PredicateTarget::Compare {
                op: CompareOp::Eq,
                value: Value::Float(120.0),
            }],
            false,
        );
        // gap-heuristic selection is not a plain top-k: fallback
        let make_gap = || {
            let mut s = session_with_ramp(300);
            s.set_display_policy(DisplayPolicy::GapHeuristic {
                rmin: 5,
                rmax: 50,
                z: 3,
            })
            .unwrap();
            s.set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 250.0)
                    .build(),
            )
            .unwrap();
            s
        };
        assert_drag_matches_full(make_gap, &[ge(240.0)], false);
    }

    #[test]
    fn projection_key_round_trips() {
        // field values chosen to collide with the framing bytes — the
        // length prefixes must keep them apart
        let key = projection_key("ds#3.1", "T:9", 42, "x;y");
        assert_eq!(
            parse_projection_key(&key),
            Some(("ds#3.1", "T:9", 42, "x;y"))
        );
        assert_eq!(parse_projection_key(""), None);
        assert_eq!(parse_projection_key("garbage"), None);
        assert_eq!(parse_projection_key("2:ab"), None);
        assert_eq!(parse_projection_key(&format!("{key}!")), None);
    }

    #[test]
    fn rebase_extends_the_slider_index_across_appends() {
        let mut s = session_with_ramp(2000);
        s.set_display_policy(DisplayPolicy::Percentage(2.0))
            .unwrap();
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 1500.0)
                .build(),
        )
        .unwrap();
        // warm the slider index and its candidate band
        assert!(s.drag_slider(0, ge(1500.0)).unwrap().incremental);
        assert!(s.drag_slider(0, ge(1510.0)).unwrap().incremental);
        // new generation: same rows plus an appended tail
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..2100 {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db2 = Database::new("d");
        db2.add_table(b.build());
        let db2 = Arc::new(db2);
        assert_eq!(
            s.rebase(Arc::clone(&db2), "gen2"),
            BandRebase::Repaired,
            "index carried over by local projection extension"
        );
        let d = s.drag_slider(0, ge(1520.0)).unwrap();
        assert!(d.incremental, "repaired band keeps the fast path");
        // bit-identical to a fresh session over the appended data
        let mut fresh = Session::new(db2, ConnectionRegistry::new());
        fresh
            .set_display_policy(DisplayPolicy::Percentage(2.0))
            .unwrap();
        fresh
            .set_query(
                QueryBuilder::from_tables(["T"])
                    .cmp("x", CompareOp::Ge, 1510.0)
                    .build(),
            )
            .unwrap();
        let f = fresh.drag_slider(0, ge(1520.0)).unwrap();
        assert_eq!(d.num_exact, f.num_exact);
        assert_eq!(d.displayed, f.displayed);
        assert_eq!(d.norm_params, f.norm_params);
    }

    #[test]
    fn rebase_without_a_slider_index_reports_none() {
        let mut s = session_with_ramp(10);
        let db = s.shared_db();
        assert_eq!(s.rebase(db, "gen2"), BandRebase::None);
    }

    #[test]
    fn invalid_modifications_are_rejected() {
        let mut s = session_with_ramp(10);
        assert!(s.recalculate().is_err()); // no query yet
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, 5.0)
                .build(),
        )
        .unwrap();
        assert!(s.set_window_size(0, 10).is_err());
        // modifying a predicate window as a connection fails
        assert!(s.set_connection_params(0, vec![1.0]).is_err());
    }
}
