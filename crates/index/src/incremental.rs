//! Incremental recalculation cache (§6).
//!
//! "Our idea is to retrieve more data than necessary in the beginning and
//! to retrieve only the additional portion of the data that is needed for
//! a slightly modified query later on."
//!
//! The cache remembers the last *expanded* query box together with the
//! candidate rows it retrieved. A new query box that is **contained** in
//! the cached box is answered by filtering the cached candidates (cheap,
//! proportional to the candidate count) instead of re-querying the index.
//! Slider nudges — the dominant interaction in §4.3 — almost always stay
//! inside the expansion, so recalculation after a small query
//! modification avoids touching the full data set.

use visdb_types::Result;

use crate::RangeIndex;

/// Hit/miss counters for diagnostics and the C6 bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cached candidate set.
    pub hits: usize,
    /// Queries that had to go to the underlying index.
    pub misses: usize,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when nothing was asked.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A caching layer over any [`RangeIndex`].
pub struct IncrementalCache<I> {
    index: I,
    /// Fractional expansion applied to each queried box side (0.25 =
    /// retrieve a box 25% wider in every direction).
    slack: f64,
    cached_box: Option<(Vec<f64>, Vec<f64>)>,
    candidates: Vec<usize>,
    stats: CacheStats,
}

impl<I: RangeIndex + PointAccess> IncrementalCache<I> {
    /// Wrap an index with an expansion factor (`slack >= 0`).
    pub fn new(index: I, slack: f64) -> Self {
        IncrementalCache {
            index,
            slack: slack.max(0.0),
            cached_box: None,
            candidates: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop the cached candidate set (e.g. after the data changes).
    pub fn invalidate(&mut self) {
        self.cached_box = None;
        self.candidates.clear();
    }

    /// Swap in an index over an *appended* relation — rows `0..old_rows`
    /// must be unchanged, rows `old_rows..new_rows` are new — and
    /// **repair** the cached candidate band instead of dropping it: each
    /// appended row whose point lies inside the cached expanded box
    /// joins the candidate set. This preserves the §6 invariant
    /// (candidates = every row inside the cached box) exactly, so
    /// contained queries keep answering from the band; appended ids
    /// exceed every existing id, so pushing keeps the candidates' row
    /// order. Returns `true` when a cached band existed and was
    /// repaired, `false` when there was nothing to repair.
    pub fn rebase(&mut self, index: I, old_rows: usize, new_rows: usize) -> bool {
        self.index = index;
        let Some((lo, hi)) = self.cached_box.clone() else {
            return false;
        };
        for i in old_rows..new_rows {
            if self.point_in(i, &lo, &hi) {
                self.candidates.push(i);
            }
        }
        true
    }

    fn contained(&self, low: &[f64], high: &[f64]) -> bool {
        match &self.cached_box {
            Some((clo, chi)) => {
                clo.len() == low.len()
                    && low.iter().zip(clo).all(|(q, c)| q >= c)
                    && high.iter().zip(chi).all(|(q, c)| q <= c)
            }
            None => false,
        }
    }

    /// Range query through the cache. Exact results (identical to querying
    /// the index directly), but slightly-modified queries are served from
    /// the cached superset.
    pub fn range_query(&mut self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        if self.contained(low, high) {
            self.stats.hits += 1;
            // filter cached candidates against the exact box
            let index = &self.index;
            return Ok(self
                .candidates
                .iter()
                .copied()
                .filter(|&i| {
                    let p = index.point(i);
                    (0..low.len()).all(|d| low[d] <= p[d] && p[d] <= high[d])
                })
                .collect());
        }
        self.stats.misses += 1;
        // expand and retrieve the superset
        let mut elo = Vec::with_capacity(low.len());
        let mut ehi = Vec::with_capacity(high.len());
        for d in 0..low.len() {
            let w = (high[d] - low[d]).abs().max(f64::MIN_POSITIVE);
            elo.push(low[d] - self.slack * w);
            ehi.push(high[d] + self.slack * w);
        }
        let superset = self.index.range_query(&elo, &ehi)?;
        let exact: Vec<usize> = superset
            .iter()
            .copied()
            .filter(|&i| self.point_in(i, low, high))
            .collect();
        self.cached_box = Some((elo, ehi));
        self.candidates = superset;
        Ok(exact)
    }

    #[inline]
    fn point_in(&self, i: usize, low: &[f64], high: &[f64]) -> bool {
        let p = self.index.point(i);
        (0..low.len()).all(|d| low[d] <= p[d] && p[d] <= high[d])
    }
}

// Point-membership needs access to coordinates; provide it via a small
// trait so the cache works with any index exposing its points.
/// Access to the coordinates of indexed points.
pub trait PointAccess {
    /// Coordinates of point `i`.
    fn point(&self, i: usize) -> &[f64];
}

// `Arc`-wrapped indexes delegate, so a projection shared across
// sessions (see `crate::ProjectionSource`) plugs into the per-session
// incremental cache without cloning the underlying build.
impl<I: RangeIndex + ?Sized> RangeIndex for std::sync::Arc<I> {
    fn dims(&self) -> usize {
        (**self).dims()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        (**self).range_query(low, high)
    }
}

impl<I: PointAccess + ?Sized> PointAccess for std::sync::Arc<I> {
    fn point(&self, i: usize) -> &[f64] {
        (**self).point(i)
    }
}

impl PointAccess for crate::KdTree {
    fn point(&self, i: usize) -> &[f64] {
        &self.points()[i]
    }
}

impl PointAccess for crate::GridFile {
    fn point(&self, i: usize) -> &[f64] {
        &self.points()[i]
    }
}

impl PointAccess for crate::LinearScan {
    fn point(&self, i: usize) -> &[f64] {
        &self.points()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KdTree;

    fn tree() -> KdTree {
        let pts: Vec<Vec<f64>> = (0..1000)
            .map(|i| vec![(i % 100) as f64, (i / 100) as f64 * 10.0])
            .collect();
        KdTree::build(pts).unwrap()
    }

    #[test]
    fn exactness_against_direct_queries() {
        let t = tree();
        let mut cache = IncrementalCache::new(tree(), 0.3);
        for bounds in [
            ([10.0, 0.0], [20.0, 40.0]),
            ([12.0, 10.0], [18.0, 30.0]), // contained: should be a hit
            ([90.0, 80.0], [99.0, 90.0]), // far away: miss
        ] {
            let direct = {
                let mut v = t.range_query(&bounds.0, &bounds.1).unwrap();
                v.sort_unstable();
                v
            };
            let mut cached = cache.range_query(&bounds.0, &bounds.1).unwrap();
            cached.sort_unstable();
            assert_eq!(cached, direct);
        }
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn slider_nudges_are_hits() {
        let mut cache = IncrementalCache::new(tree(), 0.5);
        cache.range_query(&[20.0, 20.0], &[40.0, 60.0]).unwrap();
        // nudge the lower bound repeatedly, staying inside the slack
        for step in 1..=5 {
            let lo = 20.0 + step as f64;
            cache.range_query(&[lo, 20.0], &[40.0, 60.0]).unwrap();
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 5);
        assert!(cache.stats().hit_rate() > 0.8);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut cache = IncrementalCache::new(tree(), 0.5);
        cache.range_query(&[20.0, 20.0], &[40.0, 60.0]).unwrap();
        cache.invalidate();
        cache.range_query(&[21.0, 21.0], &[39.0, 59.0]).unwrap();
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn zero_slack_still_correct() {
        let t = tree();
        let mut cache = IncrementalCache::new(tree(), 0.0);
        let direct = t.range_query(&[5.0, 0.0], &[10.0, 20.0]).unwrap();
        let got = cache.range_query(&[5.0, 0.0], &[10.0, 20.0]).unwrap();
        assert_eq!(got.len(), direct.len());
        // identical repeat query is contained (boundary-inclusive) -> hit
        cache.range_query(&[5.0, 0.0], &[10.0, 20.0]).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn hit_rate_empty() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn rebase_repairs_the_band_for_appended_rows() {
        use crate::SortedProjection;
        let old_vals: Vec<Option<f64>> = (0..200).map(|i| Some((i % 50) as f64)).collect();
        let mut all_vals = old_vals.clone();
        // delta straddles the band: some rows inside the cached box, some
        // outside, one NULL and one NaN
        all_vals.extend([
            Some(25.0),
            Some(49.0),
            Some(10.0),
            None,
            Some(f64::NAN),
            Some(30.5),
        ]);
        let old = SortedProjection::build(old_vals.len(), |i| old_vals[i]);
        let new = old.extended(all_vals.len(), |i| all_vals[i]);
        let direct = SortedProjection::build(all_vals.len(), |i| all_vals[i]);

        let mut cache = IncrementalCache::new(old, 0.25);
        cache.range_query(&[20.0], &[40.0]).unwrap();
        assert!(cache.rebase(new, old_vals.len(), all_vals.len()));
        // contained queries after the rebase see the appended rows and
        // match a from-scratch index exactly
        for (lo, hi) in [(20.0, 40.0), (24.0, 31.0), (25.0, 25.0)] {
            let got = cache.range_query(&[lo], &[hi]).unwrap();
            let expect = direct.range_query(&[lo], &[hi]).unwrap();
            assert_eq!(got, expect, "[{lo}, {hi}]");
        }
        assert_eq!(cache.stats().misses, 1, "repairs never re-query");
        assert_eq!(cache.stats().hits, 3);

        // no cached band -> nothing to repair
        let mut cold = IncrementalCache::new(
            SortedProjection::build(old_vals.len(), |i| old_vals[i]),
            0.25,
        );
        assert!(!cold.rebase(
            SortedProjection::build(all_vals.len(), |i| all_vals[i]),
            old_vals.len(),
            all_vals.len(),
        ));
    }
}
