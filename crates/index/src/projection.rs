//! Sorted projections: a per-column sorted permutation that turns the
//! pipeline's monotone single-column work into binary searches.
//!
//! For a monotone numeric predicate (`x >= t`, `x <= t` and friends) the
//! absolute distance `|d(x, t)|` is monotone in the column value, so
//! everything the §5 pipeline derives from the distance *distribution* —
//! the weight-proportional normalization fit (k-th smallest `|d|`),
//! quantile cuts, the exact-answer count, the top-k display band —
//! becomes O(log n) position arithmetic on a sorted projection instead
//! of O(n) selection passes. The projection is also a 1-D
//! [`RangeIndex`] + [`PointAccess`], so it plugs straight into the §6
//! [`crate::IncrementalCache`]: a slider drag queries the value interval
//! of its bound, and a *contained* modification is answered from the
//! cached candidate band — only the delta between the old and new bound
//! is re-examined, not the base relation.

use visdb_types::Result;

use crate::incremental::PointAccess;
use crate::{check_box, RangeIndex};

/// A sorted permutation of one numeric column.
///
/// Rows whose value is NULL or NaN (both evaluate to *undefined*
/// distances under every monotone predicate) are excluded from the
/// permutation; `±inf` values are kept (they have defined, if
/// non-finite, distances) but flagged so exactness-sensitive fast paths
/// can decline.
#[derive(Debug, Clone)]
pub struct SortedProjection {
    /// Total rows of the relation, including excluded ones.
    rows: usize,
    /// Per-row coordinate for [`PointAccess`]; NaN for excluded rows (a
    /// NaN coordinate matches no query box).
    coords: Vec<f64>,
    /// Row ids sorted ascending by `(value, row)`.
    perm: Vec<u32>,
    /// `sorted[j]` = value of row `perm[j]`.
    sorted: Vec<f64>,
    /// Every projected value is finite.
    finite: bool,
}

impl SortedProjection {
    /// Build from a row accessor (`None` = NULL). O(n log n) once per
    /// (dataset generation, column); every drag afterwards is
    /// logarithmic.
    pub fn build(rows: usize, get: impl Fn(usize) -> Option<f64>) -> Self {
        assert!(u32::try_from(rows).is_ok(), "projection rows exceed u32");
        let mut coords = vec![f64::NAN; rows];
        let mut perm: Vec<u32> = Vec::with_capacity(rows);
        let mut finite = true;
        for (i, coord) in coords.iter_mut().enumerate() {
            if let Some(v) = get(i) {
                if !v.is_nan() {
                    *coord = v;
                    perm.push(i as u32);
                    finite &= v.is_finite();
                }
            }
        }
        perm.sort_unstable_by(|&a, &b| {
            coords[a as usize]
                .total_cmp(&coords[b as usize])
                .then(a.cmp(&b))
        });
        let sorted: Vec<f64> = perm.iter().map(|&i| coords[i as usize]).collect();
        SortedProjection {
            rows,
            coords,
            perm,
            sorted,
            finite,
        }
    }

    /// Extend to a relation grown to `new_rows` rows by merging the
    /// appended rows' sorted permutation into the existing one: O(Δ log Δ)
    /// to sort the delta plus an O(n + Δ) merge that gallops over old
    /// runs (so small deltas approach O(Δ log n) comparisons), instead of
    /// the O(n log n) re-sort of [`SortedProjection::build`]. The result
    /// is **identical** to building from scratch: the merge compares with
    /// the same total order as the sort, and delta row ids exceed every
    /// existing id, so equal values land after their old run exactly as
    /// the `(value, row)` tiebreak would place them.
    pub fn extended(&self, new_rows: usize, get: impl Fn(usize) -> Option<f64>) -> Self {
        assert!(
            new_rows >= self.rows,
            "extension must not shrink the relation"
        );
        assert!(
            u32::try_from(new_rows).is_ok(),
            "projection rows exceed u32"
        );
        let mut coords = self.coords.clone();
        coords.resize(new_rows, f64::NAN);
        let mut finite = self.finite;
        let mut delta: Vec<u32> = Vec::new();
        for (i, slot) in coords.iter_mut().enumerate().skip(self.rows) {
            if let Some(v) = get(i) {
                if !v.is_nan() {
                    *slot = v;
                    delta.push(i as u32);
                    finite &= v.is_finite();
                }
            }
        }
        delta.sort_unstable_by(|&a, &b| {
            coords[a as usize]
                .total_cmp(&coords[b as usize])
                .then(a.cmp(&b))
        });
        let mut perm = Vec::with_capacity(self.perm.len() + delta.len());
        let mut sorted = Vec::with_capacity(self.sorted.len() + delta.len());
        let mut src = 0;
        for &d in &delta {
            let v = coords[d as usize];
            let cut = src + gallop_le(&self.sorted[src..], v);
            perm.extend_from_slice(&self.perm[src..cut]);
            sorted.extend_from_slice(&self.sorted[src..cut]);
            perm.push(d);
            sorted.push(v);
            src = cut;
        }
        perm.extend_from_slice(&self.perm[src..]);
        sorted.extend_from_slice(&self.sorted[src..]);
        SortedProjection {
            rows: new_rows,
            coords,
            perm,
            sorted,
            finite,
        }
    }

    /// Total rows of the underlying relation.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows with a defined (non-NULL, non-NaN) value — exactly the rows
    /// a monotone predicate gives a defined distance.
    pub fn defined(&self) -> usize {
        self.perm.len()
    }

    /// True when every projected value is finite (the gate for the
    /// bit-exact slider fast path: `±inf` values produce non-finite
    /// distances whose normalization the position arithmetic cannot
    /// reproduce).
    pub fn is_fully_finite(&self) -> bool {
        self.finite
    }

    /// First position whose value is `>= t` (count of values `< t`).
    pub fn position_ge(&self, t: f64) -> usize {
        self.sorted.partition_point(|&v| v < t)
    }

    /// First position whose value is `> t` (count of values `<= t`).
    pub fn position_gt(&self, t: f64) -> usize {
        self.sorted.partition_point(|&v| v <= t)
    }

    /// Value at sorted position `j`.
    pub fn value_at(&self, j: usize) -> f64 {
        self.sorted[j]
    }

    /// Row id at sorted position `j`.
    pub fn row_at(&self, j: usize) -> usize {
        self.perm[j] as usize
    }

    /// The value of row `i`, NaN when the row is excluded.
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Sweep sorted positions outward from `center`, nearest first: an
    /// iterator of `(position, gap)` pairs in **non-decreasing**
    /// `|value - center|` order (ties yield the left side first). This is
    /// the banded sort-merge join's traversal order — a consumer keeping
    /// a running best can stop at the first gap whose lower bound can no
    /// longer beat it, because every later gap is at least as large.
    /// `center` must not be NaN.
    pub fn sweep_from(&self, center: f64) -> BandSweep<'_> {
        debug_assert!(!center.is_nan());
        let start = self.position_ge(center);
        BandSweep {
            sorted: &self.sorted,
            center,
            lo: start,
            hi: start,
        }
    }
}

/// Count of leading values at most `v` under [`f64::total_cmp`] — the
/// merge's run length — found by exponential probing plus a binary
/// search of the final doubling window, so a run of length r costs
/// O(log r) comparisons rather than O(log n). NaN sorts greatest under
/// the total order, so the plain `partition_point` contract holds even
/// though excluded rows never reach the sorted vector.
fn gallop_le(sorted: &[f64], v: f64) -> usize {
    let le = |x: &f64| x.total_cmp(&v) != std::cmp::Ordering::Greater;
    let mut bound = 1;
    while bound <= sorted.len() && le(&sorted[bound - 1]) {
        bound *= 2;
    }
    let lo = bound / 2;
    let hi = bound.min(sorted.len()).max(lo);
    lo + sorted[lo..hi].partition_point(le)
}

/// See [`SortedProjection::sweep_from`].
pub struct BandSweep<'a> {
    sorted: &'a [f64],
    center: f64,
    /// Next left candidate is position `lo - 1` (value `< center`).
    lo: usize,
    /// Next right candidate is position `hi` (value `>= center`).
    hi: usize,
}

impl Iterator for BandSweep<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        let lgap = (self.lo > 0).then(|| (self.sorted[self.lo - 1] - self.center).abs());
        let rgap =
            (self.hi < self.sorted.len()).then(|| (self.sorted[self.hi] - self.center).abs());
        match (lgap, rgap) {
            (None, None) => None,
            (Some(lg), Some(rg)) if lg <= rg => {
                self.lo -= 1;
                Some((self.lo, lg))
            }
            (Some(lg), None) => {
                self.lo -= 1;
                Some((self.lo, lg))
            }
            (_, Some(rg)) => {
                let p = self.hi;
                self.hi += 1;
                Some((p, rg))
            }
        }
    }
}

impl RangeIndex for SortedProjection {
    fn dims(&self) -> usize {
        1
    }

    fn len(&self) -> usize {
        self.perm.len()
    }

    /// Rows whose value lies in `[low, high]`, **sorted by row id** — a
    /// deterministic order downstream consumers (and the incremental
    /// cache's filter-on-hit path, which preserves candidate order) can
    /// rely on.
    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        check_box(1, low, high)?;
        let a = self.position_ge(low[0]);
        let b = self.position_gt(high[0]);
        let mut out: Vec<usize> = self.perm[a..b].iter().map(|&i| i as usize).collect();
        out.sort_unstable();
        Ok(out)
    }
}

impl PointAccess for SortedProjection {
    fn point(&self, i: usize) -> &[f64] {
        std::slice::from_ref(&self.coords[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IncrementalCache;

    fn proj(values: &[Option<f64>]) -> SortedProjection {
        SortedProjection::build(values.len(), |i| values[i])
    }

    #[test]
    fn positions_and_rows() {
        let p = proj(&[
            Some(3.0),
            None,
            Some(1.0),
            Some(2.0),
            Some(2.0),
            Some(f64::NAN),
        ]);
        assert_eq!(p.rows(), 6);
        assert_eq!(p.defined(), 4);
        assert!(p.is_fully_finite());
        // sorted: 1.0(r2), 2.0(r3), 2.0(r4), 3.0(r0)
        assert_eq!(p.position_ge(2.0), 1);
        assert_eq!(p.position_gt(2.0), 3);
        assert_eq!(p.row_at(0), 2);
        assert_eq!((p.row_at(1), p.row_at(2)), (3, 4), "ties break by row id");
        assert_eq!(p.value_at(3), 3.0);
        assert!(p.coord(1).is_nan());
        assert!(p.coord(5).is_nan(), "NaN rows are excluded like NULLs");
    }

    #[test]
    fn infinities_flag_but_do_not_break_queries() {
        let p = proj(&[Some(f64::NEG_INFINITY), Some(0.0), Some(f64::INFINITY)]);
        assert!(!p.is_fully_finite());
        assert_eq!(p.defined(), 3);
        assert_eq!(p.range_query(&[-1.0], &[1.0]).unwrap(), vec![1]);
    }

    #[test]
    fn sweep_from_yields_nearest_first() {
        let p = proj(&[Some(3.0), None, Some(1.0), Some(2.0), Some(2.0), Some(7.0)]);
        // sorted: 1.0, 2.0, 2.0, 3.0, 7.0
        let swept: Vec<(usize, f64)> = p.sweep_from(2.5).collect();
        assert_eq!(swept.len(), p.defined());
        // gaps never decrease
        for w in swept.windows(2) {
            assert!(w[0].1 <= w[1].1, "{swept:?}");
        }
        // every position appears exactly once
        let mut pos: Vec<usize> = swept.iter().map(|&(p, _)| p).collect();
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 1, 2, 3, 4]);
        // gap is |value - center|
        for &(pp, g) in &swept {
            assert_eq!(g, (p.value_at(pp) - 2.5).abs());
        }
        // center outside the value range sweeps one-directionally
        let left: Vec<usize> = p.sweep_from(0.0).map(|(pp, _)| pp).collect();
        assert_eq!(left, vec![0, 1, 2, 3, 4]);
        let right: Vec<usize> = p.sweep_from(100.0).map(|(pp, _)| pp).collect();
        assert_eq!(right, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn range_query_matches_linear_filter_and_sorts_by_row() {
        let values: Vec<Option<f64>> = (0..500)
            .map(|i| {
                if i % 11 == 0 {
                    None
                } else {
                    Some(((i * 37) % 101) as f64)
                }
            })
            .collect();
        let p = proj(&values);
        for (lo, hi) in [(10.0, 40.0), (0.0, 100.0), (99.5, 99.9), (50.0, 50.0)] {
            let got = p.range_query(&[lo], &[hi]).unwrap();
            let expect: Vec<usize> = (0..500)
                .filter(|&i| matches!(values[i], Some(v) if v >= lo && v <= hi))
                .collect();
            assert_eq!(got, expect, "[{lo}, {hi}]");
        }
    }

    fn assert_same(a: &SortedProjection, b: &SortedProjection) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.defined(), b.defined());
        assert_eq!(a.is_fully_finite(), b.is_fully_finite());
        for j in 0..a.defined() {
            assert_eq!(a.row_at(j), b.row_at(j), "perm diverges at {j}");
            assert_eq!(
                a.value_at(j).to_bits(),
                b.value_at(j).to_bits(),
                "sorted value diverges at {j}"
            );
        }
        for i in 0..a.rows() {
            assert_eq!(a.coord(i).to_bits(), b.coord(i).to_bits());
        }
    }

    #[test]
    fn extended_matches_build_from_scratch() {
        // adversarial delta content: NULLs, NaN, ±inf, ±0.0, heavy
        // duplicates of values already present in the base
        let val = |i: usize| -> Option<f64> {
            match i % 9 {
                0 => None,
                1 => Some(f64::NAN),
                2 => Some(f64::INFINITY),
                3 => Some(f64::NEG_INFINITY),
                4 => Some(0.0),
                5 => Some(-0.0),
                _ => Some(((i * 37) % 13) as f64),
            }
        };
        for (base, delta) in [(0, 5), (1, 1), (200, 0), (200, 7), (50, 300), (97, 13)] {
            let built = SortedProjection::build(base + delta, val);
            let ext = SortedProjection::build(base, val).extended(base + delta, val);
            assert_same(&ext, &built);
            // chains of extensions behave like one big one
            let chained = SortedProjection::build(base, val)
                .extended(base + delta / 2, val)
                .extended(base + delta, val);
            assert_same(&chained, &built);
        }
    }

    #[test]
    fn plugs_into_the_incremental_cache() {
        let values: Vec<Option<f64>> = (0..1000).map(|i| Some((i % 100) as f64)).collect();
        let direct = proj(&values);
        let mut cache = IncrementalCache::new(proj(&values), 0.25);
        // cold query, then contained slider tightenings: hits that only
        // re-filter the cached band
        let cold = cache.range_query(&[40.0], &[99.0]).unwrap();
        assert_eq!(cold, direct.range_query(&[40.0], &[99.0]).unwrap());
        for t in [41.0, 43.0, 48.0] {
            let got = cache.range_query(&[t], &[99.0]).unwrap();
            assert_eq!(got, direct.range_query(&[t], &[99.0]).unwrap());
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 3);
    }
}
