//! Linear scan baseline implementing [`RangeIndex`] — what a 1994 DBMS
//! without multidimensional support effectively did, and the baseline
//! the index ablation bench compares against.

use visdb_types::{Error, Result};

use crate::{check_box, RangeIndex};

/// A "no index": every range query scans all points.
#[derive(Debug, Clone)]
pub struct LinearScan {
    dims: usize,
    points: Vec<Vec<f64>>,
}

impl LinearScan {
    /// Wrap a point set.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self> {
        let dims = points.first().map_or(0, Vec::len);
        for (i, p) in points.iter().enumerate() {
            if p.len() != dims {
                return Err(Error::invalid_parameter(
                    "points",
                    format!("point {i} has {} dims, expected {dims}", p.len()),
                ));
            }
        }
        Ok(LinearScan { dims, points })
    }

    /// The wrapped points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }
}

impl RangeIndex for LinearScan {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        check_box(self.dims, low, high)?;
        Ok((0..self.points.len())
            .filter(|&i| {
                let p = &self.points[i];
                (0..self.dims).all(|d| low[d] <= p[d] && p[d] <= high[d])
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_filters() {
        let s = LinearScan::new(vec![vec![1.0], vec![5.0], vec![9.0]]).unwrap();
        assert_eq!(s.range_query(&[2.0], &[9.0]).unwrap(), vec![1, 2]);
        assert_eq!(s.dims(), 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ragged_points_rejected() {
        assert!(LinearScan::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }
}
