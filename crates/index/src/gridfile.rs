//! A grid file: equi-width directory over the data's bounding box.
//!
//! The classic multidimensional file structure of the era (Nievergelt et
//! al. 1984) and the natural comparator for the k-d tree in the index
//! ablation. Cells hold point-index buckets; a range query visits only
//! the directory cells overlapping the query box.

use visdb_types::{Error, Result};

use crate::{check_box, RangeIndex};

/// A grid file over `n` points with `resolution` cells per dimension.
#[derive(Debug, Clone)]
pub struct GridFile {
    dims: usize,
    resolution: usize,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    /// Flattened directory: cell -> bucket of point indices.
    cells: Vec<Vec<u32>>,
    points: Vec<Vec<f64>>,
}

impl GridFile {
    /// Build with `resolution` cells per dimension (≥ 1). Dimensionality
    /// is capped so the directory stays in memory
    /// (`resolution^dims ≤ 2^24`).
    pub fn build(points: Vec<Vec<f64>>, resolution: usize) -> Result<Self> {
        let dims = points.first().map_or(0, Vec::len);
        if resolution == 0 {
            return Err(Error::invalid_parameter("resolution", "must be >= 1"));
        }
        if dims > 0 {
            let cells = (resolution as u128).pow(dims as u32);
            if cells > 1 << 24 {
                return Err(Error::invalid_parameter(
                    "resolution",
                    format!("directory too large: {resolution}^{dims} cells"),
                ));
            }
        }
        let mut mins = vec![f64::INFINITY; dims];
        let mut maxs = vec![f64::NEG_INFINITY; dims];
        for (i, p) in points.iter().enumerate() {
            if p.len() != dims {
                return Err(Error::invalid_parameter(
                    "points",
                    format!("point {i} has {} dims, expected {dims}", p.len()),
                ));
            }
            for d in 0..dims {
                if p[d].is_nan() {
                    return Err(Error::invalid_parameter(
                        "points",
                        format!("point {i} has NaN"),
                    ));
                }
                mins[d] = mins[d].min(p[d]);
                maxs[d] = maxs[d].max(p[d]);
            }
        }
        let n_cells = if dims == 0 {
            0
        } else {
            resolution.pow(dims as u32)
        };
        let mut gf = GridFile {
            dims,
            resolution,
            mins,
            maxs,
            cells: vec![Vec::new(); n_cells],
            points,
        };
        for i in 0..gf.points.len() {
            let c = gf.cell_of(i);
            gf.cells[c].push(i as u32);
        }
        Ok(gf)
    }

    #[inline]
    fn coord_to_cell(&self, d: usize, x: f64) -> usize {
        let span = self.maxs[d] - self.mins[d];
        if span <= 0.0 {
            return 0;
        }
        let f = ((x - self.mins[d]) / span * self.resolution as f64) as usize;
        f.min(self.resolution - 1)
    }

    fn cell_of(&self, point: usize) -> usize {
        let p = &self.points[point];
        let mut idx = 0usize;
        for (d, &x) in p.iter().enumerate().take(self.dims) {
            idx = idx * self.resolution + self.coord_to_cell(d, x);
        }
        idx
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Number of directory cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    fn visit_cells(
        &self,
        d: usize,
        prefix: usize,
        lo_cells: &[usize],
        hi_cells: &[usize],
        out: &mut Vec<usize>,
    ) {
        if d == self.dims {
            out.push(prefix);
            return;
        }
        for c in lo_cells[d]..=hi_cells[d] {
            self.visit_cells(d + 1, prefix * self.resolution + c, lo_cells, hi_cells, out);
        }
    }
}

impl RangeIndex for GridFile {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        check_box(self.dims, low, high)?;
        if self.points.is_empty() {
            return Ok(Vec::new());
        }
        let lo_cells: Vec<usize> = (0..self.dims)
            .map(|d| self.coord_to_cell(d, low[d].max(self.mins[d])))
            .collect();
        let hi_cells: Vec<usize> = (0..self.dims)
            .map(|d| self.coord_to_cell(d, high[d].min(self.maxs[d])))
            .collect();
        // empty intersection with the data's bounding box?
        for d in 0..self.dims {
            if high[d] < self.mins[d] || low[d] > self.maxs[d] {
                return Ok(Vec::new());
            }
        }
        let mut cell_ids = Vec::new();
        self.visit_cells(0, 0, &lo_cells, &hi_cells, &mut cell_ids);
        let mut out = Vec::new();
        for c in cell_ids {
            for &pi in &self.cells[c] {
                let p = &self.points[pi as usize];
                if (0..self.dims).all(|d| low[d] <= p[d] && p[d] <= high[d]) {
                    out.push(pi as usize);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cloud() -> Vec<Vec<f64>> {
        (0..400)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect()
    }

    #[test]
    fn range_query_exact() {
        let g = GridFile::build(cloud(), 8).unwrap();
        let mut hits = g.range_query(&[3.0, 4.0], &[6.0, 7.0]).unwrap();
        hits.sort_unstable();
        assert_eq!(hits.len(), 16);
        for &i in &hits {
            let p = &g.points()[i];
            assert!((3.0..=6.0).contains(&p[0]) && (4.0..=7.0).contains(&p[1]));
        }
    }

    #[test]
    fn query_outside_bounding_box() {
        let g = GridFile::build(cloud(), 4).unwrap();
        assert!(g
            .range_query(&[-10.0, -10.0], &[-5.0, -5.0])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn degenerate_single_point() {
        let g = GridFile::build(vec![vec![5.0, 5.0]], 4).unwrap();
        assert_eq!(g.range_query(&[0.0, 0.0], &[10.0, 10.0]).unwrap(), vec![0]);
    }

    #[test]
    fn build_validation() {
        assert!(GridFile::build(cloud(), 0).is_err());
        assert!(GridFile::build(vec![vec![1.0], vec![1.0, 2.0]], 4).is_err());
        // directory size cap: 4096^3 > 2^24
        assert!(GridFile::build(vec![vec![0.0; 3]], 4096).is_err());
        let empty = GridFile::build(Vec::new(), 4).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.range_query(&[], &[]).unwrap(), Vec::<usize>::new());
    }

    proptest! {
        /// Grid file agrees with brute force.
        #[test]
        fn prop_matches_bruteforce(
            pts in prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, 2), 1..150),
            bounds in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2),
            res in 1usize..16,
        ) {
            let low: Vec<f64> = bounds.iter().map(|(a, b)| a.min(*b)).collect();
            let high: Vec<f64> = bounds.iter().map(|(a, b)| a.max(*b)).collect();
            let g = GridFile::build(pts.clone(), res).unwrap();
            let mut got = g.range_query(&low, &high).unwrap();
            got.sort_unstable();
            let mut want: Vec<usize> = (0..pts.len())
                .filter(|&i| (0..2).all(|d| low[d] <= pts[i][d] && pts[i][d] <= high[d]))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
