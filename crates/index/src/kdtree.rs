//! A median-split k-d tree.
//!
//! Built once over the full point set (bulk loading by repeated median
//! partitioning, O(n log n)); supports orthogonal range queries and
//! nearest-neighbour lookups. Nodes are stored in a flat array — no
//! per-node allocation.

use visdb_types::{Error, Result};

use crate::{check_box, RangeIndex};

#[derive(Debug, Clone)]
struct Node {
    /// Index into the permuted `order` array: this node's point.
    point: usize,
    /// Split dimension.
    dim: usize,
    left: Option<u32>,
    right: Option<u32>,
}

/// A k-d tree over `n` points of fixed dimensionality.
#[derive(Debug, Clone)]
pub struct KdTree {
    dims: usize,
    points: Vec<Vec<f64>>,
    nodes: Vec<Node>,
    root: Option<u32>,
}

impl KdTree {
    /// Bulk-load from points. All points must share one dimensionality
    /// ≥ 1 and contain no NaNs.
    pub fn build(points: Vec<Vec<f64>>) -> Result<Self> {
        let dims = points.first().map_or(0, Vec::len);
        if points.is_empty() || dims == 0 {
            return Ok(KdTree {
                dims,
                points,
                nodes: Vec::new(),
                root: None,
            });
        }
        for (i, p) in points.iter().enumerate() {
            if p.len() != dims {
                return Err(Error::invalid_parameter(
                    "points",
                    format!("point {i} has {} dims, expected {dims}", p.len()),
                ));
            }
            if p.iter().any(|x| x.is_nan()) {
                return Err(Error::invalid_parameter(
                    "points",
                    format!("point {i} has NaN"),
                ));
            }
        }
        let mut tree = KdTree {
            dims,
            nodes: Vec::with_capacity(points.len()),
            points,
            root: None,
        };
        let mut order: Vec<usize> = (0..tree.points.len()).collect();
        tree.root = tree.build_rec(&mut order, 0);
        Ok(tree)
    }

    fn build_rec(&mut self, slice: &mut [usize], depth: usize) -> Option<u32> {
        if slice.is_empty() {
            return None;
        }
        let dim = depth % self.dims;
        let mid = slice.len() / 2;
        slice.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][dim]
                .partial_cmp(&self.points[b][dim])
                .expect("no NaNs")
        });
        let point = slice[mid];
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            point,
            dim,
            left: None,
            right: None,
        });
        let (left_slice, rest) = slice.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = self.build_rec(left_slice, depth + 1);
        let right = self.build_rec(right_slice, depth + 1);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        Some(id)
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Nearest neighbour (Euclidean) of a query point; `None` on an empty
    /// tree or dimension mismatch.
    pub fn nearest(&self, query: &[f64]) -> Option<usize> {
        if query.len() != self.dims || self.root.is_none() {
            return None;
        }
        let mut best = (f64::INFINITY, usize::MAX);
        self.nearest_rec(self.root, query, &mut best);
        (best.1 != usize::MAX).then_some(best.1)
    }

    fn nearest_rec(&self, node: Option<u32>, query: &[f64], best: &mut (f64, usize)) {
        let Some(id) = node else { return };
        let n = &self.nodes[id as usize];
        let p = &self.points[n.point];
        let d2: f64 = p.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
        if d2 < best.0 {
            *best = (d2, n.point);
        }
        let delta = query[n.dim] - p[n.dim];
        let (near, far) = if delta < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.nearest_rec(near, query, best);
        if delta * delta < best.0 {
            self.nearest_rec(far, query, best);
        }
    }

    fn range_rec(&self, node: Option<u32>, low: &[f64], high: &[f64], out: &mut Vec<usize>) {
        let Some(id) = node else { return };
        let n = &self.nodes[id as usize];
        let p = &self.points[n.point];
        if p.iter()
            .zip(low.iter().zip(high))
            .all(|(x, (lo, hi))| *lo <= *x && *x <= *hi)
        {
            out.push(n.point);
        }
        let v = p[n.dim];
        if low[n.dim] <= v {
            self.range_rec(n.left, low, high, out);
        }
        if v <= high[n.dim] {
            self.range_rec(n.right, low, high, out);
        }
    }
}

impl RangeIndex for KdTree {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>> {
        check_box(self.dims, low, high)?;
        let mut out = Vec::new();
        self.range_rec(self.root, low, high, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        // n x n integer grid
        (0..n * n)
            .map(|i| vec![(i % n) as f64, (i / n) as f64])
            .collect()
    }

    #[test]
    fn range_query_matches_grid_expectation() {
        let t = KdTree::build(grid_points(10)).unwrap();
        let hits = t.range_query(&[2.0, 3.0], &[4.0, 5.0]).unwrap();
        assert_eq!(hits.len(), 9); // 3 x 3 cells
        for &i in &hits {
            let p = &t.points()[i];
            assert!(p[0] >= 2.0 && p[0] <= 4.0 && p[1] >= 3.0 && p[1] <= 5.0);
        }
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let t = KdTree::build(grid_points(5)).unwrap();
        assert!(t
            .range_query(&[100.0, 100.0], &[200.0, 200.0])
            .unwrap()
            .is_empty());
        // point query
        let hits = t.range_query(&[2.0, 2.0], &[2.0, 2.0]).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn invalid_boxes_rejected() {
        let t = KdTree::build(grid_points(3)).unwrap();
        assert!(t.range_query(&[1.0], &[2.0, 2.0]).is_err());
        assert!(t.range_query(&[3.0, 3.0], &[1.0, 1.0]).is_err());
        assert!(t.range_query(&[f64::NAN, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn build_validation() {
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KdTree::build(vec![vec![f64::NAN]]).is_err());
        let empty = KdTree::build(Vec::new()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(&[1.0]), None);
    }

    #[test]
    fn nearest_neighbour_on_grid() {
        let t = KdTree::build(grid_points(10)).unwrap();
        let nn = t.nearest(&[3.2, 6.8]).unwrap();
        assert_eq!(t.points()[nn], vec![3.0, 7.0]);
        let nn = t.nearest(&[0.0, 0.0]).unwrap();
        assert_eq!(t.points()[nn], vec![0.0, 0.0]);
    }

    #[test]
    fn duplicate_points_all_found() {
        let pts = vec![vec![1.0, 1.0]; 7];
        let t = KdTree::build(pts).unwrap();
        let hits = t.range_query(&[0.0, 0.0], &[2.0, 2.0]).unwrap();
        assert_eq!(hits.len(), 7);
    }

    proptest! {
        /// k-d tree range query agrees with a brute-force filter.
        #[test]
        fn prop_matches_bruteforce(
            pts in prop::collection::vec(
                prop::collection::vec(-100.0f64..100.0, 3), 1..200),
            bounds in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3),
        ) {
            let low: Vec<f64> = bounds.iter().map(|(a, b)| a.min(*b)).collect();
            let high: Vec<f64> = bounds.iter().map(|(a, b)| a.max(*b)).collect();
            let t = KdTree::build(pts.clone()).unwrap();
            let mut got = t.range_query(&low, &high).unwrap();
            got.sort_unstable();
            let mut want: Vec<usize> = (0..pts.len())
                .filter(|&i| (0..3).all(|d| low[d] <= pts[i][d] && pts[i][d] <= high[d]))
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// nearest() returns a true nearest neighbour.
        #[test]
        fn prop_nearest_is_nearest(
            pts in prop::collection::vec(
                prop::collection::vec(-50.0f64..50.0, 2), 1..100),
            q in prop::collection::vec(-50.0f64..50.0, 2),
        ) {
            let t = KdTree::build(pts.clone()).unwrap();
            let nn = t.nearest(&q).unwrap();
            let d2 = |p: &[f64]| -> f64 {
                p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let best = pts.iter().map(|p| d2(p)).fold(f64::INFINITY, f64::min);
            prop_assert!((d2(&pts[nn]) - best).abs() < 1e-9);
        }
    }
}
