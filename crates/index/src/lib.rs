//! # visdb-index
//!
//! Multidimensional access methods — the substrate the paper found
//! missing in 1994 database systems: "multidimensional data structures
//! that support range queries on multiple attributes will be essential to
//! improve query performance" (§6).
//!
//! * [`kdtree`] — a median-split k-d tree over numeric attribute vectors
//!   with orthogonal range queries and nearest-neighbour search.
//! * [`gridfile`] — a grid file (equi-width directory) as the classic
//!   1990s alternative; same [`RangeIndex`] interface.
//! * [`linear`] — linear scan baseline for the ablation benches.
//! * [`incremental`] — the paper's incremental-recalculation idea:
//!   "retrieve more data than necessary in the beginning and ... retrieve
//!   only the additional portion of the data that is needed for a
//!   slightly modified query later on."
//! * [`projection`] — per-column sorted permutations: O(log n) position
//!   arithmetic for monotone single-column predicates, and the 1-D
//!   [`RangeIndex`] the incremental cache serves slider drags from.

pub mod gridfile;
pub mod incremental;
pub mod kdtree;
pub mod linear;
pub mod projection;

pub use gridfile::GridFile;
pub use incremental::{CacheStats, IncrementalCache, PointAccess};
pub use kdtree::KdTree;
pub use linear::LinearScan;
pub use projection::{BandSweep, SortedProjection};

use std::sync::Arc;
use visdb_types::Result;

/// A shared, cross-session store of built [`SortedProjection`]s, keyed
/// by an opaque string that must cover every input of a build: the
/// dataset *generation*, the table, the row count and the column (the
/// serving layer's `visdb_core::projection_key`). A projection is pure
/// column data — independent of distance resolvers and display settings
/// — so N sessions dragging sliders on the same column can share one
/// ~20 bytes/row build instead of paying one each.
///
/// Implementations must be safe to call concurrently; projections are
/// handed out as cheap [`Arc`] clones.
pub trait ProjectionSource: Send + Sync {
    /// Return a previously stored projection for this exact key, if any.
    fn lookup(&self, key: &str) -> Option<Arc<SortedProjection>>;
    /// Store a freshly built projection under its key.
    fn store(&self, key: String, projection: Arc<SortedProjection>);
}

/// Orthogonal range queries over a fixed set of `dims()`-dimensional
/// points. Implementations return *row indices* of matching points.
pub trait RangeIndex {
    /// Dimensionality of the indexed points.
    fn dims(&self) -> usize;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// True if no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All points `p` with `low[d] <= p[d] <= high[d]` for every
    /// dimension `d`. The result order is implementation-defined.
    fn range_query(&self, low: &[f64], high: &[f64]) -> Result<Vec<usize>>;
}

pub(crate) fn check_box(dims: usize, low: &[f64], high: &[f64]) -> Result<()> {
    use visdb_types::Error;
    if low.len() != dims || high.len() != dims {
        return Err(Error::invalid_parameter(
            "range",
            format!(
                "expected {dims}-dimensional bounds, got {} / {}",
                low.len(),
                high.len()
            ),
        ));
    }
    for d in 0..dims {
        if low[d].is_nan() || high[d].is_nan() {
            return Err(Error::invalid_parameter("range", "NaN bound"));
        }
        if low[d] > high[d] {
            return Err(Error::invalid_parameter(
                "range",
                format!("low[{d}] = {} exceeds high[{d}] = {}", low[d], high[d]),
            ));
        }
    }
    Ok(())
}
