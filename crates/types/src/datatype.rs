//! The datatype lattice.
//!
//! The paper (§3) classifies attributes by the *kind* of distance function
//! they admit: "numerical difference (for metric types), distance matrices
//! (for ordinal and nominal types), lexicographical, character-wise,
//! substring or phonetic difference (for strings)". [`DataType`] is the
//! physical type; [`TypeClass`] is that measurement-theoretic class.

use std::fmt;

/// Physical datatype of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Seconds since the Unix epoch.
    Timestamp,
    /// Geographic (lat, lon) pair.
    Location,
    /// The type of `NULL`; compatible with everything.
    Unknown,
}

impl DataType {
    /// The default measurement class of the physical type. Columns may
    /// override this (e.g. an `Int` column holding nominal category codes);
    /// see [`crate::schema::Column::type_class`].
    pub fn default_class(self) -> TypeClass {
        match self {
            DataType::Bool => TypeClass::Nominal,
            DataType::Int | DataType::Float | DataType::Timestamp => TypeClass::Metric,
            DataType::Str => TypeClass::Nominal,
            DataType::Location => TypeClass::Spatial,
            DataType::Unknown => TypeClass::Nominal,
        }
    }

    /// Whether two physical types can be compared / measured against each
    /// other. Numeric types are mutually compatible; everything else only
    /// with itself. `Unknown` (the NULL type) is compatible with all.
    pub fn is_compatible(self, other: DataType) -> bool {
        use DataType::*;
        if self == Unknown || other == Unknown {
            return true;
        }
        match (self, other) {
            (Int | Float | Timestamp, Int | Float | Timestamp) => true,
            (a, b) => a == b,
        }
    }

    /// True for types with a meaningful numeric projection.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::Timestamp | DataType::Bool
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Timestamp => "timestamp",
            DataType::Location => "location",
            DataType::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// Measurement-theoretic class of an attribute, which determines which
/// distance functions are admissible and which slider style the interactive
/// interface offers (§4.3: "Different types of sliders are provided for
/// different datatypes and different distance functions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// Quantitative with meaningful differences: numeric difference applies.
    Metric,
    /// Ordered categories: distance = rank difference or a distance matrix.
    Ordinal,
    /// Unordered categories: distance matrix or 0/1 discrete metric.
    Nominal,
    /// Two-dimensional spatial data: geodesic / Euclidean distance.
    Spatial,
}

impl TypeClass {
    /// Whether attributes of this class produce *signed* distances (needed
    /// for the fig 1b two-attribute axis arrangement, which separates
    /// negative from positive deviations).
    pub fn supports_signed_distance(self) -> bool {
        matches!(self, TypeClass::Metric | TypeClass::Ordinal)
    }
}

impl fmt::Display for TypeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeClass::Metric => "metric",
            TypeClass::Ordinal => "ordinal",
            TypeClass::Nominal => "nominal",
            TypeClass::Spatial => "spatial",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_types_are_mutually_compatible() {
        assert!(DataType::Int.is_compatible(DataType::Float));
        assert!(DataType::Float.is_compatible(DataType::Timestamp));
        assert!(!DataType::Str.is_compatible(DataType::Int));
        assert!(DataType::Unknown.is_compatible(DataType::Location));
    }

    #[test]
    fn default_classes_follow_the_paper() {
        assert_eq!(DataType::Float.default_class(), TypeClass::Metric);
        assert_eq!(DataType::Str.default_class(), TypeClass::Nominal);
        assert_eq!(DataType::Location.default_class(), TypeClass::Spatial);
    }

    #[test]
    fn signed_distance_support() {
        assert!(TypeClass::Metric.supports_signed_distance());
        assert!(TypeClass::Ordinal.supports_signed_distance());
        assert!(!TypeClass::Nominal.supports_signed_distance());
        assert!(!TypeClass::Spatial.supports_signed_distance());
    }
}
