//! Error type shared by all VisDB crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the VisDB pipeline.
///
/// A single error enum (rather than per-crate error types) keeps the
/// pipeline plumbing simple: every stage — storage, query validation,
/// distance evaluation, rendering — returns `visdb_types::Result`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A value had the wrong type for an operation.
    TypeMismatch {
        /// What the operation needed.
        expected: String,
        /// What it got.
        found: String,
    },
    /// Reference to a table that does not exist in the catalog.
    UnknownTable(String),
    /// Reference to a column that does not exist in a table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Column requested.
        column: String,
    },
    /// Reference to a named connection (pre-declared join) that is unknown.
    UnknownConnection(String),
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Table length.
        len: usize,
    },
    /// Inserted row arity does not match the schema.
    ArityMismatch {
        /// Schema width.
        expected: usize,
        /// Row width.
        found: usize,
    },
    /// A query is structurally invalid (empty OR, negation without
    /// invertible operator, weight out of range, ...).
    InvalidQuery(String),
    /// A distance function was asked for an unsupported value pairing.
    DistanceUndefined(String),
    /// A parameter (quantile, percentage, window size, ...) is out of range.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Human-readable description of the violation.
        message: String,
    },
    /// Text parsing (CSV / mini query language) failed.
    Parse {
        /// Byte or line position, when known.
        position: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure (message-only so the error stays `Clone`).
    Io(String),
    /// The caller (or a `cancel` server op) abandoned the query; the
    /// pipeline stopped cooperatively at the next chunk boundary.
    Cancelled,
    /// The query's deadline expired mid-pipeline; partial work was
    /// discarded and nothing was cached.
    DeadlineExceeded,
    /// Something not expressible above.
    Internal(String),
}

impl Error {
    /// Shorthand for [`Error::InvalidQuery`].
    pub fn invalid_query(msg: impl Into<String>) -> Self {
        Error::InvalidQuery(msg.into())
    }

    /// Shorthand for [`Error::InvalidParameter`].
    pub fn invalid_parameter(name: impl Into<String>, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name: name.into(),
            message: message.into(),
        }
    }

    /// Shorthand for [`Error::Parse`] without a position.
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse {
            position: None,
            message: msg.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column '{column}' in table '{table}'")
            }
            Error::UnknownConnection(c) => write!(f, "unknown connection '{c}'"),
            Error::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (table has {len} rows)")
            }
            Error::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, row has {found}"
                )
            }
            Error::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            Error::DistanceUndefined(m) => write!(f, "distance undefined: {m}"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter '{name}': {message}")
            }
            Error::Parse { position, message } => match position {
                Some(p) => write!(f, "parse error at {p}: {message}"),
                None => write!(f, "parse error: {message}"),
            },
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Cancelled => write!(f, "query cancelled"),
            Error::DeadlineExceeded => write!(f, "deadline exceeded"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownColumn {
            table: "Weather".into(),
            column: "Ozone".into(),
        };
        assert_eq!(e.to_string(), "unknown column 'Ozone' in table 'Weather'");
        let e = Error::invalid_parameter("percentage", "must be in (0, 100]");
        assert!(e.to_string().contains("percentage"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
