//! The dynamic value model.
//!
//! VisDB operates over heterogeneous relational data. [`Value`] is the
//! lingua franca between the storage layer (which stores columns natively)
//! and the query/distance layers (which need a uniform runtime
//! representation for literals, selected tuples and slider endpoints).

use std::cmp::Ordering;
use std::fmt;

use crate::datatype::DataType;
use crate::error::{Error, Result};

/// Seconds since the Unix epoch. The paper's environmental workload records
/// hourly measurements; second resolution is sufficient and keeps the type
/// `Copy` and totally ordered.
pub type Timestamp = i64;

/// A geographic location in degrees. Used by the `at-same-location` and
/// `with-distance(m)` connections of the paper's example query (fig 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Location {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl Location {
    /// Create a new location, normalizing nothing: callers are expected to
    /// provide coordinates in valid ranges (checked by [`Location::is_valid`]).
    pub fn new(lat: f64, lon: f64) -> Self {
        Location { lat, lon }
    }

    /// True if the coordinates are within the usual WGS84 ranges.
    pub fn is_valid(&self) -> bool {
        self.lat.is_finite()
            && self.lon.is_finite()
            && (-90.0..=90.0).contains(&self.lat)
            && (-180.0..=180.0).contains(&self.lon)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lat, self.lon)
    }
}

/// A single dynamically-typed value.
///
/// `Null` is a first-class member because the paper is explicitly motivated
/// by "NULL results" (§1) — queries whose exact answer set is empty — and
/// because real measurement series have gaps. Distance functions treat
/// `Null` as *maximally distant* (see `visdb-distance`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unknown value.
    Null,
    /// Boolean value (used for already-evaluated predicates).
    Bool(bool),
    /// 64-bit signed integer (metric).
    Int(i64),
    /// 64-bit float (metric).
    Float(f64),
    /// UTF-8 string (nominal by default; distance functions may impose
    /// lexicographic, edit, substring or phonetic structure).
    Str(String),
    /// Seconds since the Unix epoch (metric, but rendered as date-time).
    Timestamp(Timestamp),
    /// Geographic coordinates (requires a 2-D distance function).
    Location(Location),
}

impl Value {
    /// The runtime datatype of this value. `Null` has no type of its own and
    /// reports [`DataType::Unknown`].
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Unknown,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Location(_) => DataType::Location,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int`, `Float`, `Timestamp` and `Bool` all have a
    /// meaningful numeric projection; everything else is `None`.
    ///
    /// This is the workhorse of the metric distance functions: the paper
    /// uses "numerical difference (for metric types)" (§3).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view (exact for `Int`/`Timestamp`/`Bool`, truncating for
    /// `Float` if it is finite and within `i64` range).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Float(f) if f.is_finite() && f.abs() < i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Location view (only for `Location`).
    pub fn as_location(&self) -> Option<Location> {
        match self {
            Value::Location(l) => Some(*l),
            _ => None,
        }
    }

    /// Strict numeric coercion, returning a typed error rather than `None`;
    /// used by query validation where a non-numeric operand is a user error.
    pub fn expect_f64(&self) -> Result<f64> {
        self.as_f64().ok_or_else(|| Error::TypeMismatch {
            expected: "numeric".to_string(),
            found: self.data_type().to_string(),
        })
    }

    /// Total ordering between two values of compatible types. Values of
    /// incompatible types are unordered (`None`), as are NaNs and locations
    /// (which have no natural 1-D order).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Location(_), _) | (_, Value::Location(_)) => None,
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Location(l) => write!(f, "{l}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Location> for Value {
    fn from(v: Location) -> Self {
        Value::Location(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views_agree() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Timestamp(7200).as_f64(), Some(7200.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn as_i64_truncates_floats() {
        assert_eq!(Value::Float(2.9).as_i64(), Some(2));
        assert_eq!(Value::Float(f64::NAN).as_i64(), None);
        assert_eq!(Value::Float(f64::INFINITY).as_i64(), None);
    }

    #[test]
    fn ordering_across_numeric_types() {
        assert_eq!(
            Value::Int(3).partial_cmp_value(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).partial_cmp_value(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn ordering_strings_is_lexicographic() {
        assert_eq!(
            Value::from("abc").partial_cmp_value(&Value::from("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_is_unordered_against_values() {
        assert_eq!(Value::Null.partial_cmp_value(&Value::Int(0)), None);
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Null),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn locations_are_unordered() {
        let a = Value::Location(Location::new(48.1, 11.6));
        let b = Value::Location(Location::new(48.2, 11.7));
        assert_eq!(a.partial_cmp_value(&b), None);
    }

    #[test]
    fn location_validity() {
        assert!(Location::new(48.1, 11.6).is_valid());
        assert!(!Location::new(95.0, 11.6).is_valid());
        assert!(!Location::new(f64::NAN, 0.0).is_valid());
    }

    #[test]
    fn expect_f64_reports_type_error() {
        let err = Value::from("hi").expect_f64().unwrap_err();
        assert!(err.to_string().contains("numeric"));
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::from("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
