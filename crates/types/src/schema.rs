//! Relational schema descriptions.
//!
//! A [`Schema`] is an ordered list of [`Column`]s. Besides the physical
//! [`DataType`], each column records its [`TypeClass`] (which distance
//! functions are admissible) and optional domain bounds used by the slider
//! UI model ("Outside the color spectrums the minimum and maximum value of
//! the attribute in the database are displayed", §4.3).

use std::fmt;

use crate::datatype::{DataType, TypeClass};
use crate::error::{Error, Result};

/// Index of a column within its table's schema.
pub type ColumnId = usize;

/// Name of a table in the catalog.
pub type TableName = String;

/// Description of one attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Attribute name (e.g. `Temperature`).
    pub name: String,
    /// Physical storage type.
    pub data_type: DataType,
    /// Measurement class; defaults to `data_type.default_class()`.
    pub type_class: TypeClass,
    /// Optional unit label, shown in slider panels (`°C`, `watt/m2`, `%`).
    pub unit: Option<String>,
}

impl Column {
    /// New column with the type's default measurement class.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            type_class: data_type.default_class(),
            unit: None,
        }
    }

    /// Override the measurement class (e.g. an `Int` column of ordinal
    /// severity grades, or a `Str` column with ordinal sizes S < M < L).
    pub fn with_class(mut self, class: TypeClass) -> Self {
        self.type_class = class;
        self
    }

    /// Attach a display unit.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = Some(unit.into());
        self
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        if let Some(u) = &self.unit {
            write!(f, " [{u}]")?;
        }
        Ok(())
    }
}

/// Ordered collection of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns. Column names must be unique
    /// (case-sensitive); duplicates are a caller bug and panic in debug
    /// builds via the returned error in [`Schema::try_new`].
    pub fn new(columns: Vec<Column>) -> Self {
        Self::try_new(columns).expect("duplicate column names in schema")
    }

    /// Fallible constructor that rejects duplicate column names.
    pub fn try_new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::invalid_query(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by position.
    pub fn column(&self, id: ColumnId) -> Option<&Column> {
        self.columns.get(id)
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of a column by name, with a typed error naming the table.
    pub fn require(&self, table: &str, name: &str) -> Result<ColumnId> {
        self.index_of(name).ok_or_else(|| Error::UnknownColumn {
            table: table.to_string(),
            column: name.to_string(),
        })
    }

    /// Concatenate two schemas (used for cross products in approximate
    /// joins, §4.4). Colliding names are disambiguated with a `right.`
    /// prefix style: `left_name` stays, collisions become `{prefix}.{name}`.
    pub fn join(&self, other: &Schema, prefix: &str) -> Schema {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let mut c = c.clone();
            if cols.iter().any(|e| e.name == c.name) {
                c.name = format!("{prefix}.{}", c.name);
            }
            cols.push(c);
        }
        Schema { columns: cols }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather_schema() -> Schema {
        Schema::new(vec![
            Column::new("DateTime", DataType::Timestamp),
            Column::new("Location", DataType::Location),
            Column::new("Temperature", DataType::Float).with_unit("°C"),
            Column::new("Humidity", DataType::Float).with_unit("%"),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = weather_schema();
        assert_eq!(s.index_of("Temperature"), Some(2));
        assert_eq!(s.index_of("Ozone"), None);
        assert!(s.require("Weather", "Ozone").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let cols = vec![
            Column::new("A", DataType::Int),
            Column::new("A", DataType::Float),
        ];
        assert!(Schema::try_new(cols).is_err());
    }

    #[test]
    fn join_disambiguates_collisions() {
        let a = weather_schema();
        let b = Schema::new(vec![
            Column::new("DateTime", DataType::Timestamp),
            Column::new("Ozone", DataType::Float),
        ]);
        let j = a.join(&b, "AirPollution");
        assert_eq!(j.len(), 6);
        assert!(j.index_of("AirPollution.DateTime").is_some());
        assert!(j.index_of("Ozone").is_some());
    }

    #[test]
    fn class_override() {
        let c = Column::new("Severity", DataType::Int).with_class(TypeClass::Ordinal);
        assert_eq!(c.type_class, TypeClass::Ordinal);
    }
}
