//! # visdb-types
//!
//! Foundational types for the VisDB reproduction: the dynamic [`Value`]
//! model, the [`DataType`] lattice used by distance functions, relational
//! [`Schema`] descriptions, and the crate-spanning [`Error`] type.
//!
//! VisDB (Keim & Kriegel, ICDE 1994) is datatype-driven: every selection
//! predicate carries a *distance function* whose choice depends on whether
//! the attribute is metric, ordinal, nominal, a string, a timestamp or a
//! geographic location (§3 of the paper). This crate defines that datatype
//! vocabulary once so that storage, query and distance layers agree.

pub mod datatype;
pub mod error;
pub mod schema;
pub mod value;

pub use datatype::{DataType, TypeClass};
pub use error::{Error, Result};
pub use schema::{Column, ColumnId, Schema, TableName};
pub use value::{Location, Timestamp, Value};
