//! Incremental recalculation across query modifications (§6).
//!
//! "Our idea is to retrieve more data than necessary in the beginning and
//! to retrieve only the additional portion of the data that is needed for
//! a slightly modified query later on."
//!
//! At the pipeline level the expensive artefact is the per-window *raw
//! distance vector* (one O(n) pass per predicate — or O(n·m) for
//! subqueries). A slider modification changes exactly one window; the
//! other windows' distances are bit-identical and can be reused. The
//! [`PipelineCache`] stores `(condition subtree, NodeEval)` pairs keyed by
//! structural equality of the subtree, fingerprinted by the base relation
//! and the display budget (nested combining normalizes with the budget,
//! so a budget change invalidates too).

use std::fmt::Write as _;

use visdb_query::ast::{
    AttrRef, CompareOp, ConditionNode, Predicate, PredicateTarget, Query, SubqueryLink, Weighted,
};
use visdb_query::connection::{ConnectionKind, ConnectionUse};
use visdb_storage::Table;
use visdb_types::Value;

use crate::extend::WindowRecipe;
use crate::pipeline::PredicateWindow;

/// A cache of evaluated predicate windows shared *across* sessions (and
/// threads) — the cross-session sibling of the per-session
/// [`PipelineCache`]. The serving layer implements this over a bounded
/// LRU map (`visdb_service::WindowCache`), so one user's slider drag
/// leaves every *unchanged* window pre-evaluated for everyone else.
///
/// Implementations must be safe to call concurrently; entries are handed
/// out as cheap [`PredicateWindow`] clones (the heavy vectors are
/// `Arc`-shared).
///
/// Correctness rests on the key ([`window_key`]) covering every input of
/// a window evaluation **except** the distance resolver and the base
/// relation's row *content* — the scope string must therefore uniquely
/// identify the dataset generation, and sessions with a non-default
/// resolver (or sampled cross products) must not share a cache.
pub trait WindowSource: Send + Sync {
    /// Return a previously stored window for this exact key, if any.
    fn lookup(&self, key: &str) -> Option<PredicateWindow>;
    /// Store a freshly evaluated window under its key. `recipe` is
    /// present when the window can be *extended* across data appends
    /// (see [`crate::extend`]); implementations that support the append
    /// path keep it alongside the window, others may ignore it.
    fn store(&self, key: String, window: PredicateWindow, recipe: Option<WindowRecipe>);
}

/// The exact cache key of one predicate-window evaluation: dataset scope
/// (name + generation), base relation identity, row count, display
/// budget (normalization input), window weight, and the condition
/// subtree (structural identity — two sessions building the same
/// subtree through different paths share an entry).
///
/// The subtree is rendered by [`encode_node`], an explicit canonical
/// visitor with **length-prefixed strings**: every user-controlled
/// string (column names, string literals, connection names) is written
/// as `len:bytes`, every list with a count prefix, and every float as
/// its exact bit pattern. The **scope and table name are length-prefixed
/// too** — both are user-controllable now that datasets can be
/// registered from CSV text, so a crafted dataset or table name must not
/// be able to shift bytes across field boundaries any more than a
/// crafted literal can. Injectivity therefore never depends on escaping
/// or on any formatting a crafted input could imitate — the failure
/// mode of naive `Display`/join encodings, where a literal like
/// `"a = b"` inside one tree can render identically to two separate
/// fields of another (regression-tested below). Neither the
/// human-oriented query printer (elides unit weights, no escaping) nor
/// derived `Debug` (stable only by accident of the derive) is used.
/// All NaN literals share a bit-pattern class per NaN, which is
/// harmless: a NaN predicate yields identical (all-undefined) distances
/// regardless of payload.
pub fn window_key(
    scope: &str,
    table: &Table,
    display_budget: usize,
    weight: f64,
    node: &ConditionNode,
) -> String {
    let mut key = String::new();
    encode_str(&mut key, scope);
    encode_str(&mut key, table.name());
    let _ = write!(
        key,
        "{};{display_budget};{:016x};",
        table.len(),
        weight.to_bits()
    );
    encode_node(&mut key, node);
    key
}

/// The scope string a [`window_key`] (or any key starting with an
/// [`encode_str`]-framed scope) was built under, or `None` for a
/// malformed key. Cache implementations use this to invalidate every
/// entry of one dataset without relying on raw prefix matching — which
/// a scope containing the match bytes could defeat.
pub fn key_scope(key: &str) -> Option<&str> {
    let (len, rest) = key.split_once(':')?;
    let len: usize = len.parse().ok()?;
    rest.get(..len)
}

/// Append `s` as `len:bytes` — the length prefix is what makes every
/// downstream composite encoding injective regardless of the bytes a
/// user-controlled string contains.
fn encode_str(out: &mut String, s: &str) {
    let _ = write!(out, "{}:", s.len());
    out.push_str(s);
}

fn encode_f64(out: &mut String, v: f64) {
    let _ = write!(out, "{:016x}", v.to_bits());
}

fn encode_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push('N'),
        Value::Bool(b) => out.push_str(if *b { "B1" } else { "B0" }),
        Value::Int(i) => {
            let _ = write!(out, "I{i};");
        }
        Value::Float(f) => {
            out.push('F');
            encode_f64(out, *f);
        }
        Value::Str(s) => {
            out.push('S');
            encode_str(out, s);
        }
        Value::Timestamp(t) => {
            let _ = write!(out, "T{t};");
        }
        Value::Location(l) => {
            out.push('L');
            encode_f64(out, l.lat);
            encode_f64(out, l.lon);
        }
    }
}

fn encode_attr(out: &mut String, attr: &AttrRef) {
    out.push('a');
    match &attr.table {
        Some(t) => {
            out.push('1');
            encode_str(out, t);
        }
        None => out.push('0'),
    }
    encode_str(out, &attr.column);
}

fn encode_op(out: &mut String, op: CompareOp) {
    out.push(match op {
        CompareOp::Eq => '=',
        CompareOp::Ne => '≠',
        CompareOp::Lt => '<',
        CompareOp::Le => '≤',
        CompareOp::Gt => '>',
        CompareOp::Ge => '≥',
    });
}

fn encode_predicate(out: &mut String, p: &Predicate) {
    out.push('p');
    encode_attr(out, &p.attr);
    match &p.target {
        PredicateTarget::Compare { op, value } => {
            out.push('C');
            encode_op(out, *op);
            encode_value(out, value);
        }
        PredicateTarget::Range { low, high } => {
            out.push('R');
            encode_value(out, low);
            encode_value(out, high);
        }
        PredicateTarget::Around { center, deviation } => {
            out.push('A');
            encode_value(out, center);
            encode_f64(out, *deviation);
        }
    }
}

fn encode_weighted_list(out: &mut String, children: &[Weighted]) {
    let _ = write!(out, "{}(", children.len());
    for w in children {
        encode_f64(out, w.weight);
        encode_node(out, &w.node);
    }
    out.push(')');
}

fn encode_connection(out: &mut String, c: &ConnectionUse) {
    out.push('c');
    encode_str(out, &c.def.name);
    encode_str(out, &c.def.left_table);
    encode_str(out, &c.def.right_table);
    match &c.def.kind {
        ConnectionKind::Equi { left, right } => {
            out.push('E');
            encode_attr(out, left);
            encode_attr(out, right);
        }
        ConnectionKind::NonEqui { left, op, right } => {
            out.push('O');
            encode_attr(out, left);
            encode_op(out, *op);
            encode_attr(out, right);
        }
        ConnectionKind::TimeDiff { left, right } => {
            out.push('T');
            encode_attr(out, left);
            encode_attr(out, right);
        }
        ConnectionKind::SpatialWithin { left, right } => {
            out.push('S');
            encode_attr(out, left);
            encode_attr(out, right);
        }
        ConnectionKind::ForeignKey { left, right } => {
            out.push('F');
            encode_attr(out, left);
            encode_attr(out, right);
        }
    }
    let _ = write!(out, "{}(", c.params.len());
    for p in &c.params {
        encode_f64(out, *p);
    }
    out.push(')');
}

fn encode_query(out: &mut String, q: &Query) {
    out.push('Q');
    let _ = write!(out, "{}(", q.tables.len());
    for t in &q.tables {
        encode_str(out, t);
    }
    out.push(')');
    let _ = write!(out, "{}(", q.projection.len());
    for a in &q.projection {
        encode_attr(out, a);
    }
    out.push(')');
    match &q.condition {
        Some(w) => {
            out.push('1');
            encode_f64(out, w.weight);
            encode_node(out, &w.node);
        }
        None => out.push('0'),
    }
}

/// The canonical condition-subtree encoder behind [`window_key`]: an
/// explicit visitor over the full AST with length-prefixed strings and
/// count-prefixed lists, so structurally distinct trees can never share
/// an encoding no matter what bytes their literals contain.
pub fn encode_node(out: &mut String, node: &ConditionNode) {
    match node {
        ConditionNode::Predicate(p) => encode_predicate(out, p),
        ConditionNode::And(children) => {
            out.push('&');
            encode_weighted_list(out, children);
        }
        ConditionNode::Or(children) => {
            out.push('|');
            encode_weighted_list(out, children);
        }
        ConditionNode::Not(inner) => {
            out.push('!');
            encode_node(out, inner);
        }
        ConditionNode::Connection(c) => encode_connection(out, c),
        ConditionNode::Subquery { link, query } => {
            out.push('q');
            match link {
                SubqueryLink::Exists => out.push('E'),
                SubqueryLink::In { outer, inner } => {
                    out.push('I');
                    encode_attr(out, outer);
                    encode_attr(out, inner);
                }
            }
            encode_query(out, query);
        }
    }
}

/// Cache of evaluated top-level windows.
#[derive(Debug, Clone, Default)]
pub struct PipelineCache {
    /// (table name, row count, display budget).
    fingerprint: Option<(String, usize, usize)>,
    entries: Vec<(ConditionNode, PredicateWindow)>,
    /// Windows served from the cache.
    pub hits: usize,
    /// Windows that had to be evaluated.
    pub misses: usize,
}

impl PipelineCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check the cache against the current base relation / budget; clears
    /// stored entries when anything changed. The fingerprint cannot see
    /// every base change (e.g. different join sampling options can yield
    /// same-size tables) — callers must [`PipelineCache::invalidate`]
    /// explicitly in those cases.
    pub fn validate(&mut self, table: &Table, display_budget: usize) {
        let fp = (table.name().to_string(), table.len(), display_budget);
        if self.fingerprint.as_ref() != Some(&fp) {
            self.entries.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// Drop everything (base relation changed in a way the fingerprint
    /// cannot detect).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.fingerprint = None;
    }

    /// Look up a window by its condition subtree and weight (the weight
    /// participates in the §5.2 weight-proportional normalization, so a
    /// weight change invalidates the window).
    pub fn lookup(&mut self, node: &ConditionNode, weight: f64) -> Option<PredicateWindow> {
        let found = self
            .entries
            .iter()
            .find(|(n, e)| n == node && e.weight == weight)
            .map(|(_, e)| e.clone());
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Replace the stored windows with this evaluation round's results.
    pub fn store(&mut self, windows: Vec<(ConditionNode, PredicateWindow)>) {
        self.entries = windows;
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over the cache's lifetime.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::normalize::NormParams;
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn node(threshold: f64) -> ConditionNode {
        ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            CompareOp::Ge,
            threshold,
        ))
    }

    fn eval(n: usize) -> PredicateWindow {
        use visdb_distance::frame::DistanceFrame;
        PredicateWindow::full(
            "t".into(),
            true,
            1.0,
            Arc::new(DistanceFrame::from_options(&vec![Some(0.0); n])),
            Arc::new(DistanceFrame::from_options(&vec![Some(0.0); n])),
            NormParams {
                dmin: 0.0,
                dmax: 0.0,
            },
        )
    }

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn window_keys_cannot_be_forged_by_string_literals() {
        use visdb_query::ast::Weighted;
        let t = table(3);
        let pred = |col: &str, lit: &str| {
            ConditionNode::Predicate(Predicate::compare(AttrRef::new(col), CompareOp::Eq, lit))
        };
        // a single predicate whose literal mimics the *rendered* form of
        // a two-predicate AND must not share a key with the real AND
        let forged = ConditionNode::And(vec![Weighted::unit(pred("s", "a']\n  [t = 'b"))]);
        let genuine = ConditionNode::And(vec![
            Weighted::unit(pred("s", "a")),
            Weighted::unit(pred("t", "b")),
        ]);
        let key = |n: &ConditionNode| window_key("d#1", &t, 10, 1.0, n);
        assert_ne!(key(&forged), key(&genuine));
        // nested weights within epsilon of 1.0 (which the human-oriented
        // printer elides) are part of the key too
        let almost_one = f64::from_bits(1.0f64.to_bits() - 1);
        let w1 = ConditionNode::And(vec![Weighted::new(pred("s", "a"), 1.0)]);
        let w2 = ConditionNode::And(vec![Weighted::new(pred("s", "a"), almost_one)]);
        assert_ne!(key(&w1), key(&w2));
        // identical trees built through different paths share a key
        assert_eq!(key(&genuine), key(&genuine.clone()));
    }

    #[test]
    fn crafted_literals_that_collide_under_naive_formatting_get_distinct_keys() {
        use visdb_query::ast::Weighted;
        let t = table(3);
        let key = |n: &ConditionNode| window_key("d#1", &t, 10, 1.0, n);
        let pred = |col: &str, lit: &str| {
            ConditionNode::Predicate(Predicate::compare(AttrRef::new(col), CompareOp::Eq, lit))
        };

        // Naive `Display` formatting joins fields with separators the
        // fields themselves may contain: a column named "a = 'b'"
        // compared to "c" renders exactly like column "a" compared to
        // the crafted literal "b' = 'c" (no escaping in the printer).
        let shifted_left = pred("a = 'b'", "c");
        let shifted_right = pred("a", "b' = 'c");
        if let (ConditionNode::Predicate(l), ConditionNode::Predicate(r)) =
            (&shifted_left, &shifted_right)
        {
            assert_eq!(l.label(), r.label(), "the naive rendering collides");
        }
        assert_ne!(key(&shifted_left), key(&shifted_right));

        // A literal that embeds the canonical encoder's own length
        // prefixes and tags cannot splice extra structure into the key:
        // `S5:helloS3:abc` as *one* literal differs from two fields.
        let spliced = pred("s", "hello3:abc");
        let two = ConditionNode::And(vec![
            Weighted::unit(pred("s", "hello")),
            Weighted::unit(pred("s", "abc")),
        ]);
        assert_ne!(key(&spliced), key(&two));

        // Unit-separator bytes in a literal do not leak into the key
        // framing of the scope/table/budget prefix.
        let sep = pred("s", "x\u{1f}y");
        let plain = pred("s", "x");
        assert_ne!(key(&sep), key(&plain));

        // Range vs Compare with identical operands stay distinct, as do
        // empty-vs-missing table qualifiers.
        let range = ConditionNode::Predicate(Predicate::range(AttrRef::new("x"), 1.0, 2.0));
        let cmp =
            ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Eq, 1.0));
        assert_ne!(key(&range), key(&cmp));
        let qualified = ConditionNode::Predicate(Predicate::compare(
            AttrRef::qualified("", "x"),
            CompareOp::Eq,
            1.0,
        ));
        assert_ne!(key(&qualified), key(&cmp));
    }

    #[test]
    fn scope_and_table_name_are_framed_not_joined() {
        // identical concatenations split differently must not collide:
        // (scope "ab", table "T") vs (scope "a", table "bT")
        let mk_table = |name: &str| {
            TableBuilder::new(name, vec![Column::new("x", DataType::Float)])
                .row(vec![Value::Float(0.0)])
                .unwrap()
                .build()
        };
        let n = node(1.0);
        let k1 = window_key("ab", &mk_table("T"), 10, 1.0, &n);
        let k2 = window_key("a", &mk_table("bT"), 10, 1.0, &n);
        assert_ne!(k1, k2);
        // scopes carrying separators, '#' or digit-colon patterns parse
        // back exactly — this is what dataset invalidation matches on
        for scope in ["ramp#1", "a\u{1f}b#2", "7:x#3", ""] {
            let key = window_key(scope, &mk_table("T"), 10, 1.0, &n);
            assert_eq!(key_scope(&key), Some(scope));
        }
        assert_eq!(key_scope("garbage"), None);
        assert_eq!(key_scope("99:short"), None);
    }

    #[test]
    fn lookup_by_structural_equality() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        assert!(c.lookup(&node(5.0), 1.0).is_some());
        assert!(c.lookup(&node(6.0), 1.0).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn fingerprint_changes_clear_entries() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        // same everything: entries survive
        c.validate(&t, 100);
        assert_eq!(c.len(), 1);
        // explicit invalidation: cleared
        c.invalidate();
        assert!(c.is_empty());
        // different budget: cleared
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&t, 200);
        assert!(c.is_empty());
        // different table size: cleared
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&table(4), 200);
        assert!(c.is_empty());
    }
}
