//! Incremental recalculation across query modifications (§6).
//!
//! "Our idea is to retrieve more data than necessary in the beginning and
//! to retrieve only the additional portion of the data that is needed for
//! a slightly modified query later on."
//!
//! At the pipeline level the expensive artefact is the per-window *raw
//! distance vector* (one O(n) pass per predicate — or O(n·m) for
//! subqueries). A slider modification changes exactly one window; the
//! other windows' distances are bit-identical and can be reused. The
//! [`PipelineCache`] stores `(condition subtree, NodeEval)` pairs keyed by
//! structural equality of the subtree, fingerprinted by the base relation
//! and the display budget (nested combining normalizes with the budget,
//! so a budget change invalidates too).

use visdb_query::ast::ConditionNode;
use visdb_storage::Table;

use crate::pipeline::PredicateWindow;

/// Cache of evaluated top-level windows.
#[derive(Debug, Clone, Default)]
pub struct PipelineCache {
    /// (table name, row count, display budget).
    fingerprint: Option<(String, usize, usize)>,
    entries: Vec<(ConditionNode, PredicateWindow)>,
    /// Windows served from the cache.
    pub hits: usize,
    /// Windows that had to be evaluated.
    pub misses: usize,
}

impl PipelineCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check the cache against the current base relation / budget; clears
    /// stored entries when anything changed. The fingerprint cannot see
    /// every base change (e.g. different join sampling options can yield
    /// same-size tables) — callers must [`PipelineCache::invalidate`]
    /// explicitly in those cases.
    pub fn validate(&mut self, table: &Table, display_budget: usize) {
        let fp = (table.name().to_string(), table.len(), display_budget);
        if self.fingerprint.as_ref() != Some(&fp) {
            self.entries.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// Drop everything (base relation changed in a way the fingerprint
    /// cannot detect).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.fingerprint = None;
    }

    /// Look up a window by its condition subtree and weight (the weight
    /// participates in the §5.2 weight-proportional normalization, so a
    /// weight change invalidates the window).
    pub fn lookup(&mut self, node: &ConditionNode, weight: f64) -> Option<PredicateWindow> {
        let found = self
            .entries
            .iter()
            .find(|(n, e)| n == node && e.weight == weight)
            .map(|(_, e)| e.clone());
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Replace the stored windows with this evaluation round's results.
    pub fn store(&mut self, windows: Vec<(ConditionNode, PredicateWindow)>) {
        self.entries = windows;
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over the cache's lifetime.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::normalize::NormParams;
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn node(threshold: f64) -> ConditionNode {
        ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            CompareOp::Ge,
            threshold,
        ))
    }

    fn eval(n: usize) -> PredicateWindow {
        PredicateWindow {
            label: "t".into(),
            signed: true,
            weight: 1.0,
            raw: Arc::new(vec![Some(0.0); n]),
            normalized: Arc::new(vec![Some(0.0); n]),
            norm_params: NormParams {
                dmin: 0.0,
                dmax: 0.0,
            },
        }
    }

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn lookup_by_structural_equality() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        assert!(c.lookup(&node(5.0), 1.0).is_some());
        assert!(c.lookup(&node(6.0), 1.0).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn fingerprint_changes_clear_entries() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        // same everything: entries survive
        c.validate(&t, 100);
        assert_eq!(c.len(), 1);
        // explicit invalidation: cleared
        c.invalidate();
        assert!(c.is_empty());
        // different budget: cleared
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&t, 200);
        assert!(c.is_empty());
        // different table size: cleared
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&table(4), 200);
        assert!(c.is_empty());
    }
}
