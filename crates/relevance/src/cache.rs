//! Incremental recalculation across query modifications (§6).
//!
//! "Our idea is to retrieve more data than necessary in the beginning and
//! to retrieve only the additional portion of the data that is needed for
//! a slightly modified query later on."
//!
//! At the pipeline level the expensive artefact is the per-window *raw
//! distance vector* (one O(n) pass per predicate — or O(n·m) for
//! subqueries). A slider modification changes exactly one window; the
//! other windows' distances are bit-identical and can be reused. The
//! [`PipelineCache`] stores `(condition subtree, NodeEval)` pairs keyed by
//! structural equality of the subtree, fingerprinted by the base relation
//! and the display budget (nested combining normalizes with the budget,
//! so a budget change invalidates too).

use visdb_query::ast::ConditionNode;
use visdb_storage::Table;

use crate::pipeline::PredicateWindow;

/// A cache of evaluated predicate windows shared *across* sessions (and
/// threads) — the cross-session sibling of the per-session
/// [`PipelineCache`]. The serving layer implements this over a bounded
/// LRU map (`visdb_service::WindowCache`), so one user's slider drag
/// leaves every *unchanged* window pre-evaluated for everyone else.
///
/// Implementations must be safe to call concurrently; entries are handed
/// out as cheap [`PredicateWindow`] clones (the heavy vectors are
/// `Arc`-shared).
///
/// Correctness rests on the key ([`window_key`]) covering every input of
/// a window evaluation **except** the distance resolver and the base
/// relation's row *content* — the scope string must therefore uniquely
/// identify the dataset generation, and sessions with a non-default
/// resolver (or sampled cross products) must not share a cache.
pub trait WindowSource: Send + Sync {
    /// Return a previously stored window for this exact key, if any.
    fn lookup(&self, key: &str) -> Option<PredicateWindow>;
    /// Store a freshly evaluated window under its key.
    fn store(&self, key: String, window: PredicateWindow);
}

/// The exact cache key of one predicate-window evaluation: dataset scope
/// (name + generation), base relation identity, row count, display
/// budget (normalization input), window weight, and the condition
/// subtree (structural identity — two sessions building the same
/// subtree through different paths share an entry).
///
/// The subtree is encoded via its derived `Debug` form, which is
/// injective for this purpose: string literals are quote-escaped (a
/// crafted literal cannot forge another tree's encoding), nested weights
/// appear exactly, and floats print in shortest-roundtrip form (all
/// NaNs collide, but every NaN yields identical distances). The
/// human-oriented query *printer* is deliberately not used here — its
/// output elides unit weights and does not escape literals.
pub fn window_key(
    scope: &str,
    table: &Table,
    display_budget: usize,
    weight: f64,
    node: &ConditionNode,
) -> String {
    format!(
        "{scope}\u{1f}{}\u{1f}{}\u{1f}{display_budget}\u{1f}{:016x}\u{1f}{node:?}",
        table.name(),
        table.len(),
        weight.to_bits(),
    )
}

/// Cache of evaluated top-level windows.
#[derive(Debug, Clone, Default)]
pub struct PipelineCache {
    /// (table name, row count, display budget).
    fingerprint: Option<(String, usize, usize)>,
    entries: Vec<(ConditionNode, PredicateWindow)>,
    /// Windows served from the cache.
    pub hits: usize,
    /// Windows that had to be evaluated.
    pub misses: usize,
}

impl PipelineCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check the cache against the current base relation / budget; clears
    /// stored entries when anything changed. The fingerprint cannot see
    /// every base change (e.g. different join sampling options can yield
    /// same-size tables) — callers must [`PipelineCache::invalidate`]
    /// explicitly in those cases.
    pub fn validate(&mut self, table: &Table, display_budget: usize) {
        let fp = (table.name().to_string(), table.len(), display_budget);
        if self.fingerprint.as_ref() != Some(&fp) {
            self.entries.clear();
            self.fingerprint = Some(fp);
        }
    }

    /// Drop everything (base relation changed in a way the fingerprint
    /// cannot detect).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.fingerprint = None;
    }

    /// Look up a window by its condition subtree and weight (the weight
    /// participates in the §5.2 weight-proportional normalization, so a
    /// weight change invalidates the window).
    pub fn lookup(&mut self, node: &ConditionNode, weight: f64) -> Option<PredicateWindow> {
        let found = self
            .entries
            .iter()
            .find(|(n, e)| n == node && e.weight == weight)
            .map(|(_, e)| e.clone());
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Replace the stored windows with this evaluation round's results.
    pub fn store(&mut self, windows: Vec<(ConditionNode, PredicateWindow)>) {
        self.entries = windows;
    }

    /// Number of cached windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over the cache's lifetime.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::normalize::NormParams;
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn node(threshold: f64) -> ConditionNode {
        ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            CompareOp::Ge,
            threshold,
        ))
    }

    fn eval(n: usize) -> PredicateWindow {
        PredicateWindow {
            label: "t".into(),
            signed: true,
            weight: 1.0,
            raw: Arc::new(vec![Some(0.0); n]),
            normalized: Arc::new(vec![Some(0.0); n]),
            norm_params: NormParams {
                dmin: 0.0,
                dmax: 0.0,
            },
        }
    }

    fn table(n: usize) -> Table {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn window_keys_cannot_be_forged_by_string_literals() {
        use visdb_query::ast::Weighted;
        let t = table(3);
        let pred = |col: &str, lit: &str| {
            ConditionNode::Predicate(Predicate::compare(AttrRef::new(col), CompareOp::Eq, lit))
        };
        // a single predicate whose literal mimics the *rendered* form of
        // a two-predicate AND must not share a key with the real AND
        let forged = ConditionNode::And(vec![Weighted::unit(pred("s", "a']\n  [t = 'b"))]);
        let genuine = ConditionNode::And(vec![
            Weighted::unit(pred("s", "a")),
            Weighted::unit(pred("t", "b")),
        ]);
        let key = |n: &ConditionNode| window_key("d#1", &t, 10, 1.0, n);
        assert_ne!(key(&forged), key(&genuine));
        // nested weights within epsilon of 1.0 (which the human-oriented
        // printer elides) are part of the key too
        let almost_one = f64::from_bits(1.0f64.to_bits() - 1);
        let w1 = ConditionNode::And(vec![Weighted::new(pred("s", "a"), 1.0)]);
        let w2 = ConditionNode::And(vec![Weighted::new(pred("s", "a"), almost_one)]);
        assert_ne!(key(&w1), key(&w2));
        // identical trees built through different paths share a key
        assert_eq!(key(&genuine), key(&genuine.clone()));
    }

    #[test]
    fn lookup_by_structural_equality() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        assert!(c.lookup(&node(5.0), 1.0).is_some());
        assert!(c.lookup(&node(6.0), 1.0).is_none());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn fingerprint_changes_clear_entries() {
        let mut c = PipelineCache::new();
        let t = table(3);
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        // same everything: entries survive
        c.validate(&t, 100);
        assert_eq!(c.len(), 1);
        // explicit invalidation: cleared
        c.invalidate();
        assert!(c.is_empty());
        // different budget: cleared
        c.validate(&t, 100);
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&t, 200);
        assert!(c.is_empty());
        // different table size: cleared
        c.store(vec![(node(5.0), eval(3))]);
        c.validate(&table(4), 200);
        assert!(c.is_empty());
    }
}
