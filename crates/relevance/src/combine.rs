//! Combining normalized distances across predicates (§5.2).
//!
//! "we use e.g. the weighted arithmetic mean for 'AND'-connected condition
//! parts and the weighted geometric mean for 'OR'-connected condition
//! parts":
//!
//! * AND: `dᵢ = Σⱼ wⱼ · dᵢⱼ` — every unfulfilled predicate hurts, in
//!   proportion to its weight; the result is 0 only if *all* parts are 0.
//! * OR: `dᵢ = Πⱼ dᵢⱼ^wⱼ` — a single fulfilled part (distance 0) zeroes
//!   the product, exactly matching OR semantics; far misses multiply up.
//!
//! Undefined (`None`) children:
//! * under AND the item's combined distance is undefined (we cannot bound
//!   how bad the missing part is),
//! * under OR a missing part simply cannot help — it contributes the
//!   maximum normalized distance; only if *all* parts are undefined is
//!   the result undefined.
//!
//! Inputs are expected to be normalized to `[0, NORM_MAX]`
//! ([`crate::normalize`]); outputs are *not* re-normalized here — the
//! caller normalizes "before a calculated combined distance is used as a
//! parameter for combining other distances".

use visdb_distance::frame::{DistanceFrame, FrameStats};
use visdb_types::{Error, Result};

use crate::normalize::NORM_MAX;

fn check<C: AsRef<[Option<f64>]>>(children: &[C], weights: &[f64]) -> Result<usize> {
    if children.is_empty() {
        return Err(Error::invalid_query("combine of zero children"));
    }
    if children.len() != weights.len() {
        return Err(Error::Internal(format!(
            "{} children but {} weights",
            children.len(),
            weights.len()
        )));
    }
    let n = children[0].as_ref().len();
    if children.iter().any(|c| c.as_ref().len() != n) {
        return Err(Error::Internal("ragged child distance vectors".into()));
    }
    Ok(n)
}

/// One row of the weighted arithmetic mean (`AND`): the per-row kernel
/// shared by [`combine_and`] and the pipeline's fused chunk walk.
#[inline]
pub fn and_row(vals: &[Option<f64>], weights: &[f64]) -> Option<f64> {
    let mut sum = 0.0;
    for (v, &w) in vals.iter().zip(weights) {
        match v {
            Some(d) => sum += w * d,
            None => return None,
        }
    }
    Some(sum)
}

/// One row of the weighted geometric mean (`OR`): the per-row kernel
/// shared by [`combine_or`] and the pipeline's fused chunk walk.
#[inline]
pub fn or_row(vals: &[Option<f64>], weights: &[f64]) -> Option<f64> {
    let mut prod = 1.0f64;
    let mut any_defined = false;
    for (v, &w) in vals.iter().zip(weights) {
        let d = match v {
            Some(d) => {
                any_defined = true;
                *d
            }
            None => NORM_MAX, // an undefined part cannot help an OR
        };
        if w == 0.0 {
            continue;
        }
        prod *= d.powf(w);
        if prod == 0.0 {
            break;
        }
    }
    if any_defined {
        Some(prod)
    } else {
        None
    }
}

/// Weighted arithmetic mean — `AND` semantics.
pub fn combine_and<C: AsRef<[Option<f64>]>>(
    children: &[C],
    weights: &[f64],
) -> Result<Vec<Option<f64>>> {
    let n = check(children, weights)?;
    let mut row = vec![None; children.len()];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        for (slot, c) in row.iter_mut().zip(children) {
            *slot = c.as_ref()[i];
        }
        out.push(and_row(&row, weights));
    }
    Ok(out)
}

/// Weighted geometric mean — `OR` semantics.
///
/// `0^0` (zero distance, zero weight) is defined as 1 (no influence), so a
/// weightless fulfilled part neither helps nor hurts.
pub fn combine_or<C: AsRef<[Option<f64>]>>(
    children: &[C],
    weights: &[f64],
) -> Result<Vec<Option<f64>>> {
    let n = check(children, weights)?;
    let mut row = vec![None; children.len()];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        for (slot, c) in row.iter_mut().zip(children) {
            *slot = c.as_ref()[i];
        }
        out.push(or_row(&row, weights));
    }
    Ok(out)
}

fn check_frames(children: &[&DistanceFrame], weights: &[f64]) -> Result<usize> {
    if children.is_empty() {
        return Err(Error::invalid_query("combine of zero children"));
    }
    if children.len() != weights.len() {
        return Err(Error::Internal(format!(
            "{} children but {} weights",
            children.len(),
            weights.len()
        )));
    }
    let n = children[0].len();
    if children.iter().any(|c| c.len() != n) {
        return Err(Error::Internal("ragged child distance frames".into()));
    }
    Ok(n)
}

/// Branchless slice form of the weighted arithmetic mean (`AND`): one
/// child-outer pass per child over packed `(values, validity)` buffers.
/// The accumulator takes `w · v` unconditionally — undefined rows carry
/// the canonical `0.0`, and whatever they contribute only ever reaches
/// rows the intersected mask has already cleared — while the output mask
/// is the plain byte-AND of the child masks, which the autovectorizer
/// turns into wide integer ops. Accumulation runs in the same child
/// order as [`and_row`] starting from `0.0`, so fully-defined rows are
/// bit-identical to the per-row reference.
pub fn combine_and_slices(
    children: &[(&[f64], &[bool])],
    weights: &[f64],
    out_vals: &mut [f64],
    out_mask: &mut [bool],
) {
    use visdb_distance::lanes::select;
    debug_assert_eq!(children.len(), weights.len());
    out_vals.fill(0.0);
    out_mask.fill(true);
    for (&(v, m), &w) in children.iter().zip(weights) {
        debug_assert_eq!(v.len(), out_vals.len());
        debug_assert_eq!(m.len(), out_vals.len());
        for (((ov, om), &d), &ok) in out_vals.iter_mut().zip(out_mask.iter_mut()).zip(v).zip(m) {
            *ov += w * d;
            *om &= ok;
        }
    }
    for (ov, &om) in out_vals.iter_mut().zip(out_mask.iter()) {
        *ov = select(om, *ov, 0.0);
    }
}

/// Branchless slice form of the weighted geometric mean (`OR`).
///
/// Two [`or_row`] behaviours need care:
///
/// * *Undefined propagation*: a row is defined when **any** child is —
///   the byte-OR of the child masks, independent of [`or_row`]'s early
///   `break`, because with non-negative weights the product can only
///   reach `0.0` through a defined child (the `NORM_MAX` substitute for
///   undefined children satisfies `255^w >= 1`), and that child already
///   set `any_defined`.
/// * *The early `break` itself*: once the product is `0.0` the reference
///   stops multiplying, which matters when a later factor is `+inf`
///   (`0 · inf = NaN`). The kernel mirrors it with a freeze —
///   `prod = select(prod == 0.0, prod, prod · f)` — an exact branchless
///   restatement.
///
/// A **negative** weight breaks the first argument (`255^w` underflows
/// toward `0`, so the reference can break out *before* a later child
/// proves the row defined), so that case falls back to the per-row
/// reference loop; negative weights never reach the hot path anyway.
pub fn combine_or_slices(
    children: &[(&[f64], &[bool])],
    weights: &[f64],
    out_vals: &mut [f64],
    out_mask: &mut [bool],
) {
    use visdb_distance::lanes::select;
    debug_assert_eq!(children.len(), weights.len());
    if weights.iter().any(|&w| w < 0.0) {
        let mut row: Vec<Option<f64>> = vec![None; children.len()];
        for i in 0..out_vals.len() {
            for (slot, &(v, m)) in row.iter_mut().zip(children) {
                *slot = m[i].then_some(v[i]);
            }
            let d = or_row(&row, weights);
            out_vals[i] = d.unwrap_or(0.0);
            out_mask[i] = d.is_some();
        }
        return;
    }
    out_vals.fill(1.0);
    out_mask.fill(false);
    for (&(v, m), &w) in children.iter().zip(weights) {
        debug_assert_eq!(v.len(), out_vals.len());
        debug_assert_eq!(m.len(), out_vals.len());
        if w == 0.0 {
            // a weightless part contributes definedness but no factor
            for (om, &ok) in out_mask.iter_mut().zip(m) {
                *om |= ok;
            }
            continue;
        }
        for (((ov, om), &d), &ok) in out_vals.iter_mut().zip(out_mask.iter_mut()).zip(v).zip(m) {
            *om |= ok;
            let f = select(ok, d, NORM_MAX).powf(w);
            *ov = select(*ov == 0.0, *ov, *ov * f);
        }
    }
    for (ov, &om) in out_vals.iter_mut().zip(out_mask.iter()) {
        *ov = select(om, *ov, 0.0);
    }
}

/// [`combine_and`] over packed frames, with fused stats — the branchless
/// [`combine_and_slices`] kernel plus the 4-lane [`FrameStats::of_slice`]
/// reduction over the buffers it just wrote.
pub fn combine_and_frames(
    children: &[&DistanceFrame],
    weights: &[f64],
) -> Result<(DistanceFrame, FrameStats)> {
    let n = check_frames(children, weights)?;
    let views: Vec<(&[f64], &[bool])> = children
        .iter()
        .map(|c| (c.values(), c.validity().as_slice()))
        .collect();
    let mut out = DistanceFrame::undefined(n);
    let (vals, mask) = out.parts_mut();
    combine_and_slices(&views, weights, vals, mask);
    let stats = FrameStats::of_slice(vals, mask);
    Ok((out, stats))
}

/// [`combine_or`] over packed frames, with fused stats — the branchless
/// [`combine_or_slices`] kernel plus the 4-lane [`FrameStats::of_slice`]
/// reduction.
pub fn combine_or_frames(
    children: &[&DistanceFrame],
    weights: &[f64],
) -> Result<(DistanceFrame, FrameStats)> {
    let n = check_frames(children, weights)?;
    let views: Vec<(&[f64], &[bool])> = children
        .iter()
        .map(|c| (c.values(), c.validity().as_slice()))
        .collect();
    let mut out = DistanceFrame::undefined(n);
    let (vals, mask) = out.parts_mut();
    combine_or_slices(&views, weights, vals, mask);
    let stats = FrameStats::of_slice(vals, mask);
    Ok((out, stats))
}

/// Ablation comparators (DESIGN.md decision 1): fuzzy-logic `min`/`max`
/// combiners, benchmarked against the paper's means.
pub mod ablation {
    use visdb_types::Result;

    use super::check;

    /// Fuzzy AND: the worst (largest) child distance.
    pub fn combine_and_max<C: AsRef<[Option<f64>]>>(
        children: &[C],
        weights: &[f64],
    ) -> Result<Vec<Option<f64>>> {
        let n = check(children, weights)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut best: Option<f64> = Some(f64::NEG_INFINITY);
            for (c, &w) in children.iter().zip(weights) {
                match (best, c.as_ref()[i]) {
                    (Some(b), Some(d)) => best = Some(b.max(w * d)),
                    _ => {
                        best = None;
                        break;
                    }
                }
            }
            out.push(best.filter(|b| b.is_finite()));
        }
        Ok(out)
    }

    /// Fuzzy OR: the best (smallest) child distance.
    pub fn combine_or_min<C: AsRef<[Option<f64>]>>(
        children: &[C],
        weights: &[f64],
    ) -> Result<Vec<Option<f64>>> {
        let n = check(children, weights)?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut best: Option<f64> = None;
            for (c, &w) in children.iter().zip(weights) {
                if let Some(d) = c.as_ref()[i] {
                    let v = w * d;
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                }
            }
            out.push(best);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(xs: &[f64]) -> Vec<Option<f64>> {
        xs.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn and_is_weighted_sum() {
        let out = combine_and(&[v(&[0.0, 100.0]), v(&[50.0, 200.0])], &[1.0, 0.5]).unwrap();
        assert_eq!(out, vec![Some(25.0), Some(200.0)]);
    }

    #[test]
    fn and_zero_only_when_all_zero() {
        let out = combine_and(&[v(&[0.0]), v(&[0.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(0.0)]);
        let out = combine_and(&[v(&[0.0]), v(&[1.0])], &[1.0, 1.0]).unwrap();
        assert!(out[0].unwrap() > 0.0);
    }

    #[test]
    fn or_zero_when_any_zero() {
        let out = combine_or(&[v(&[0.0]), v(&[255.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(0.0)]);
    }

    #[test]
    fn or_is_weighted_product() {
        let out = combine_or(&[v(&[4.0]), v(&[9.0])], &[0.5, 0.5]).unwrap();
        assert!((out[0].unwrap() - 6.0).abs() < 1e-12); // sqrt(4)*sqrt(9)
    }

    #[test]
    fn and_propagates_none() {
        let out = combine_and(&[vec![None], v(&[1.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn or_substitutes_max_for_none() {
        // one undefined part, one fulfilled part: still fulfilled
        let out = combine_or(&[vec![None], v(&[0.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(0.0)]);
        // all undefined: undefined
        let out = combine_or(&[vec![None], vec![None]], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn zero_weight_or_child_has_no_influence() {
        let out = combine_or(&[v(&[0.0]), v(&[100.0])], &[0.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(100.0)]);
    }

    #[test]
    fn shape_errors() {
        assert!(combine_and(&[] as &[Vec<Option<f64>>], &[]).is_err());
        assert!(combine_and(&[v(&[1.0])], &[1.0, 2.0]).is_err());
        assert!(combine_and(&[v(&[1.0]), v(&[1.0, 2.0])], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn frame_combiners_match_option_combiners() {
        let a = vec![Some(0.0), Some(100.0), None, Some(30.0)];
        let b = vec![Some(50.0), None, None, Some(0.0)];
        let fa = DistanceFrame::from_options(&a);
        let fb = DistanceFrame::from_options(&b);
        let weights = [1.0, 0.5];
        let (and_f, and_s) = combine_and_frames(&[&fa, &fb], &weights).unwrap();
        assert_eq!(
            and_f.to_options(),
            combine_and(&[a.clone(), b.clone()], &weights).unwrap()
        );
        assert_eq!(and_s.defined, 2);
        assert_eq!(and_s.min_abs, 25.0);
        let (or_f, _) = combine_or_frames(&[&fa, &fb], &weights).unwrap();
        assert_eq!(or_f.to_options(), combine_or(&[a, b], &weights).unwrap());
        // shape errors carry over
        assert!(combine_and_frames(&[], &[]).is_err());
        assert!(combine_and_frames(&[&fa], &[1.0, 2.0]).is_err());
        let short = DistanceFrame::from_options(&[Some(1.0)]);
        assert!(combine_and_frames(&[&fa, &short], &weights).is_err());
    }

    #[test]
    fn ablation_min_max() {
        let out =
            ablation::combine_and_max(&[v(&[10.0, 0.0]), v(&[5.0, 0.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(10.0), Some(0.0)]);
        let out = ablation::combine_or_min(&[v(&[10.0]), vec![None]], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![Some(10.0)]);
    }

    proptest! {
        /// AND monotonicity: increasing any child distance never decreases
        /// the combined distance.
        #[test]
        fn prop_and_monotone(d1 in 0.0f64..255.0, d2 in 0.0f64..255.0,
                             bump in 0.0f64..50.0, w1 in 0.01f64..1.0, w2 in 0.01f64..1.0) {
            let a = combine_and(&[v(&[d1]), v(&[d2])], &[w1, w2]).unwrap()[0].unwrap();
            let b = combine_and(&[v(&[d1 + bump]), v(&[d2])], &[w1, w2]).unwrap()[0].unwrap();
            prop_assert!(b >= a);
        }

        /// OR absorbing zero: any fulfilled part makes the item an exact
        /// OR answer regardless of the other parts.
        #[test]
        fn prop_or_absorbs_zero(d in 0.0f64..255.0, w1 in 0.01f64..1.0, w2 in 0.01f64..1.0) {
            let out = combine_or(&[v(&[0.0]), v(&[d])], &[w1, w2]).unwrap();
            prop_assert_eq!(out[0], Some(0.0));
        }

        /// Both combiners agree on the fully-fulfilled row.
        #[test]
        fn prop_fulfilled_row_is_zero(w1 in 0.01f64..1.0, w2 in 0.01f64..1.0) {
            let and = combine_and(&[v(&[0.0]), v(&[0.0])], &[w1, w2]).unwrap();
            let or = combine_or(&[v(&[0.0]), v(&[0.0])], &[w1, w2]).unwrap();
            prop_assert_eq!(and[0], Some(0.0));
            prop_assert_eq!(or[0], Some(0.0));
        }
    }
}
