//! The multi-peak gap heuristic of §5.1.
//!
//! "Depending on the distribution of values, in many cases it will be
//! better to present less data items, especially if the density function
//! of the distance values has multiple peaks. ... for each
//! `xi ∈ {x_rmin, ..., x_rmax}` we calculate `sᵢ = Σ_{j=i−z}^{i+z}
//! |dᵢ − dⱼ|`, with z being a heuristically determined data dependent
//! constant ... we choose the data item with the highest sᵢ to be the
//! last data item that is displayed."
//!
//! The sᵢ statistic is a local *spread* measure: it peaks where the sorted
//! distance values jump (the gap between the near group and the far group
//! in fig 2b). The paper notes the naive cost `z·(rmax−rmin)` "can be
//! easily optimized to ... (z + rmax − rmin) by successively calculating
//! the sᵢ" — [`gap_cutoff`] implements that incremental version and
//! [`gap_cutoff_naive`] the direct definition (kept for testing).

use visdb_types::{Error, Result};

fn check_params(sorted: &[f64], rmin: usize, rmax: usize, z: usize) -> Result<()> {
    if sorted.is_empty() {
        return Err(Error::invalid_parameter("sorted", "empty distance vector"));
    }
    if rmin > rmax || rmax >= sorted.len() {
        return Err(Error::invalid_parameter(
            "rmin/rmax",
            format!(
                "need rmin <= rmax < n, got rmin={rmin} rmax={rmax} n={}",
                sorted.len()
            ),
        ));
    }
    if z < 2 {
        return Err(Error::invalid_parameter(
            "z",
            "the paper requires 2 < z << rmax - rmin; z >= 2 enforced",
        ));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "distances must be sorted ascending"
    );
    Ok(())
}

/// Window sum `sᵢ = Σ_{j=i−z}^{i+z} |dᵢ − dⱼ|` with the window clipped to
/// the array bounds.
fn s_at(sorted: &[f64], i: usize, z: usize) -> f64 {
    let lo = i.saturating_sub(z);
    let hi = (i + z).min(sorted.len() - 1);
    let di = sorted[i];
    sorted[lo..=hi].iter().map(|dj| (di - dj).abs()).sum()
}

/// Both implementations cut at the *start* of the near-maximal plateau:
/// around a gap, every index whose window straddles the jump has almost
/// the same spread (the far side slightly more, since far groups tend to
/// be wider). Taking the first index within `PLATEAU` of the maximum puts
/// the cut on the *near* side of the gap, so the display — and therefore
/// the normalization range — ends before the far group begins.
const PLATEAU: f64 = 0.95;

fn plateau_start(s_values: &[f64], rmin: usize) -> usize {
    use visdb_distance::lanes::LANES;
    // max is a set operation, so the 4-accumulator restructure is
    // bit-identical to the sequential fold regardless of lane remainder
    // (the incremental *sums* feeding s_values stay strictly sequential:
    // their FP order is the algorithm)
    let blocks = s_values.len() / LANES * LANES;
    let mut lane_max = [f64::NEG_INFINITY; LANES];
    for block in s_values[..blocks].chunks_exact(LANES) {
        for (m, &s) in lane_max.iter_mut().zip(block) {
            *m = m.max(s);
        }
    }
    let mut max = lane_max.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    for &s in &s_values[blocks..] {
        max = max.max(s);
    }
    let threshold = max * PLATEAU;
    for (k, &s) in s_values.iter().enumerate() {
        // handles max <= 0 too (all-equal distances): first index wins
        if s >= threshold {
            return rmin + k;
        }
    }
    rmin
}

/// Direct O(z·(rmax−rmin)) evaluation of the cutoff. Returns the index
/// (into `sorted`) of the last item to display.
pub fn gap_cutoff_naive(sorted: &[f64], rmin: usize, rmax: usize, z: usize) -> Result<usize> {
    check_params(sorted, rmin, rmax, z)?;
    let s_values: Vec<f64> = (rmin..=rmax).map(|i| s_at(sorted, i, z)).collect();
    Ok(plateau_start(&s_values, rmin))
}

/// Incremental O(z + rmax − rmin) evaluation (§5.1's optimization).
///
/// Because the values are sorted, the window sum splits into a left part
/// `Σ_{j<i} (dᵢ−dⱼ)` and right part `Σ_{j>i} (dⱼ−dᵢ)`; moving `i → i+1`
/// updates both parts with O(1) work given running window sums.
pub fn gap_cutoff(sorted: &[f64], rmin: usize, rmax: usize, z: usize) -> Result<usize> {
    check_params(sorted, rmin, rmax, z)?;
    let n = sorted.len();
    let win_lo = |i: usize| i.saturating_sub(z);
    let win_hi = |i: usize| (i + z).min(n - 1);

    // running sums of the window halves for the current i
    let mut i = rmin;
    let mut left_sum: f64 = sorted[win_lo(i)..i].iter().sum(); // Σ d_j, j in [lo, i)
    let mut left_cnt = i - win_lo(i);
    let mut right_sum: f64 = sorted[i + 1..=win_hi(i)].iter().sum(); // Σ d_j, j in (i, hi]
    let mut right_cnt = win_hi(i) - i;

    let s_of = |di: f64, ls: f64, lc: usize, rs: f64, rc: usize| {
        (di * lc as f64 - ls) + (rs - di * rc as f64)
    };

    let mut s_values = Vec::with_capacity(rmax - rmin + 1);
    s_values.push(s_of(sorted[i], left_sum, left_cnt, right_sum, right_cnt));

    while i < rmax {
        // advance i -> i+1
        let new_i = i + 1;
        // element i moves from "center" into the left half
        left_sum += sorted[i];
        left_cnt += 1;
        // element new_i leaves the right half (it becomes the center)
        right_sum -= sorted[new_i];
        right_cnt -= 1;
        // left window lower bound may advance
        let old_lo = win_lo(i);
        let new_lo = win_lo(new_i);
        if new_lo > old_lo {
            left_sum -= sorted[old_lo];
            left_cnt -= 1;
        }
        // right window upper bound may advance
        let old_hi = win_hi(i);
        let new_hi = win_hi(new_i);
        if new_hi > old_hi {
            right_sum += sorted[new_hi];
            right_cnt += 1;
        }
        i = new_i;
        s_values.push(s_of(sorted[i], left_sum, left_cnt, right_sum, right_cnt));
    }
    Ok(plateau_start(&s_values, rmin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Fig 2b: two well-separated groups; the cutoff should land at the
    /// edge of the gap so only the lower group is displayed.
    #[test]
    fn cutoff_finds_the_gap() {
        let mut d: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect(); // 0..5
        d.extend((0..50).map(|i| 100.0 + i as f64 * 0.1)); // 100..105
        let cut = gap_cutoff(&d, 10, 90, 5).unwrap();
        // s_i peaks for items adjacent to the jump (indices 45..54)
        assert!((45..=54).contains(&cut), "cut={cut}");
    }

    /// Fig 2a: a unimodal smooth distribution has no dominant gap; the
    /// heuristic still returns something inside [rmin, rmax].
    #[test]
    fn cutoff_stays_in_bounds_for_smooth_data() {
        let d: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).powi(2)).collect();
        let cut = gap_cutoff(&d, 20, 80, 4).unwrap();
        assert!((20..=80).contains(&cut));
    }

    #[test]
    fn incremental_matches_naive() {
        let d: Vec<f64> = (0..200)
            .map(|i| {
                if i < 120 {
                    i as f64
                } else {
                    1000.0 + i as f64 * 2.0
                }
            })
            .collect();
        for z in [2, 3, 7, 20] {
            assert_eq!(
                gap_cutoff(&d, 5, 190, z).unwrap(),
                gap_cutoff_naive(&d, 5, 190, z).unwrap(),
                "z={z}"
            );
        }
    }

    #[test]
    fn parameter_validation() {
        let d = vec![1.0, 2.0, 3.0];
        assert!(gap_cutoff(&d, 0, 5, 2).is_err()); // rmax out of range
        assert!(gap_cutoff(&d, 2, 1, 2).is_err()); // rmin > rmax
        assert!(gap_cutoff(&d, 0, 2, 1).is_err()); // z too small
        assert!(gap_cutoff(&[], 0, 0, 2).is_err());
    }

    #[test]
    fn constant_distances_pick_rmin() {
        let d = vec![5.0; 50];
        // all s_i are 0; the first index wins
        assert_eq!(gap_cutoff(&d, 10, 40, 3).unwrap(), 10);
    }

    proptest! {
        /// The O(z+r) incremental algorithm agrees with the naive
        /// definition on arbitrary sorted inputs.
        #[test]
        fn prop_incremental_equals_naive(
            mut values in prop::collection::vec(0.0f64..1e6, 10..200),
            z in 2usize..20,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = values.len();
            let rmin = n / 10;
            let rmax = n - 1 - n / 10;
            prop_assume!(rmin <= rmax);
            let a = gap_cutoff(&values, rmin, rmax, z).unwrap();
            let b = gap_cutoff_naive(&values, rmin, rmax, z).unwrap();
            // both must land on the near-maximal plateau; FP noise in the
            // incremental sums may shift the plateau entry by an index
            let max_s = (rmin..=rmax)
                .map(|i| super::s_at(&values, i, z))
                .fold(f64::NEG_INFINITY, f64::max);
            for (name, idx) in [("incremental", a), ("naive", b)] {
                let s = super::s_at(&values, idx, z);
                prop_assert!(
                    s >= super::PLATEAU * max_s - 1e-6 * max_s.abs().max(1.0),
                    "{name} cut {idx} has s={s}, max={max_s}"
                );
            }
            prop_assert!(a.abs_diff(b) <= 1,
                "plateau starts disagree: incremental {a}, naive {b}");
        }
    }
}
