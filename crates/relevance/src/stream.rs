//! Streaming fused execution: the zero-materialization pipeline mode.
//!
//! The materialized pipeline is memory-bound at scale: at n = 1M the
//! distance kernels cost ~6 ms while reading and writing the `#sp + 1`
//! full-size `DistanceFrame` intermediates costs ~45 ms
//! (`BENCH_pipeline.json` phase breakdown). This module removes those
//! intermediates entirely. The condition tree is compiled into a small
//! arena of streamable nodes ([`compile`]) and executed in **two fused
//! chunk walks**:
//!
//! 1. **Stats pass(es)** — one walk per tree level (one walk for the
//!    common flat AND/OR of leaf predicates): every chunk recomputes the
//!    level's distances in cache-resident scratch buffers and keeps only
//!    the fused [`FrameStats`] plus — when the §5.2 weight-proportional
//!    fit needs the k-th smallest `|d|` — a bounded per-chunk selection
//!    pool with a **shared atomic threshold**: once any chunk has
//!    gathered `k` candidates, its k-th smallest becomes a global bound
//!    and later chunks skip every value at or above it. The merged pool
//!    provably contains the value-multiset of the global k smallest, so
//!    the fitted `dmax` is bit-identical to the materialized
//!    [`crate::normalize::fit_frame`].
//! 2. **Combine pass** — one walk recomputing each top window's
//!    distances, normalizing and root-combining them *in registers* per
//!    row (the identical float ops of the materialized fused walk), and
//!    streaming only the combined raw distance into the output vector,
//!    together with the combined reduction stats and each window's
//!    full-relation exact-answer count.
//!
//! Recomputing distances is the deliberate trade: a kernel pass over the
//! native column buffers is far cheaper than materializing, re-reading
//! and re-writing full-size frames. Ranking then reuses the exact
//! top-k/merge machinery of the materialized path, and per-predicate
//! windows are assembled **lazily** at the displayed row ids only
//! (§4.2's windows are position-coherent with the overall window, so
//! only displayed rows are ever read) — per-query intermediates shrink
//! from `(#sp + 1) · 9n` bytes toward `O(k · #sp)` beyond the combined
//! output itself, which is also the payload shape multi-box sharding
//! wants to ship.
//!
//! Every float op on this path is the same op the materialized
//! vectorized path (and through it the scalar reference) performs, in
//! the same order per row — outputs are **bit-identical** across all
//! three, property-tested in `tests/properties.rs`. String and
//! matrix/ordinal predicates stream through a compile-time
//! dictionary-gather table ([`Kind::Gather`]), and §4.4 connections
//! stream as row-local functions of the cross-product base relation
//! ([`Kind::Connection`]). Shapes the compiler cannot stream
//! (subqueries — their approximate join evaluates the *inner* relation,
//! not a per-row function of the base relation — and non-invertible
//! negations) and the two-sided display policy (whose quantile band
//! needs a full window frame) fall back to the materialized path at the
//! planner.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use visdb_distance::batch::{self, CompareKernel, NumericKernel};
use visdb_distance::frame::FrameStats;
use visdb_distance::registry::ColumnDistance;
use visdb_distance::{geo, numeric, string, time};
use visdb_query::ast::{ConditionNode, Predicate, PredicateTarget, Weighted};
use visdb_query::connection::{ConnectionKind, ConnectionUse};
use visdb_query::CompareOp;
use visdb_storage::{ColumnData, NumericSlice};
use visdb_types::{Result, Value};

use crate::chunk;
use crate::combine::{and_row, combine_and_slices, combine_or_slices, or_row};
use crate::eval::{
    compare_distance, compare_value_distance, range_distance, range_value_distance, EvalContext,
};
use crate::normalize::{apply_in_place, dmax_of_prefix, fit_k, params_from_max, NormParams};
use crate::pipeline::{
    checkpoint, finalize_relevance, rank_and_select, rank_and_select_partitioned, DisplayPolicy,
    DisplayedWindow, PipelineOutput, PipelineTrace, PredicateWindow, WindowData,
};
use visdb_exec::fault::Phase;

/// The root combinator of the condition tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Root {
    /// A single top-level window (bare predicate at the root).
    Single,
    /// Weighted arithmetic mean over the top windows.
    And,
    /// Weighted geometric mean over the top windows.
    Or,
}

/// One compiled streamable node.
struct Node<'a> {
    kind: Kind<'a>,
    label: String,
    signed: bool,
    /// Weight within the parent (top nodes: the window weight) — the
    /// §5.2 weight-proportional normalization input.
    weight: f64,
    /// Height above the leaves (leaves 0). Nodes at depth `d` get their
    /// stats in stats round `d`, after their children's params exist.
    depth: usize,
}

enum Kind<'a> {
    /// Typed batch kernel over the column's native buffer.
    Kernel {
        col: &'a ColumnData,
        kernel: NumericKernel,
    },
    /// Generic per-row comparison (strings, matrices, geo, bool columns,
    /// distance overrides) — the same per-row function the materialized
    /// fallback path runs.
    Compare {
        col: &'a ColumnData,
        op: CompareOp,
        value: visdb_types::Value,
        cd: ColumnDistance,
    },
    /// Generic per-row range distance.
    Range {
        col: &'a ColumnData,
        low: visdb_types::Value,
        high: visdb_types::Value,
        cd: ColumnDistance,
    },
    /// `AROUND` over a column without a native numeric buffer.
    Around {
        col: &'a ColumnData,
        center: f64,
        deviation: f64,
    },
    /// Dictionary-gather leaf over a string-backed column (string and
    /// matrix/ordinal distances): the predicate was evaluated once per
    /// *distinct* value at compile time — through the exact same
    /// [`compare_value_distance`] / [`range_value_distance`] the
    /// per-tuple reference runs — and each row is one indexed table
    /// load. No per-row [`Value`] clone on the chunk walk.
    Gather {
        codes: &'a [u32],
        col_mask: Option<&'a [bool]>,
        tvals: Vec<f64>,
        tdef: Vec<bool>,
    },
    /// §4.4 connection: both operand columns live in the (cross-product)
    /// base relation, so every kind is a pure per-row function — the
    /// same closures the materialized `EvalContext::eval_connection`
    /// runs.
    Connection(ConnKind<'a>),
    /// Inner `AND`/`OR`: normalize every child with its fitted params,
    /// combine row-wise (§5.2 recursive re-normalization).
    Bool { and: bool, children: Vec<usize> },
}

/// A compiled row-local connection: operand columns resolved once, kind
/// and parameters frozen. `row` is the single evaluation function both
/// the chunk walk and the late window assembly share.
enum ConnKind<'a> {
    Equi {
        lc: &'a ColumnData,
        rc: &'a ColumnData,
        cd: ColumnDistance,
    },
    NonEqui {
        lc: &'a ColumnData,
        rc: &'a ColumnData,
        op: CompareOp,
        cd: ColumnDistance,
    },
    TimeDiff {
        lc: &'a ColumnData,
        rc: &'a ColumnData,
        expected: f64,
    },
    SpatialWithin {
        lc: &'a ColumnData,
        rc: &'a ColumnData,
        radius: f64,
    },
    ForeignKey {
        lc: &'a ColumnData,
        rc: &'a ColumnData,
    },
}

impl ConnKind<'_> {
    /// Signed distance of row `i` — byte-for-byte the per-row closures
    /// of `EvalContext::eval_connection`, so streamed connections are
    /// bit-identical to materialized ones.
    fn row(&self, i: usize) -> Option<f64> {
        match self {
            ConnKind::Equi { lc, rc, cd } => cd.value_distance(&lc.get(i), &rc.get(i)),
            ConnKind::NonEqui { lc, rc, op, cd } => {
                let (a, b) = (lc.get(i), rc.get(i));
                match a.partial_cmp_value(&b) {
                    None => None,
                    Some(ord) if op.eval(ord) => Some(0.0),
                    Some(_) => cd.value_distance(&a, &b),
                }
            }
            ConnKind::TimeDiff { lc, rc, expected } => match (lc.get_f64(i), rc.get_f64(i)) {
                (Some(a), Some(b)) => time::time_diff(a as i64, b as i64, *expected),
                _ => None,
            },
            ConnKind::SpatialWithin { lc, rc, radius } => {
                match (lc.get_location(i), rc.get_location(i)) {
                    (Some(a), Some(b)) => geo::within_m(a, b, *radius),
                    _ => None,
                }
            }
            ConnKind::ForeignKey { lc, rc } => {
                if lc.get(i) == rc.get(i) && !lc.get(i).is_null() {
                    Some(0.0)
                } else {
                    None
                }
            }
        }
    }
}

/// A compiled streaming plan: the node arena, the top-level window node
/// ids (in window order) and the root combinator.
pub(crate) struct StreamPlan<'a> {
    nodes: Vec<Node<'a>>,
    tops: Vec<usize>,
    root: Root,
    depth: usize,
}

/// Compile the condition tree into a streamable plan, or `None` when any
/// node cannot be streamed (subqueries, non-invertible negations,
/// unresolvable columns, empty boolean nodes) — the caller then falls
/// back to the materialized path, which reproduces any error the
/// unstreamable shape would raise.
pub(crate) fn compile<'a>(
    ctx: &EvalContext<'a>,
    cond: &Weighted,
    top: &[&Weighted],
) -> Option<StreamPlan<'a>> {
    let root = match &cond.node {
        ConditionNode::And(_) => Root::And,
        ConditionNode::Or(_) => Root::Or,
        _ => Root::Single,
    };
    let mut nodes = Vec::new();
    let tops: Vec<usize> = top
        .iter()
        .map(|w| compile_node(ctx, &w.node, w.weight, &mut nodes))
        .collect::<Option<_>>()?;
    if tops.is_empty() {
        // an empty root AND/OR errors in the combine layer; take the
        // materialized path so the error is identical
        return None;
    }
    let depth = tops.iter().map(|&t| nodes[t].depth).max().unwrap_or(0);
    Some(StreamPlan {
        nodes,
        tops,
        root,
        depth,
    })
}

fn compile_node<'a>(
    ctx: &EvalContext<'a>,
    node: &ConditionNode,
    weight: f64,
    nodes: &mut Vec<Node<'a>>,
) -> Option<usize> {
    match node {
        ConditionNode::Predicate(p) => compile_predicate(ctx, p, weight, None, nodes),
        ConditionNode::Not(inner) => {
            // §4.4 invertible negation: flip the comparison, keep graded
            // distances (mirrors `EvalContext::eval_not`); every other
            // negation shape falls back to the materialized path.
            if let ConditionNode::Predicate(p) = &**inner {
                if let PredicateTarget::Compare { op, value } = &p.target {
                    let flipped = Predicate {
                        attr: p.attr.clone(),
                        target: PredicateTarget::Compare {
                            op: op.inverted(),
                            value: value.clone(),
                        },
                    };
                    let label = format!("NOT {}", p.label());
                    return compile_predicate(ctx, &flipped, weight, Some(label), nodes);
                }
            }
            None
        }
        ConditionNode::And(children) | ConditionNode::Or(children) => {
            if children.is_empty() {
                return None;
            }
            let and = matches!(node, ConditionNode::And(_));
            let ids: Vec<usize> = children
                .iter()
                .map(|w| compile_node(ctx, &w.node, w.weight, nodes))
                .collect::<Option<_>>()?;
            let depth = 1 + ids.iter().map(|&i| nodes[i].depth).max().unwrap_or(0);
            nodes.push(Node {
                kind: Kind::Bool { and, children: ids },
                label: if and { "AND" } else { "OR" }.to_string(),
                signed: false,
                weight,
                depth,
            });
            Some(nodes.len() - 1)
        }
        ConditionNode::Connection(c) => compile_connection(ctx, c, weight, nodes),
        // the approximate join evaluates the *inner* relation's condition
        // over its own table — not a per-row function of the base
        // relation — so subqueries stay on the materialized path
        ConditionNode::Subquery { .. } => None,
    }
}

/// Compile a §4.4 connection into a row-local node. Column resolution
/// errors decline (`None`) so the materialized path raises the identical
/// error.
fn compile_connection<'a>(
    ctx: &EvalContext<'a>,
    c: &ConnectionUse,
    weight: f64,
    nodes: &mut Vec<Node<'a>>,
) -> Option<usize> {
    let (left_attr, right_attr) = c.def.kind.attrs();
    let (lc, ldt, lcl, _) = ctx.column(left_attr).ok()?;
    let (rc, ..) = ctx.column(right_attr).ok()?;
    let (conn, signed) = match &c.def.kind {
        ConnectionKind::Equi { .. } => {
            let cd = ctx.distance_for(left_attr, ldt, lcl);
            let signed = cd.is_signed();
            (ConnKind::Equi { lc, rc, cd }, signed)
        }
        ConnectionKind::NonEqui { op, .. } => {
            let cd = ctx.distance_for(left_attr, ldt, lcl);
            let signed = cd.is_signed();
            (
                ConnKind::NonEqui {
                    lc,
                    rc,
                    op: *op,
                    cd,
                },
                signed,
            )
        }
        ConnectionKind::TimeDiff { .. } => {
            let expected = *c.params.first().unwrap_or(&0.0);
            (ConnKind::TimeDiff { lc, rc, expected }, true)
        }
        ConnectionKind::SpatialWithin { .. } => {
            let radius = *c.params.first().unwrap_or(&0.0);
            (ConnKind::SpatialWithin { lc, rc, radius }, false)
        }
        ConnectionKind::ForeignKey { .. } => (ConnKind::ForeignKey { lc, rc }, false),
    };
    nodes.push(Node {
        kind: Kind::Connection(conn),
        label: c.label(),
        signed,
        weight,
        depth: 0,
    });
    Some(nodes.len() - 1)
}

/// Compile-time half of the dictionary-gather fast path — the streaming
/// sibling of `EvalContext::gathered_predicate_stats`: evaluate the
/// predicate once per distinct string value into a code-indexed table.
/// `None` when inapplicable (non-string column, numeric/geo distances,
/// `Around` targets, which must keep their error path).
fn compile_gather<'a>(
    col: &'a ColumnData,
    cd: &ColumnDistance,
    target: &PredicateTarget,
) -> Option<Kind<'a>> {
    if !matches!(cd, ColumnDistance::String(_) | ColumnDistance::Matrix(_))
        || matches!(target, PredicateTarget::Around { .. })
    {
        return None;
    }
    let (sc, col_mask) = col.str_column()?;
    let dict = sc.dict();
    let (tvals, tdef) = string::code_table(dict.values().iter().map(String::as_str), |u| {
        let v = Value::Str(u.to_owned());
        match target {
            PredicateTarget::Compare { op, value } => compare_value_distance(&v, *op, value, cd),
            PredicateTarget::Range { low, high } => range_value_distance(&v, low, high, cd),
            PredicateTarget::Around { .. } => unreachable!("filtered above"),
        }
    });
    Some(Kind::Gather {
        codes: dict.codes(),
        col_mask,
        tvals,
        tdef,
    })
}

fn compile_predicate<'a>(
    ctx: &EvalContext<'a>,
    p: &Predicate,
    weight: f64,
    label_override: Option<String>,
    nodes: &mut Vec<Node<'a>>,
) -> Option<usize> {
    let (col, dt, class, _) = ctx.column(&p.attr).ok()?;
    let cd = ctx.distance_for(&p.attr, dt, class);
    let signed = cd.is_signed();
    let label = label_override.unwrap_or_else(|| p.label());
    let kind = match &p.target {
        PredicateTarget::Around { center, deviation } => {
            // a non-numeric center errors in the evaluator; decline so
            // the materialized path raises the identical error
            let c = center.as_f64()?;
            if col.numeric_slice().is_some() {
                Kind::Kernel {
                    col,
                    kernel: NumericKernel::Around(c, *deviation),
                }
            } else {
                Kind::Around {
                    col,
                    center: c,
                    deviation: *deviation,
                }
            }
        }
        target => match EvalContext::kernel_for(&cd, target) {
            Some(kernel) if col.numeric_slice().is_some() => Kind::Kernel { col, kernel },
            _ => match compile_gather(col, &cd, target) {
                Some(kind) => kind,
                None => match target {
                    PredicateTarget::Compare { op, value } => Kind::Compare {
                        col,
                        op: *op,
                        value: value.clone(),
                        cd,
                    },
                    PredicateTarget::Range { low, high } => Kind::Range {
                        col,
                        low: low.clone(),
                        high: high.clone(),
                        cd,
                    },
                    PredicateTarget::Around { .. } => unreachable!("handled above"),
                },
            },
        },
    };
    nodes.push(Node {
        kind,
        label,
        signed,
        weight,
        depth: 0,
    });
    Some(nodes.len() - 1)
}

/// Fill one chunk's scratch buffers with a per-row distance function,
/// accumulating the fused stats — the streaming sibling of
/// `EvalContext::fill_rows` (identical writes, identical stats).
fn fill_chunk(
    vals: &mut [f64],
    mask: &mut [bool],
    offset: usize,
    f: impl Fn(usize) -> Option<f64>,
) -> FrameStats {
    // branchless store (both buffers written every row, undefined rows
    // carry canonical 0.0), stats folded by the lane-structured
    // `of_slice` afterwards — bit-identical to recording row by row
    for (j, (v, m)) in vals.iter_mut().zip(mask.iter_mut()).enumerate() {
        let d = f(offset + j);
        *v = d.unwrap_or(0.0);
        *m = d.is_some();
    }
    FrameStats::of_slice(vals, mask)
}

/// Evaluate one node over the chunk `[offset, offset + vals.len())` into
/// the scratch buffers, returning the chunk's fused stats. Inner
/// boolean nodes normalize their children with the already-fitted
/// `params` (earlier stats rounds) and combine row-wise — every float op
/// mirrors the materialized path exactly.
fn eval_chunk(
    plan: &StreamPlan<'_>,
    params: &[NormParams],
    id: usize,
    offset: usize,
    vals: &mut [f64],
    mask: &mut [bool],
    arena: &chunk::ScratchArena,
) -> FrameStats {
    let len = vals.len();
    match &plan.nodes[id].kind {
        Kind::Kernel { col, kernel } => {
            let (slice, col_mask) = col
                .numeric_slice_at(offset, len)
                .expect("kernel nodes are compiled over native numeric buffers");
            match slice {
                NumericSlice::F64(xs) => batch::run_frame(xs, col_mask, *kernel, vals, mask),
                NumericSlice::I64(xs) => batch::run_frame(xs, col_mask, *kernel, vals, mask),
            }
        }
        Kind::Compare { col, op, value, cd } => fill_chunk(vals, mask, offset, |i| {
            compare_distance(col, i, *op, value, cd)
        }),
        Kind::Range { col, low, high, cd } => fill_chunk(vals, mask, offset, |i| {
            range_distance(col, i, low, high, cd)
        }),
        Kind::Around {
            col,
            center,
            deviation,
        } => fill_chunk(vals, mask, offset, |i| {
            col.get_f64(i)
                .and_then(|v| numeric::around(v, *center, *deviation))
        }),
        Kind::Gather {
            codes,
            col_mask,
            tvals,
            tdef,
        } => {
            let c = &codes[offset..offset + len];
            let m = col_mask.map(|mm| &mm[offset..offset + len]);
            string::gather_table(c, m, tvals, tdef, vals, mask);
            FrameStats::of_slice(vals, mask)
        }
        Kind::Connection(conn) => fill_chunk(vals, mask, offset, |i| conn.row(i)),
        Kind::Bool { and, children } => {
            // child chunks come from the run's scratch arena (one take
            // per nesting level, buffers reused across every chunk the
            // worker walks) and are combined with the branchless slice
            // kernels — the identical float ops of the per-row
            // `and_row`/`or_row` walk, proven in the kernels' docs
            let mut scratch = arena.take();
            let bufs = scratch.frames(children.len(), len);
            for (&c, (v, m)) in children.iter().zip(bufs.iter_mut()) {
                eval_chunk(plan, params, c, offset, v, m, arena);
                // §5.2 re-normalization before combining — the same
                // `apply` the materialized `apply_frame` performs
                apply_in_place(params[c], v, m);
            }
            let weights: Vec<f64> = children.iter().map(|&c| plan.nodes[c].weight).collect();
            let views: Vec<(&[f64], &[bool])> = bufs
                .iter()
                .map(|(v, m)| (v.as_slice(), m.as_slice()))
                .collect();
            if *and {
                combine_and_slices(&views, &weights, vals, mask);
            } else {
                combine_or_slices(&views, &weights, vals, mask);
            }
            FrameStats::of_slice(vals, mask)
        }
    }
}

/// Evaluate one node at a single row — the late window-assembly path.
/// Per-row reads go through `ColumnData::get_f64` / the generic distance
/// functions, which perform the identical float ops as the chunk kernels
/// over the same native values, so assembled rows are bit-identical to
/// the frames a materialized run would hold.
fn eval_row(plan: &StreamPlan<'_>, params: &[NormParams], id: usize, i: usize) -> Option<f64> {
    match &plan.nodes[id].kind {
        Kind::Kernel { col, kernel } => kernel_row(col, *kernel, i),
        Kind::Compare { col, op, value, cd } => compare_distance(col, i, *op, value, cd),
        Kind::Range { col, low, high, cd } => range_distance(col, i, low, high, cd),
        Kind::Around {
            col,
            center,
            deviation,
        } => col
            .get_f64(i)
            .and_then(|v| numeric::around(v, *center, *deviation)),
        Kind::Gather {
            codes,
            col_mask,
            tvals,
            tdef,
        } => {
            // one row of `string::gather_table` — the identical load
            let c = codes[i] as usize;
            (col_mask.is_none_or(|m| m[i]) && tdef[c]).then(|| tvals[c])
        }
        Kind::Connection(conn) => conn.row(i),
        Kind::Bool { and, children } => {
            let row: Vec<Option<f64>> = children
                .iter()
                .map(|&c| eval_row(plan, params, c, i).map(|d| params[c].apply(d.abs())))
                .collect();
            let weights: Vec<f64> = children.iter().map(|&c| plan.nodes[c].weight).collect();
            if *and {
                and_row(&row, &weights)
            } else {
                or_row(&row, &weights)
            }
        }
    }
}

/// One row of a batch kernel: the scalar functions the kernels delegate
/// to, fed from `get_f64` (the same native value / validity the sliced
/// buffers expose — kernel columns are Float/Int/Timestamp only).
fn kernel_row(col: &ColumnData, kernel: NumericKernel, i: usize) -> Option<f64> {
    let x = col.get_f64(i)?;
    match kernel {
        NumericKernel::Compare(_, None) => None,
        NumericKernel::Compare(CompareKernel::Greater, Some(t)) => numeric::greater_than(x, t),
        NumericKernel::Compare(CompareKernel::Less, Some(t)) => numeric::less_than(x, t),
        NumericKernel::Compare(CompareKernel::Equal, Some(t)) => numeric::equal_to(x, t),
        NumericKernel::Compare(CompareKernel::NotEqual, Some(t)) => numeric::not_equal_to(x, t),
        NumericKernel::InRange(low, high) => numeric::in_range(x, low, high),
        NumericKernel::Around(center, deviation) => numeric::around(x, center, deviation),
    }
}

/// Extra candidates a chunk pool may hold beyond `k` before compacting:
/// compaction is O(len), so a slack proportional to `k` keeps the
/// amortized cost per offered value constant.
const COMPACT_SLACK: usize = 4096;

/// A bounded per-chunk selection pool for the k smallest `|d|` values,
/// pruned by a shared atomic threshold. Absolute distances are
/// non-negative, so their IEEE bit patterns order exactly like
/// [`f64::total_cmp`] — the bound is a plain `u64` min.
struct ChunkPool<'a> {
    vals: Vec<f64>,
    k: usize,
    bound: &'a AtomicU64,
    /// Offers short-circuited by the shared threshold (the
    /// [`PipelineTrace::rows_pruned`] contribution of this chunk).
    pruned: u64,
}

impl ChunkPool<'_> {
    fn offer(&mut self, v: f64) {
        // threshold propagation: once any chunk has compacted to k
        // candidates, its k-th smallest bounds every later insert —
        // values at or above it provably cannot change the fitted dmax
        if v.to_bits() >= self.bound.load(Ordering::Relaxed) {
            self.pruned += 1;
            return;
        }
        self.vals.push(v);
        if self.vals.len() >= self.k + self.k.max(COMPACT_SLACK) {
            self.compact();
        }
    }

    fn compact(&mut self) {
        if self.vals.len() <= self.k {
            return;
        }
        self.vals.select_nth_unstable_by(self.k - 1, f64::total_cmp);
        self.vals.truncate(self.k);
        self.bound
            .fetch_min(self.vals[self.k - 1].to_bits(), Ordering::Relaxed);
    }
}

/// The §5.2 fit from fused stats plus (when needed) the merged selection
/// pool — the streaming replica of [`crate::normalize::fit_frame`],
/// bit-identical because the pool contains the value-multiset of the
/// global k smallest absolute distances.
fn fit_streaming(stats: &FrameStats, pool: Vec<f64>, select_k: Option<usize>) -> NormParams {
    let Some(k) = select_k else {
        return params_from_max(stats.max_abs);
    };
    if stats.defined == 0 {
        return params_from_max(f64::NEG_INFINITY);
    }
    let k = k.min(stats.defined);
    if k == stats.defined {
        return params_from_max(stats.max_abs);
    }
    if stats.non_finite == 0 && stats.min_abs == stats.max_abs {
        return params_from_max(stats.max_abs);
    }
    let mut cand = pool;
    debug_assert!(cand.len() >= k, "selection pool must retain k candidates");
    cand.select_nth_unstable_by(k - 1, f64::total_cmp);
    params_from_max(dmax_of_prefix(&cand[..k]))
}

/// Per-chunk accumulator of the fused combine pass.
struct CombineAcc {
    /// Largest finite |combined| (the `normalize_combined` fit input).
    max_abs: f64,
    /// Any defined combined distance ≠ 0 (NaN counts — it is not 0).
    any_nonzero: bool,
    /// Defined combined distances equal to 0 (`num_exact`).
    num_exact: usize,
    /// Per top window: rows whose raw distance is exactly 0 (the §4.3
    /// panel's per-slider `# results`, fused so lazy windows never need
    /// a full frame).
    zeros: Vec<usize>,
}

/// Run the compiled plan end to end. Only called by the pipeline planner
/// (vectorized mode, non-two-sided policy); output is bit-identical to
/// the materialized path.
pub(crate) fn run_streaming(
    ctx: &EvalContext<'_>,
    plan: &StreamPlan<'_>,
    policy: &DisplayPolicy,
    mut trace: Option<Box<PipelineTrace>>,
) -> Result<PipelineOutput> {
    debug_assert!(
        !matches!(policy, DisplayPolicy::TwoSidedPercentage(_)),
        "the planner declines the two-sided policy"
    );
    let mut timings = trace.as_deref_mut().map(|t| &mut t.phases);
    let mut rows_scanned = 0u64;
    let mut rows_pruned = 0u64;
    let n = ctx.table.len();
    let partitions = ctx.partitions;
    let parallel = true; // the planner only streams in vectorized mode
    let num_nodes = plan.nodes.len();
    let budget = ctx.display_budget;

    // one scratch arena for the whole run: every chunk walk (both
    // passes, plus nested boolean levels) draws its per-worker buffers
    // from here instead of allocating per chunk
    let scratch_arena = chunk::ScratchArena::new();

    // fit-selection size per node, known before any walk: None = the
    // stats fast path always suffices (fit covers everything)
    let select_k: Vec<Option<usize>> = plan
        .nodes
        .iter()
        .map(|nd| fit_k(n, nd.weight, budget))
        .collect();
    let mut params = vec![
        NormParams {
            dmin: 0.0,
            dmax: 0.0
        };
        num_nodes
    ];

    // ---- pass 1: fused stats + fit-selection walks, one per level ----
    for round in 0..=plan.depth {
        let roots: Vec<usize> = (0..num_nodes)
            .filter(|&i| plan.nodes[i].depth == round)
            .collect();
        if roots.is_empty() {
            continue;
        }
        checkpoint(ctx.cancel, Phase::Distance)?;
        let start = timings.as_ref().map(|_| Instant::now());
        let bounds: Vec<AtomicU64> = roots.iter().map(|_| AtomicU64::new(u64::MAX)).collect();
        let params_ref = &params;
        let arena = &scratch_arena;
        let per_range: Vec<Vec<(FrameStats, Vec<f64>, u64)>> =
            chunk::map_ranges(n, partitions, parallel, |offset, len| {
                // fast-drain on a tripped token: the checkpoint after
                // this walk discards the partial stats before any fit
                if ctx.poll_cancel() {
                    return roots
                        .iter()
                        .map(|_| (FrameStats::default(), Vec::new(), 0))
                        .collect();
                }
                let mut scratch = arena.take();
                let buf = &mut scratch.frames(1, len)[0];
                roots
                    .iter()
                    .enumerate()
                    .map(|(ri, &id)| {
                        let stats =
                            eval_chunk(plan, params_ref, id, offset, &mut buf.0, &mut buf.1, arena);
                        let (pool_vals, pruned) = match select_k[id] {
                            Some(k) => {
                                let mut pool = ChunkPool {
                                    vals: Vec::new(),
                                    k,
                                    bound: &bounds[ri],
                                    pruned: 0,
                                };
                                for (v, ok) in buf.0.iter().zip(&buf.1) {
                                    if *ok {
                                        pool.offer(v.abs());
                                    }
                                }
                                (pool.vals, pool.pruned)
                            }
                            None => (Vec::new(), 0),
                        };
                        (stats, pool_vals, pruned)
                    })
                    .collect()
            });
        let mut merged: Vec<(FrameStats, Vec<f64>)> = roots
            .iter()
            .map(|_| (FrameStats::default(), Vec::new()))
            .collect();
        for range_out in per_range {
            for (slot, (stats, pool, pruned)) in merged.iter_mut().zip(range_out) {
                slot.0.merge(&stats);
                slot.1.extend(pool);
                rows_pruned += pruned;
            }
        }
        if let (Some(t), Some(start)) = (timings.as_mut(), start) {
            t.distance += start.elapsed();
        }
        checkpoint(ctx.cancel, Phase::Fit)?;
        let start = timings.as_ref().map(|_| Instant::now());
        for (&id, (stats, pool)) in roots.iter().zip(merged) {
            rows_scanned += stats.defined as u64;
            params[id] = fit_streaming(&stats, pool, select_k[id]);
        }
        if let (Some(t), Some(start)) = (timings.as_mut(), start) {
            t.fit += start.elapsed();
        }
    }

    // ---- pass 2: fused distance → normalize → combine walk -----------
    checkpoint(ctx.cancel, Phase::NormalizeCombine)?;
    let start = timings.as_ref().map(|_| Instant::now());
    let weights: Vec<f64> = plan.tops.iter().map(|&t| plan.nodes[t].weight).collect();
    let mut combined: Vec<Option<f64>> = vec![None; n];
    let ranges = chunk::ranges(n, partitions);
    let mut accs: Vec<CombineAcc> = ranges
        .iter()
        .map(|_| CombineAcc {
            max_abs: f64::NEG_INFINITY,
            any_nonzero: false,
            num_exact: 0,
            zeros: vec![0; plan.tops.len()],
        })
        .collect();
    {
        type CombineTask<'t> = (usize, &'t mut [Option<f64>], &'t mut CombineAcc);
        let tasks: Vec<CombineTask<'_>> = ranges
            .iter()
            .map(|&(offset, _)| offset)
            .zip(chunk::split_ranges(&mut combined, &ranges))
            .zip(accs.iter_mut())
            .map(|((offset, comb), acc)| (offset, comb, acc))
            .collect();
        let params_ref = &params;
        let weights = &weights;
        let arena = &scratch_arena;
        // the fused pass-2 loop, restructured from per-row Option
        // plumbing into branchless SoA kernels per chunk: evaluate each
        // top window into arena scratch, fold its exact count, normalize
        // in place ([`apply_in_place`]), root-combine with the slice
        // kernels, then stream the combined chunk out while folding the
        // finalize inputs with branch-free selects — every float op
        // identical to the old walk (see the kernels' docs)
        chunk::run_striped(
            tasks,
            parallel && n >= chunk::PAR_MIN_ROWS,
            move |(offset, comb, acc)| {
                use visdb_distance::lanes::select;
                // fast-drain: the Rank checkpoint below discards the
                // half-combined output of a tripped run
                if ctx
                    .cancel
                    .is_some_and(|c| c.should_stop(Phase::NormalizeCombine))
                {
                    return;
                }
                let len = comb.len();
                let mut scratch = arena.take();
                let (top_bufs, comb_buf) = scratch
                    .frames(plan.tops.len() + 1, len)
                    .split_at_mut(plan.tops.len());
                for (&t, (v, m)) in plan.tops.iter().zip(top_bufs.iter_mut()) {
                    eval_chunk(plan, params_ref, t, offset, v, m, arena);
                }
                // per-window exact counts fold over the *raw* distances
                for (zeros, (v, m)) in acc.zeros.iter_mut().zip(top_bufs.iter()) {
                    *zeros = v
                        .iter()
                        .zip(m.iter())
                        .map(|(&x, &ok)| (ok && x == 0.0) as usize)
                        .sum();
                }
                // §5.2 re-normalization, then the root combine
                for (&t, (v, m)) in plan.tops.iter().zip(top_bufs.iter_mut()) {
                    apply_in_place(params_ref[t], v, m);
                }
                let views: Vec<(&[f64], &[bool])> = top_bufs
                    .iter()
                    .map(|(v, m)| (v.as_slice(), m.as_slice()))
                    .collect();
                let (cv, cm): (&[f64], &[bool]) = match plan.root {
                    Root::Single => views[0],
                    Root::And => {
                        let (cv, cm) = &mut comb_buf[0];
                        combine_and_slices(&views, weights, cv, cm);
                        (cv.as_slice(), cm.as_slice())
                    }
                    Root::Or => {
                        let (cv, cm) = &mut comb_buf[0];
                        combine_or_slices(&views, weights, cv, cm);
                        (cv.as_slice(), cm.as_slice())
                    }
                };
                // undefined rows carry canonical 0.0, so the masked
                // folds below see a harmless value
                for (out, (&x, &ok)) in comb.iter_mut().zip(cv.iter().zip(cm)) {
                    *out = ok.then_some(x);
                    acc.num_exact += (ok && x == 0.0) as usize;
                    acc.any_nonzero |= ok && x != 0.0;
                    let a = x.abs();
                    acc.max_abs =
                        acc.max_abs
                            .max(select(ok && a.is_finite(), a, f64::NEG_INFINITY));
                }
            },
        );
    }
    let mut zeros = vec![0usize; plan.tops.len()];
    let mut max_abs = f64::NEG_INFINITY;
    let mut any_nonzero = false;
    let mut num_exact = 0usize;
    for acc in accs {
        max_abs = max_abs.max(acc.max_abs);
        any_nonzero |= acc.any_nonzero;
        num_exact += acc.num_exact;
        for (total, z) in zeros.iter_mut().zip(acc.zeros) {
            *total += z;
        }
    }

    // final combined normalization (`normalize_combined` semantics:
    // all-exact inputs keep their zeros) + the relevance mirror — the
    // finalize walk shared with the materialized vectorized path
    let mut relevance: Vec<Option<f64>> = vec![None; n];
    finalize_relevance(
        &mut combined,
        &mut relevance,
        any_nonzero,
        params_from_max(max_abs),
        &ranges,
        parallel && n >= chunk::PAR_MIN_ROWS,
    );
    if let (Some(t), Some(start)) = (timings.as_mut(), start) {
        t.normalize_combine += start.elapsed();
    }

    // ---- rank and select: the exact machinery of the materialized
    // path (top-k selection / per-partition k-way merge) ---------------
    checkpoint(ctx.cancel, Phase::Rank)?;
    let start = timings.as_ref().map(|_| Instant::now());
    let (order, displayed, sorted_len) = match partitions {
        None => rank_and_select(&combined, &[], policy, plan.tops.len())?,
        Some(p) => rank_and_select_partitioned(&combined, &[], policy, plan.tops.len(), p)?,
    };

    // ---- late window assembly: evaluate each top window only at the
    // ranked rows — the sorted prefix `order[..sorted_len]`, a superset
    // of `displayed` (the gap heuristic ranks rmax + z + 1 rows but may
    // display fewer; callers legitimately read per-window distances over
    // the whole documented prefix) ------------------------------------
    let mut covered: Vec<usize> = order[..sorted_len].to_vec();
    covered.sort_unstable();
    let windows: Vec<PredicateWindow> = plan
        .tops
        .iter()
        .zip(&zeros)
        .map(|(&t, &zero_count)| {
            let rows: Vec<(usize, Option<f64>)> = covered
                .iter()
                .map(|&i| (i, eval_row(plan, &params, t, i)))
                .collect();
            let node = &plan.nodes[t];
            PredicateWindow {
                label: node.label.clone(),
                signed: node.signed,
                weight: node.weight,
                norm_params: params[t],
                data: WindowData::Displayed(Arc::new(DisplayedWindow::new(n, rows, zero_count))),
            }
        })
        .collect();
    if let (Some(t), Some(start)) = (timings.as_mut(), start) {
        t.rank += start.elapsed();
    }

    if let Some(t) = &mut trace {
        t.streaming = true;
        t.partitions = partitions.map_or(1, |p| p.len());
        t.rows_scanned = rows_scanned;
        t.rows_pruned = rows_pruned;
        t.windows_evaluated = plan.tops.len();
    }
    Ok(PipelineOutput {
        n,
        combined,
        relevance,
        order,
        sorted_len,
        displayed,
        num_exact,
        windows,
        trace,
    })
}
