//! Extending cached predicate windows across *data* appends — the §6
//! reuse principle ("retrieve only the additional portion") applied to
//! data change instead of query change.
//!
//! A stored window can be extended when its per-row distances are a pure
//! function of each row's own value: then the appended rows can be
//! evaluated alone through the same branchless kernels, their fused
//! stats merged into the cached stats exactly (the merge is
//! order-independent), and the frames grown by two memcpys. The one
//! global coupling is the §5.2 weight-proportional normalization fit: if
//! the appended rows shift the fitted `(dmin, dmax)` — say a new
//! farthest outlier — the normalization of *old* rows would change, so
//! the extension **declines** and the caller falls back to a full
//! re-evaluation. That decline is what keeps append-then-query
//! bit-identical to rebuild-from-scratch.

use std::sync::Arc;

use visdb_distance::frame::FrameStats;
use visdb_distance::registry::{ColumnDistance, DistanceResolver};
use visdb_query::ast::{ConditionNode, Weighted};
use visdb_storage::{Database, Table};

use crate::eval::{EvalContext, ExecMode};
use crate::normalize::{apply_frame, fit_frame, fit_frame_extended};
use crate::pipeline::{PredicateWindow, WindowData};

/// Everything needed to grow one stored window by appended rows: the
/// evaluation inputs (condition subtree, weight, display budget) plus
/// the cached frame's fused [`FrameStats`], so the incremental fit
/// decision never re-walks old rows.
#[derive(Debug, Clone)]
pub struct WindowRecipe {
    /// Base relation the window was evaluated over.
    pub table: String,
    /// Row count at evaluation time.
    pub rows: usize,
    /// Display budget the normalization was fitted with.
    pub budget: usize,
    /// Window weight (a §5.2 fit input).
    pub weight: f64,
    /// The condition subtree (a single extendable predicate).
    pub node: ConditionNode,
    /// Fused stats of the stored raw frame.
    pub stats: FrameStats,
}

/// Build the append-extension recipe for a freshly evaluated window, or
/// `None` for shapes that cannot be extended row-locally:
///
/// * only bare `Predicate` leaves qualify — connections and subqueries
///   evaluate against *other* relations, and `And`/`Or`/`Not` interiors
///   re-normalize with child fits over the full distribution;
/// * the predicate's column must resolve to [`ColumnDistance::Numeric`]:
///   string/ordinal distances run through column-level artifacts
///   (dictionaries, rank tables) that appends reshape, so a delta-only
///   evaluation is not guaranteed to reproduce the full-column pass.
///
/// The recipe's stats come from the evaluation's own fused accumulation
/// — no extra walk.
pub fn extension_recipe(
    ctx: &EvalContext<'_>,
    w: &Weighted,
    stats: FrameStats,
) -> Option<WindowRecipe> {
    let ConditionNode::Predicate(p) = &w.node else {
        return None;
    };
    let (_, dt, class, _) = ctx.column(&p.attr).ok()?;
    if !matches!(
        ctx.distance_for(&p.attr, dt, class),
        ColumnDistance::Numeric
    ) {
        return None;
    }
    Some(WindowRecipe {
        table: ctx.table.name().to_string(),
        rows: ctx.table.len(),
        budget: ctx.display_budget,
        weight: w.weight,
        node: w.node.clone(),
        stats,
    })
}

/// Grow a stored window by the appended rows of `delta` (a sub-table
/// holding **only** rows `recipe.rows..`): evaluate the delta through
/// the standard kernels, merge stats, refit, and — iff the fitted
/// normalization parameters are unchanged — append the delta's raw and
/// normalized distances to the cached frames. Returns the extended
/// window plus its updated recipe, or `None` when the fit shifted (or
/// the delta fails to evaluate), in which case the caller must drop the
/// entry and let the next query re-evaluate in full.
///
/// Shared caches only ever hold default-resolver evaluations (sessions
/// with custom resolvers detach from them), so the delta pass uses a
/// default [`DistanceResolver`].
pub fn extend_window(
    db: &Database,
    delta: &Table,
    win: &PredicateWindow,
    recipe: &WindowRecipe,
) -> Option<(PredicateWindow, WindowRecipe)> {
    let (raw, normalized) = win.full_frames()?;
    let resolver = DistanceResolver::new();
    let ctx = EvalContext {
        db,
        table: delta,
        resolver: &resolver,
        display_budget: recipe.budget,
        mode: ExecMode::Vectorized,
        partitions: None,
        cancel: None,
    };
    let dev = ctx.eval_node(&recipe.node).ok()?;
    let mut merged = recipe.stats;
    merged.merge(&dev.stats);
    // refit in O(Δ) when the old k-th order statistic provably still
    // governs; fall back to the full selection over the concatenated
    // frame when the delta may have displaced it (bit-identical both
    // ways — the fast path only fires when the answer is forced)
    let (params, ext_raw) = match fit_frame_extended(
        recipe.rows,
        &recipe.stats,
        win.norm_params,
        &dev.distances,
        &merged,
        recipe.weight,
        recipe.budget,
    ) {
        Some(params) => (params, None),
        None => {
            let ext_raw = raw.concat(&dev.distances);
            let params = fit_frame(&ext_raw, &merged, recipe.weight, recipe.budget);
            (params, Some(ext_raw))
        }
    };
    if params != win.norm_params {
        return None; // fit shifted: old rows' normalization would change
    }
    let ext_raw = ext_raw.unwrap_or_else(|| raw.concat(&dev.distances));
    let ext_norm = normalized.concat(&apply_frame(&dev.distances, params));
    let extended = PredicateWindow {
        label: win.label.clone(),
        signed: win.signed,
        weight: win.weight,
        data: WindowData::Full {
            raw: Arc::new(ext_raw),
            normalized: Arc::new(ext_norm),
        },
        norm_params: params,
    };
    let recipe = WindowRecipe {
        rows: recipe.rows + delta.len(),
        stats: merged,
        node: recipe.node.clone(),
        table: recipe.table.clone(),
        budget: recipe.budget,
        weight: recipe.weight,
    };
    Some((extended, recipe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline_opts, DisplayPolicy, Materialization, PipelineOptions};
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_storage::{Database, TableBuilder};
    use visdb_types::{Column, DataType, Value};

    fn db_with(values: &[Option<f64>]) -> Database {
        let mut b = TableBuilder::new(
            "T",
            vec![
                Column::new("x", DataType::Float),
                Column::new("s", DataType::Str),
            ],
        );
        for (i, v) in values.iter().enumerate() {
            let x = v.map_or(Value::Null, Value::Float);
            b = b.row(vec![x, Value::from(format!("s{}", i % 3))]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        db
    }

    fn window_for(db: &Database, node: &ConditionNode, budget: usize) -> PredicateWindow {
        let table = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let out = run_pipeline_opts(
            db,
            table,
            &resolver,
            Some(&Weighted::unit(node.clone())),
            &DisplayPolicy::FitScreen {
                pixels: budget,
                pixels_per_item: 1,
            },
            PipelineOptions {
                materialization: Materialization::Materialized,
                ..Default::default()
            },
        )
        .unwrap();
        out.windows.into_iter().next().unwrap()
    }

    #[test]
    fn extension_matches_full_reevaluation_or_declines() {
        let node =
            ConditionNode::Predicate(Predicate::compare(AttrRef::new("x"), CompareOp::Ge, 1000.0));
        // distinct ramp -> distinct |d|, so the k-th order statistic is
        // unambiguous; NULLs and NaNs ride along
        let base: Vec<Option<f64>> = (0..64)
            .map(|i| match i % 7 {
                0 => None,
                1 => Some(f64::NAN),
                _ => Some(i as f64),
            })
            .collect();
        // a delta far from the bound leaves the k smallest |d| (and so
        // the fit) untouched -> extends; a delta row closer than the
        // current k-th smallest shifts the fit -> must decline
        for (delta_vals, expect_extend) in [
            (vec![Some(5.5), None, Some(3.25)], true),
            (vec![Some(999.0)], false),
        ] {
            let mut all = base.clone();
            all.extend(delta_vals.iter().cloned());
            let old_db = db_with(&base);
            let new_db = db_with(&all);
            let budget = 16;
            let win = window_for(&old_db, &node, budget);
            let (raw, _) = win.full_frames().unwrap();
            let recipe = WindowRecipe {
                table: "T".into(),
                rows: base.len(),
                budget,
                weight: 1.0,
                node: node.clone(),
                stats: FrameStats::of_frame(raw),
            };
            let idx: Vec<usize> = (base.len()..all.len()).collect();
            let delta = new_db.table("T").unwrap().gather("T", &idx);
            match extend_window(&new_db, &delta, &win, &recipe) {
                Some((ext, new_recipe)) => {
                    assert!(expect_extend, "should have declined");
                    let full = window_for(&new_db, &node, budget);
                    let (eraw, enorm) = ext.full_frames().unwrap();
                    let (fraw, fnorm) = full.full_frames().unwrap();
                    assert!(eraw.bits_eq(fraw), "raw frames diverge");
                    assert!(enorm.bits_eq(fnorm), "normalized frames diverge");
                    assert_eq!(ext.norm_params, full.norm_params);
                    assert_eq!(new_recipe.rows, all.len());
                    assert_eq!(new_recipe.stats, FrameStats::of_frame(fraw));
                }
                None => assert!(!expect_extend, "should have extended"),
            }
        }
    }

    #[test]
    fn recipes_are_numeric_predicate_leaves_only() {
        let db = db_with(&[Some(1.0), Some(2.0)]);
        let table = db.table("T").unwrap();
        let resolver = DistanceResolver::new();
        let ctx = EvalContext {
            db: &db,
            table,
            resolver: &resolver,
            display_budget: 8,
            mode: ExecMode::Vectorized,
            partitions: None,
            cancel: None,
        };
        let numeric = Weighted::unit(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            CompareOp::Ge,
            1.0,
        )));
        assert!(extension_recipe(&ctx, &numeric, FrameStats::default()).is_some());
        let string = Weighted::unit(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("s"),
            CompareOp::Eq,
            "s1",
        )));
        assert!(
            extension_recipe(&ctx, &string, FrameStats::default()).is_none(),
            "string distances are column-dependent"
        );
        let and = Weighted::unit(ConditionNode::And(vec![numeric.clone()]));
        assert!(extension_recipe(&ctx, &and, FrameStats::default()).is_none());
    }
}
