//! Chunked data-parallel execution over row ranges.
//!
//! The pipeline's hot passes (distance kernels, normalization-apply,
//! combining) are embarrassingly parallel over rows: every output row
//! depends only on the same row of its inputs. This module splits an
//! output slice into row ranges — fixed-size chunks, or the ranges of a
//! horizontal [`Partitioning`] — and fans them out across the shared
//! [`visdb_exec`] runtime, so a single large query parallelizes over
//! rows while the whole process stays inside one global thread budget.
//!
//! Determinism: each task writes only its own disjoint sub-slice and
//! reads only shared immutable inputs, so results are independent of
//! thread count and scheduling — the parallel walk is bit-identical to
//! the serial one.
//!
//! Execution runs on the *persistent* pool of the caller's current
//! runtime (the service's own pool when called from a service worker,
//! the global pool otherwise); the caller participates in its own batch,
//! so fork-join never waits on pool capacity and the former
//! per-walk scoped spawns — which oversubscribed multi-core boxes under
//! concurrent large queries — are gone. A scoped-spawn walk survives
//! only as the benchmark baseline ([`run_striped_scoped`]) and the
//! [`with_scoped_spawns`] escape hatch that the `pipeline_perf` binary
//! uses to measure pooled-vs-scoped end to end.

use std::cell::Cell;

use visdb_distance::frame::{DistanceFrame, FrameStats};
use visdb_storage::Partitioning;

/// Rows per chunk. Large enough to amortise dispatch overhead, small
/// enough to load-balance across the worker pool.
pub const CHUNK_ROWS: usize = 16_384;

/// Minimum total rows before a chunk walk fans out across threads;
/// smaller inputs run serially (dispatch overhead would dominate the
/// §4.3 interactive latencies the chunking is meant to protect).
pub const PAR_MIN_ROWS: usize = 32_768;

/// Worker threads a chunk walk can occupy at most: the current exec
/// runtime's budget, capped (the pipeline is memory-bound well before
/// 16 cores).
pub fn max_threads() -> usize {
    visdb_exec::current_budget().min(16)
}

thread_local! {
    /// Bench-only override: route fan-out through per-walk scoped spawns
    /// instead of the shared pool (see [`with_scoped_spawns`]).
    static FORCE_SCOPED: Cell<bool> = const { Cell::new(false) };
}

/// Run `f` with chunk fan-out forced onto per-walk scoped spawns — the
/// pre-runtime execution strategy, kept **only** as the measurable
/// baseline for the `pipeline_perf` pooled-vs-scoped comparison.
/// Nests and unwinds cleanly: the previous mode is restored on exit
/// even if `f` panics.
pub fn with_scoped_spawns<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            FORCE_SCOPED.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(FORCE_SCOPED.with(|s| s.replace(true)));
    f()
}

/// Run `f` once per task, fanning the tasks out across the shared
/// runtime when `parallel` is set (and there is more than one task).
/// Tasks carry their own mutable state (typically disjoint `&mut`
/// sub-slices), which is what makes the fan-out safe.
pub fn run_striped<T: Send>(tasks: Vec<T>, parallel: bool, f: impl Fn(T) + Sync) {
    if !parallel || tasks.len() <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    if FORCE_SCOPED.with(|s| s.get()) {
        run_striped_scoped(tasks, f);
        return;
    }
    visdb_exec::run_tasks(tasks, f);
}

/// The pre-runtime fan-out: stripe tasks across up to [`max_threads`]
/// crossbeam-scoped threads spawned for this walk alone. Spawning per
/// walk is exactly the oversubscription the shared runtime eliminates;
/// this survives as the benchmark baseline and is not used by the
/// pipeline.
pub fn run_striped_scoped<T: Send>(tasks: Vec<T>, f: impl Fn(T) + Sync) {
    let threads = max_threads().min(tasks.len());
    if threads <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let mut buckets: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % threads].push(task);
    }
    let f = &f;
    crossbeam::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move |_| {
                for task in bucket {
                    f(task);
                }
            });
        }
    })
    .expect("chunk workers must not panic");
}

/// The row ranges of one pass: [`CHUNK_ROWS`]-sized chunks of `n` rows,
/// or — under a horizontal [`Partitioning`] — per-partition ranges
/// sub-chunked by [`CHUNK_ROWS`] so no task ever crosses a partition
/// boundary (each task reads only bytes its partition owns, the
/// invariant multi-box sharding will inherit).
pub fn ranges(n: usize, partitions: Option<&Partitioning>) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    match partitions {
        None => {
            let mut offset = 0;
            while offset < n {
                let len = CHUNK_ROWS.min(n - offset);
                out.push((offset, len));
                offset += len;
            }
        }
        Some(p) => {
            debug_assert_eq!(p.rows(), n, "partitioning must cover the relation");
            for part in p.partitions() {
                let mut offset = part.offset;
                let end = part.offset + part.len;
                while offset < end {
                    let len = CHUNK_ROWS.min(end - offset);
                    out.push((offset, len));
                    offset += len;
                }
            }
        }
    }
    out
}

/// Split `out` into the given contiguous `ranges` (which must cover it
/// in order), returning one mutable sub-slice per range.
pub fn split_ranges<'a, T>(out: &'a mut [T], ranges: &[(usize, usize)]) -> Vec<&'a mut [T]> {
    let mut parts = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut consumed = 0;
    for &(offset, len) in ranges {
        debug_assert_eq!(offset, consumed, "ranges must be contiguous");
        let (head, tail) = rest.split_at_mut(len);
        parts.push(head);
        rest = tail;
        consumed += len;
    }
    debug_assert!(rest.is_empty(), "ranges must cover the slice");
    parts
}

/// Walk `out` range by range, calling `f(offset, range)` for each, with
/// the ranges taken from `partitions` (or plain chunking) and fanned out
/// across the runtime when `parallel` is set and the slice is at least
/// [`PAR_MIN_ROWS`] long.
pub fn for_each_range<T: Send>(
    out: &mut [T],
    partitions: Option<&Partitioning>,
    parallel: bool,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if out.is_empty() {
        return;
    }
    let fan_out = parallel && out.len() >= PAR_MIN_ROWS;
    // every range is non-empty by construction (empty partitions emit
    // no range), so ranges and sub-slices pair up one to one
    let ranges = ranges(out.len(), partitions);
    let tasks: Vec<(usize, &mut [T])> = ranges
        .iter()
        .map(|&(offset, _)| offset)
        .zip(split_ranges(out, &ranges))
        .collect();
    run_striped(tasks, fan_out, |(offset, chunk)| f(offset, chunk));
}

/// Walk `out` in [`CHUNK_ROWS`]-sized chunks, calling `f(offset, chunk)`
/// for each, fanning the chunks out across the worker pool when
/// `parallel` is set and the slice is at least [`PAR_MIN_ROWS`] long.
pub fn for_each_chunk<T: Send>(out: &mut [T], parallel: bool, f: impl Fn(usize, &mut [T]) + Sync) {
    for_each_range(out, None, parallel, f);
}

/// Map every row range of a pass to a result, without any backing output
/// slice: `f(offset, len)` runs once per range (fanned out across the
/// runtime under the usual conditions) and the per-range results come
/// back **in range order**, so order-sensitive merges stay deterministic
/// regardless of thread schedule. This is the walk shape of the
/// streaming pipeline's stats passes, which recompute distances in
/// registers and keep only per-range accumulators.
pub fn map_ranges<R: Send>(
    n: usize,
    partitions: Option<&Partitioning>,
    parallel: bool,
    f: impl Fn(usize, usize) -> R + Sync,
) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let fan_out = parallel && n >= PAR_MIN_ROWS;
    let ranges = ranges(n, partitions);
    let mut out: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
    {
        let tasks: Vec<(&(usize, usize), &mut Option<R>)> =
            ranges.iter().zip(out.iter_mut()).collect();
        run_striped(tasks, fan_out, |(&(offset, len), slot)| {
            *slot = Some(f(offset, len));
        });
    }
    out.into_iter()
        .map(|r| r.expect("every range produces a result"))
        .collect()
}

/// [`for_each_range`] over a packed [`DistanceFrame`]: each task gets
/// the lockstep `(values, validity)` sub-slices of its row range and
/// returns that range's [`FrameStats`]; the merged stats of the whole
/// walk come back to the caller. Stats merging is min/max/count only, so
/// the merged result is bit-identical regardless of chunking or thread
/// schedule — the fused stats accumulation stays deterministic.
pub fn for_each_frame_range(
    frame: &mut DistanceFrame,
    partitions: Option<&Partitioning>,
    parallel: bool,
    f: impl Fn(usize, &mut [f64], &mut [bool]) -> FrameStats + Sync,
) -> FrameStats {
    let n = frame.len();
    if n == 0 {
        return FrameStats::default();
    }
    let fan_out = parallel && n >= PAR_MIN_ROWS;
    let ranges = ranges(n, partitions);
    let mut stats = vec![FrameStats::default(); ranges.len()];
    {
        type FrameTask<'a> = (usize, (&'a mut [f64], &'a mut [bool]), &'a mut FrameStats);
        let tasks: Vec<FrameTask<'_>> = ranges
            .iter()
            .map(|&(offset, _)| offset)
            .zip(frame.split_ranges_mut(&ranges))
            .zip(stats.iter_mut())
            .map(|((offset, chunk), slot)| (offset, chunk, slot))
            .collect();
        run_striped(tasks, fan_out, |(offset, (vals, mask), slot)| {
            *slot = f(offset, vals, mask);
        });
    }
    let mut total = FrameStats::default();
    for s in &stats {
        total.merge(s);
    }
    total
}

/// One worker's reusable chunk scratch: lockstep packed `(values,
/// validity)` buffer pairs, grown on demand and kept across chunks.
#[derive(Default)]
pub struct Scratch {
    bufs: Vec<(Vec<f64>, Vec<bool>)>,
}

impl Scratch {
    /// Borrow `children` lockstep `(values, mask)` pairs of `len` rows
    /// each. Contents are **unspecified** (stale rows from a previous
    /// chunk survive): callers must overwrite every row they read — the
    /// contract all the fused chunk walks already satisfy, since every
    /// kernel writes each output row unconditionally.
    pub fn frames(&mut self, children: usize, len: usize) -> &mut [(Vec<f64>, Vec<bool>)] {
        if self.bufs.len() < children {
            self.bufs.resize_with(children, Default::default);
        }
        for (v, m) in &mut self.bufs[..children] {
            v.resize(len, 0.0);
            m.resize(len, false);
        }
        &mut self.bufs[..children]
    }
}

/// A small arena of per-worker [`Scratch`] buffers for one pipeline run:
/// a chunk walk takes a scratch at task start, reuses it across every
/// chunk of the task, and returns it on drop — so a pass over thousands
/// of chunks pays the allocator once per worker (plus once per nesting
/// level for recursive condition trees) instead of once per chunk.
/// Create one per run; the buffers die with it.
#[derive(Default)]
pub struct ScratchArena {
    pool: std::sync::Mutex<Vec<Scratch>>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a scratch (reusing a returned one when available). The guard
    /// hands the scratch back on drop.
    pub fn take(&self) -> ScratchGuard<'_> {
        let scratch = self
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            arena: self,
            scratch,
        }
    }
}

/// RAII handle on an arena scratch; derefs to [`Scratch`] and returns
/// the buffers to the arena on drop.
pub struct ScratchGuard<'a> {
    arena: &'a ScratchArena,
    scratch: Scratch,
}

impl std::ops::Deref for ScratchGuard<'_> {
    type Target = Scratch;

    fn deref(&self) -> &Scratch {
        &self.scratch
    }
}

impl std::ops::DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        &mut self.scratch
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        self.arena
            .pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(std::mem::take(&mut self.scratch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_row_exactly_once() {
        let n = PAR_MIN_ROWS + CHUNK_ROWS / 2;
        let mut out = vec![0usize; n];
        for_each_chunk(&mut out, true, |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + j;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn serial_and_parallel_walks_agree() {
        let n = PAR_MIN_ROWS + 123;
        let fill = |parallel: bool| {
            let mut out = vec![0.0f64; n];
            for_each_chunk(&mut out, parallel, |offset, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let i = (offset + j) as f64;
                    *slot = i * 1.5 - 3.0;
                }
            });
            out
        };
        assert_eq!(fill(false), fill(true));
    }

    #[test]
    fn empty_and_tiny_inputs_run_serially() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk(&mut empty, true, |_, _| panic!("no chunks expected"));
        let mut one = vec![0u8];
        for_each_chunk(&mut one, true, |offset, chunk| {
            assert_eq!(offset, 0);
            chunk[0] = 7;
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn partitioned_ranges_respect_boundaries() {
        let p = Partitioning::even(CHUNK_ROWS * 3 + 100, 2);
        let rs = ranges(p.rows(), Some(&p));
        // no range crosses a partition boundary
        for part in p.partitions() {
            let inside: usize = rs
                .iter()
                .filter(|&&(o, l)| o >= part.offset && o + l <= part.offset + part.len)
                .map(|&(_, l)| l)
                .sum();
            assert_eq!(inside, part.len);
        }
        // and together they cover every row exactly once, in order
        let mut next = 0;
        for &(o, l) in &rs {
            assert_eq!(o, next);
            next += l;
        }
        assert_eq!(next, p.rows());
    }

    #[test]
    fn partitioned_walk_matches_chunked_walk() {
        let n = PAR_MIN_ROWS + 77;
        let fill = |partitions: Option<&Partitioning>| {
            let mut out = vec![0.0f64; n];
            for_each_range(&mut out, partitions, true, |offset, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (offset + j) as f64 * 0.5 + 1.0;
                }
            });
            out
        };
        let plain = fill(None);
        for parts in [1, 2, 7, 16, 100] {
            let p = Partitioning::even(n, parts);
            assert_eq!(fill(Some(&p)), plain, "{parts} partitions");
        }
        // more partitions than rows: empty partitions are skipped
        let tiny = 5;
        let p = Partitioning::even(tiny, 16);
        let mut out = vec![0u8; tiny];
        for_each_range(&mut out, Some(&p), true, |_, chunk| {
            for slot in chunk.iter_mut() {
                *slot = 1;
            }
        });
        assert_eq!(out, vec![1; tiny]);
    }

    #[test]
    fn scratch_arena_reuses_buffers_across_takes() {
        let arena = ScratchArena::new();
        let cap0 = {
            let mut s = arena.take();
            let bufs = s.frames(3, 100);
            assert_eq!(bufs.len(), 3);
            for (v, m) in bufs.iter() {
                assert_eq!(v.len(), 100);
                assert_eq!(m.len(), 100);
            }
            bufs[0].0.capacity()
        };
        {
            // returned scratch comes back with its allocation intact and
            // resizes to the new chunk shape
            let mut s = arena.take();
            let bufs = s.frames(2, 40);
            assert_eq!(bufs.len(), 2);
            assert_eq!(bufs[0].0.len(), 40);
            assert!(bufs[0].0.capacity() >= cap0.min(100));
        }
        // nested takes (recursive condition trees) get distinct scratches
        let a = arena.take();
        let b = arena.take();
        drop(a);
        drop(b);
    }

    #[test]
    fn scoped_baseline_agrees_with_pooled() {
        let n = PAR_MIN_ROWS * 2;
        let run = |scoped: bool| {
            let mut out = vec![0usize; n];
            let walk = |out: &mut Vec<usize>| {
                for_each_chunk(out, true, |offset, chunk| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (offset + j) * 3;
                    }
                });
            };
            if scoped {
                with_scoped_spawns(|| walk(&mut out));
            } else {
                walk(&mut out);
            }
            out
        };
        assert_eq!(run(false), run(true));
    }
}
