//! Chunked data-parallel execution over row ranges.
//!
//! The pipeline's hot passes (distance kernels, normalization-apply,
//! combining) are embarrassingly parallel over rows: every output row
//! depends only on the same row of its inputs. This module splits an
//! output slice into fixed-size chunks and fans the chunks out across a
//! scoped worker pool, so a single large query parallelizes over rows —
//! the previous pipeline only parallelized across predicate windows,
//! leaving one-predicate queries single-threaded.
//!
//! Determinism: each chunk writes only its own disjoint sub-slice and
//! reads only shared immutable inputs, so results are independent of
//! thread count and scheduling — the parallel walk is bit-identical to
//! the serial one.
//!
//! Threads are crossbeam-*scoped* (spawned per walk, joined before it
//! returns), not a persistent pool: the scoped lifetime is what lets
//! tasks borrow the output vectors without `Arc`/channel plumbing, and
//! the [`PAR_MIN_ROWS`] floor keeps spawn cost (~tens of µs) far below
//! the work it buys. The known cost is oversubscription when several
//! service workers each run a large query concurrently — a shared
//! persistent pool (or a global in-flight thread budget) is the
//! ROADMAP's follow-up once multi-core deployments make it measurable.

/// Rows per chunk. Large enough to amortise spawn/dispatch overhead,
/// small enough to load-balance across a worker pool.
pub const CHUNK_ROWS: usize = 16_384;

/// Minimum total rows before a chunk walk fans out across threads;
/// smaller inputs run serially (spawn overhead would dominate the §4.3
/// interactive latencies the chunking is meant to protect).
pub const PAR_MIN_ROWS: usize = 32_768;

/// Worker threads available to a chunk walk (capped: the pipeline is
/// memory-bound well before 16 cores).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Run `f` once per task, striping tasks across up to [`max_threads`]
/// scoped workers when `parallel` is set (and there is more than one task
/// and core). Tasks carry their own mutable state (typically disjoint
/// `&mut` sub-slices), which is what makes the fan-out safe.
pub fn run_striped<T: Send>(tasks: Vec<T>, parallel: bool, f: impl Fn(T) + Sync) {
    let threads = if parallel {
        max_threads().min(tasks.len())
    } else {
        1
    };
    if threads <= 1 {
        for task in tasks {
            f(task);
        }
        return;
    }
    let mut buckets: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % threads].push(task);
    }
    let f = &f;
    crossbeam::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move |_| {
                for task in bucket {
                    f(task);
                }
            });
        }
    })
    .expect("chunk workers must not panic");
}

/// Walk `out` in [`CHUNK_ROWS`]-sized chunks, calling `f(offset, chunk)`
/// for each, fanning the chunks out across the worker pool when
/// `parallel` is set and the slice is at least [`PAR_MIN_ROWS`] long.
pub fn for_each_chunk<T: Send>(out: &mut [T], parallel: bool, f: impl Fn(usize, &mut [T]) + Sync) {
    if out.is_empty() {
        return;
    }
    let fan_out = parallel && out.len() >= PAR_MIN_ROWS;
    let tasks: Vec<(usize, &mut [T])> = out
        .chunks_mut(CHUNK_ROWS)
        .enumerate()
        .map(|(i, c)| (i * CHUNK_ROWS, c))
        .collect();
    run_striped(tasks, fan_out, |(offset, chunk)| f(offset, chunk));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_row_exactly_once() {
        let n = PAR_MIN_ROWS + CHUNK_ROWS / 2;
        let mut out = vec![0usize; n];
        for_each_chunk(&mut out, true, |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = offset + j;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i);
        }
    }

    #[test]
    fn serial_and_parallel_walks_agree() {
        let n = PAR_MIN_ROWS + 123;
        let fill = |parallel: bool| {
            let mut out = vec![0.0f64; n];
            for_each_chunk(&mut out, parallel, |offset, chunk| {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    let i = (offset + j) as f64;
                    *slot = i * 1.5 - 3.0;
                }
            });
            out
        };
        assert_eq!(fill(false), fill(true));
    }

    #[test]
    fn empty_and_tiny_inputs_run_serially() {
        let mut empty: Vec<u8> = Vec::new();
        for_each_chunk(&mut empty, true, |_, _| panic!("no chunks expected"));
        let mut one = vec![0u8];
        for_each_chunk(&mut one, true, |offset, chunk| {
            assert_eq!(offset, 0);
            chunk[0] = 7;
        });
        assert_eq!(one, vec![7]);
    }
}
