//! Alternative multi-attribute distance combiners (§5.2):
//!
//! "for special applications other specific distance functions such as
//! the Euclidean, Lp or the Mahalanobis distance in n-dimensional space
//! may be used to combine the values of multiple attributes."
//!
//! These treat the per-predicate normalized distances of one data item as
//! a vector in `#sp`-dimensional space and reduce it to a scalar. They
//! share the AND-like semantics (zero iff *all* parts are zero) but
//! weight far misses differently: L2 emphasises the largest deviation
//! more than the arithmetic mean, L∞ (the limit) is the fuzzy max, and
//! Mahalanobis additionally discounts correlated predicates.

use visdb_distance::frame::DistanceFrame;
use visdb_types::{Error, Result};

/// [`combine_lp`] over packed frames — the frame-level entry point for
/// callers holding pipeline windows (whose distances are packed now).
/// Adapts through the `Option` view once per child, then reuses the
/// reference arithmetic verbatim; nothing in the default pipeline calls
/// this (the paper's AND/OR means do), it exists for Lp-combining
/// experiments.
pub fn combine_lp_frames(
    children: &[&DistanceFrame],
    weights: &[f64],
    p: f64,
) -> Result<DistanceFrame> {
    let options: Vec<Vec<Option<f64>>> = children.iter().map(|c| c.to_options()).collect();
    Ok(DistanceFrame::from_options(&combine_lp(
        &options, weights, p,
    )?))
}

/// [`combine_euclidean`] over packed frames.
pub fn combine_euclidean_frames(
    children: &[&DistanceFrame],
    weights: &[f64],
) -> Result<DistanceFrame> {
    combine_lp_frames(children, weights, 2.0)
}

fn check<C: AsRef<[Option<f64>]>>(children: &[C]) -> Result<usize> {
    if children.is_empty() {
        return Err(Error::invalid_query("combine of zero children"));
    }
    let n = children[0].as_ref().len();
    if children.iter().any(|c| c.as_ref().len() != n) {
        return Err(Error::Internal("ragged child distance vectors".into()));
    }
    Ok(n)
}

/// Weighted Lp combination: `dᵢ = (Σⱼ wⱼ·|dᵢⱼ|ᵖ)^(1/p)`, `p ≥ 1`.
/// `None` children make the item undefined (AND semantics).
pub fn combine_lp<C: AsRef<[Option<f64>]>>(
    children: &[C],
    weights: &[f64],
    p: f64,
) -> Result<Vec<Option<f64>>> {
    if p.is_nan() || p < 1.0 {
        return Err(Error::invalid_parameter("p", "Lp requires p >= 1"));
    }
    let n = check(children)?;
    if children.len() != weights.len() {
        return Err(Error::Internal("weights/children mismatch".into()));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut sum = 0.0;
        let mut ok = true;
        for (c, &w) in children.iter().zip(weights) {
            match c.as_ref()[i] {
                Some(d) => sum += w * d.abs().powf(p),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        out.push(if ok { Some(sum.powf(1.0 / p)) } else { None });
    }
    Ok(out)
}

/// Weighted Euclidean combination: [`combine_lp`] with `p = 2`.
pub fn combine_euclidean<C: AsRef<[Option<f64>]>>(
    children: &[C],
    weights: &[f64],
) -> Result<Vec<Option<f64>>> {
    combine_lp(children, weights, 2.0)
}

/// Mahalanobis combination: `dᵢ = sqrt(xᵢᵀ Σ⁻¹ xᵢ)` where `xᵢ` is item
/// `i`'s vector of per-predicate distances and `Σ` the empirical
/// covariance of those distances over the defined items. Correlated
/// predicates (e.g. temperature and solar radiation) are discounted so
/// they do not double-count the same deviation.
///
/// The covariance is regularised with `ridge·I` to stay invertible; the
/// inverse is computed by Gauss–Jordan elimination (the number of
/// predicates is tiny).
pub fn combine_mahalanobis<C: AsRef<[Option<f64>]>>(
    children: &[C],
    ridge: f64,
) -> Result<Vec<Option<f64>>> {
    let n = check(children)?;
    let k = children.len();
    if !ridge.is_finite() || ridge < 0.0 {
        return Err(Error::invalid_parameter("ridge", "must be finite and >= 0"));
    }
    // means over fully-defined items
    let defined: Vec<usize> = (0..n)
        .filter(|&i| children.iter().all(|c| c.as_ref()[i].is_some()))
        .collect();
    if defined.is_empty() {
        return Ok(vec![None; n]);
    }
    let m = defined.len() as f64;
    let mean: Vec<f64> = children
        .iter()
        .map(|c| {
            defined
                .iter()
                .map(|&i| c.as_ref()[i].expect("defined"))
                .sum::<f64>()
                / m
        })
        .collect();
    // covariance + ridge
    let mut cov = vec![vec![0.0f64; k]; k];
    for &i in &defined {
        for a in 0..k {
            let xa = children[a].as_ref()[i].expect("defined") - mean[a];
            for b in a..k {
                let xb = children[b].as_ref()[i].expect("defined") - mean[b];
                cov[a][b] += xa * xb;
            }
        }
    }
    // symmetrise the upper triangle and scale by the sample count
    #[allow(clippy::needless_range_loop)]
    for a in 0..k {
        for b in a..k {
            let v = cov[a][b] / m;
            cov[a][b] = v;
            cov[b][a] = v;
        }
        cov[a][a] += ridge.max(1e-9);
    }
    let inv = invert(&cov).ok_or_else(|| {
        Error::invalid_parameter("covariance", "singular even after ridge regularisation")
    })?;
    // d_i = sqrt(x^T inv x) with x the raw (not mean-centred) distance
    // vector: an item with all parts fulfilled must stay at distance 0
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x: Option<Vec<f64>> = children.iter().map(|c| c.as_ref()[i]).collect();
        match x {
            Some(x) => {
                let mut q = 0.0;
                for a in 0..k {
                    for b in 0..k {
                        q += x[a] * inv[a][b] * x[b];
                    }
                }
                out.push(Some(q.max(0.0).sqrt()));
            }
            None => out.push(None),
        }
    }
    Ok(out)
}

/// Gauss–Jordan inversion of a small square matrix.
fn invert(m: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let k = m.len();
    let mut a: Vec<Vec<f64>> = m.to_vec();
    let mut inv: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..k).map(|j| f64::from(u8::from(i == j))).collect())
        .collect();
    for col in 0..k {
        // partial pivot
        let pivot = (col..k).max_by(|&x, &y| {
            a[x][col]
                .abs()
                .partial_cmp(&a[y][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p = a[col][col];
        for j in 0..k {
            a[col][j] /= p;
            inv[col][j] /= p;
        }
        for row in 0..k {
            if row != col {
                let f = a[row][col];
                for j in 0..k {
                    a[row][j] -= f * a[col][j];
                    inv[row][j] -= f * inv[col][j];
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(xs: &[f64]) -> Vec<Option<f64>> {
        xs.iter().map(|&x| Some(x)).collect()
    }

    #[test]
    fn euclidean_is_l2() {
        let out = combine_euclidean(&[v(&[3.0]), v(&[4.0])], &[1.0, 1.0]).unwrap();
        assert!((out[0].unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn frame_adapters_match_option_combiners() {
        let a = vec![Some(3.0), None, Some(1.0)];
        let b = vec![Some(4.0), Some(2.0), Some(0.0)];
        let fa = DistanceFrame::from_options(&a);
        let fb = DistanceFrame::from_options(&b);
        let got = combine_euclidean_frames(&[&fa, &fb], &[1.0, 1.0]).unwrap();
        let expect = combine_euclidean(&[a, b], &[1.0, 1.0]).unwrap();
        assert_eq!(got.to_options(), expect);
    }

    #[test]
    fn lp_limits() {
        // p = 1 is the weighted sum of magnitudes
        let out = combine_lp(&[v(&[3.0]), v(&[-4.0])], &[1.0, 1.0], 1.0).unwrap();
        assert!((out[0].unwrap() - 7.0).abs() < 1e-12);
        // large p approaches the max
        let out = combine_lp(&[v(&[3.0]), v(&[4.0])], &[1.0, 1.0], 64.0).unwrap();
        assert!((out[0].unwrap() - 4.0).abs() < 0.1);
        assert!(combine_lp(&[v(&[1.0])], &[1.0], 0.5).is_err());
    }

    #[test]
    fn zero_iff_all_zero() {
        let out = combine_euclidean(&[v(&[0.0, 0.0]), v(&[0.0, 2.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out[0], Some(0.0));
        assert!(out[1].unwrap() > 0.0);
    }

    #[test]
    fn none_propagates() {
        let out = combine_euclidean(&[vec![None], v(&[1.0])], &[1.0, 1.0]).unwrap();
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn mahalanobis_discounts_correlated_predicates() {
        // two perfectly correlated predicates vs two independent ones:
        // the correlated pair should not double-count
        let a: Vec<Option<f64>> = (0..200).map(|i| Some((i % 17) as f64)).collect();
        let corr = a.clone();
        let indep: Vec<Option<f64>> = (0..200).map(|i| Some(((i * 7) % 13) as f64)).collect();
        let d_corr = combine_mahalanobis(&[a.clone(), corr], 1e-6).unwrap();
        let d_indep = combine_mahalanobis(&[a, indep], 1e-6).unwrap();
        // pick an item with large distances on both parts
        let i = (0..200)
            .max_by(|&x, &y| d_indep[x].partial_cmp(&d_indep[y]).unwrap())
            .unwrap();
        // correlated case must not exceed the independent case by the
        // naive sqrt(2) factor an L2 would apply
        assert!(
            d_corr[i].unwrap() < d_indep[i].unwrap() * 1.45,
            "corr {:?} vs indep {:?}",
            d_corr[i],
            d_indep[i]
        );
    }

    #[test]
    fn mahalanobis_fulfilled_item_is_zero() {
        let a = vec![Some(0.0), Some(5.0), Some(9.0)];
        let b = vec![Some(0.0), Some(2.0), Some(7.0)];
        let out = combine_mahalanobis(&[a, b], 1e-6).unwrap();
        assert!(out[0].unwrap() < 1e-9);
        assert!(out[2].unwrap() > 0.0);
    }

    #[test]
    fn invert_identity_and_singular() {
        let id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(invert(&id).unwrap(), id);
        let sing = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(invert(&sing).is_none());
    }

    proptest! {
        /// Lp is monotone in every child's magnitude.
        #[test]
        fn prop_lp_monotone(d1 in 0.0f64..255.0, d2 in 0.0f64..255.0,
                            bump in 0.0f64..50.0, p in 1.0f64..8.0) {
            let a = combine_lp(&[v(&[d1]), v(&[d2])], &[1.0, 1.0], p).unwrap()[0].unwrap();
            let b = combine_lp(&[v(&[d1 + bump]), v(&[d2])], &[1.0, 1.0], p).unwrap()[0].unwrap();
            prop_assert!(b >= a - 1e-9);
        }

        /// The geometric-mean OR responds to *every* child, while fuzzy
        /// min ignores increases in non-minimal children — the semantic
        /// reason §5.2 prefers the mean (EXPERIMENTS.md ablation 1).
        #[test]
        fn prop_geometric_or_sees_all_children(
            dmin in 1.0f64..50.0, dother in 100.0f64..200.0, bump in 1.0f64..50.0,
        ) {
            use crate::combine::{ablation::combine_or_min, combine_or};
            let before = combine_or(&[v(&[dmin]), v(&[dother])], &[1.0, 1.0]).unwrap()[0].unwrap();
            let after = combine_or(&[v(&[dmin]), v(&[dother + bump])], &[1.0, 1.0]).unwrap()[0].unwrap();
            prop_assert!(after > before, "geometric mean must grow");
            let fm_before = combine_or_min(&[v(&[dmin]), v(&[dother])], &[1.0, 1.0]).unwrap()[0].unwrap();
            let fm_after = combine_or_min(&[v(&[dmin]), v(&[dother + bump])], &[1.0, 1.0]).unwrap()[0].unwrap();
            prop_assert_eq!(fm_before, fm_after, "fuzzy min is blind to the far child");
        }
    }
}
