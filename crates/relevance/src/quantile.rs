//! α-quantiles and the display-fraction rule of §5.1.
//!
//! "The exact way is to use a statistical parameter, namely the
//! α-quantile. ... only data items with an absolute distance in the range
//! [0, p-quantile] are chosen to be presented to the user where p equals
//! r/(n·(#sp+1))."

use visdb_types::{Error, Result};

/// The empirical α-quantile of a slice (nearest-rank definition: the
/// smallest value `ξ` with `F(ξ) ≥ α`). NaNs are ignored.
///
/// Runs in O(n) expected time via `select_nth_unstable` — no full sort is
/// required just to threshold the display set.
pub fn quantile(values: &[f64], alpha: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(Error::invalid_parameter(
            "alpha",
            format!("quantile level must be in [0,1], got {alpha}"),
        ));
    }
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return Err(Error::invalid_parameter("values", "no finite values"));
    }
    let n = v.len();
    // nearest-rank: k = ceil(alpha * n), clamped to [1, n]
    let k = ((alpha * n as f64).ceil() as usize).clamp(1, n);
    let (_, kth, _) =
        v.select_nth_unstable_by(k - 1, |a, b| a.partial_cmp(b).expect("NaNs filtered"));
    Ok(*kth)
}

/// [`quantile`] over data that is **already sorted ascending** (e.g. a
/// `visdb_index::SortedProjection`'s value buffer): the nearest-rank cut
/// becomes one index computation instead of an O(n) selection. Not on
/// any pipeline path today — the slider fast path derives its cuts from
/// positions directly — but it is the primitive a sorted-projection
/// two-sided band would use. The slice must be NaN-free (sorted
/// projections exclude NaN by construction); results are identical to
/// [`quantile`] on the same multiset.
pub fn quantile_sorted(sorted: &[f64], alpha: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&alpha) {
        return Err(Error::invalid_parameter(
            "alpha",
            format!("quantile level must be in [0,1], got {alpha}"),
        ));
    }
    if sorted.is_empty() {
        return Err(Error::invalid_parameter("values", "no finite values"));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending and NaN-free"
    );
    let n = sorted.len();
    let k = ((alpha * n as f64).ceil() as usize).clamp(1, n);
    Ok(sorted[k - 1])
}

/// The display fraction `p = r / (n·(#sp+1))` (§5.1): `r` pixels shared
/// between the overall-result window and one window per selection
/// predicate. When several pixels represent one item, divide `r` first
/// (`pixels_per_item`, §5.1: "the number of presentable data items needs
/// to be divided by the corresponding factor (4 or 16)").
pub fn display_fraction(r: usize, n: usize, num_predicates: usize, pixels_per_item: usize) -> f64 {
    if n == 0 || pixels_per_item == 0 {
        return 0.0;
    }
    let r_items = r / pixels_per_item;
    let p = r_items as f64 / (n as f64 * (num_predicates + 1) as f64);
    p.clamp(0.0, 1.0)
}

/// Two-sided display range for signed distances (§5.1): returns
/// `(lo, hi)` quantile *levels* `[α₀·(1−p), α₀·(1−p)+p]` where `α₀` is the
/// level at which the distances cross zero (the fraction of negative
/// values). Items whose distance quantile-level lies inside the range are
/// displayed, so the window straddles zero proportionally to the sign
/// balance of the data.
pub fn two_sided_range(values: &[f64], p: f64) -> Result<(f64, f64)> {
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::invalid_parameter(
            "p",
            format!("display fraction must be in [0,1], got {p}"),
        ));
    }
    let n = values.iter().filter(|x| !x.is_nan()).count();
    if n == 0 {
        return Err(Error::invalid_parameter("values", "no finite values"));
    }
    let neg = values.iter().filter(|x| !x.is_nan() && **x < 0.0).count();
    let alpha0 = neg as f64 / n as f64;
    let lo = alpha0 * (1.0 - p);
    let hi = lo + p;
    Ok((lo, hi.min(1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 0.2).unwrap(), 1.0);
        assert_eq!(quantile(&v, 0.21).unwrap(), 2.0);
        assert_eq!(quantile(&v, 0.5).unwrap(), 3.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 5.0);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn quantile_ignores_nans() {
        let v = [f64::NAN, 2.0, 1.0];
        assert_eq!(quantile(&v, 1.0).unwrap(), 2.0);
    }

    #[test]
    fn sorted_quantile_matches_selection_quantile() {
        let mut v: Vec<f64> = (0..97).map(|i| ((i * 31) % 53) as f64).collect();
        let mut sorted = v.clone();
        sorted.sort_by(f64::total_cmp);
        for alpha in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                quantile_sorted(&sorted, alpha).unwrap(),
                quantile(&v, alpha).unwrap(),
                "alpha={alpha}"
            );
        }
        v.clear();
        assert!(quantile_sorted(&v, 0.5).is_err());
        assert!(quantile_sorted(&sorted, 1.5).is_err());
    }

    #[test]
    fn display_fraction_formula() {
        // r = 4000 pixels, n = 10000 items, 3 predicates, 1 px/item:
        // p = 4000 / (10000 * 4) = 0.1
        assert_eq!(display_fraction(4000, 10_000, 3, 1), 0.1);
        // 4 pixels per item quarter the budget
        assert_eq!(display_fraction(4000, 10_000, 3, 4), 0.025);
        // degenerate inputs
        assert_eq!(display_fraction(100, 0, 3, 1), 0.0);
        // p clamps to 1 when the screen fits everything
        assert_eq!(display_fraction(1_000_000, 10, 0, 1), 1.0);
    }

    #[test]
    fn two_sided_range_balances_signs() {
        // 40% negative values -> alpha0 = 0.4; p = 0.5
        let v = [-2.0, -1.0, 1.0, 2.0, 3.0];
        let (lo, hi) = two_sided_range(&v, 0.5).unwrap();
        assert!((lo - 0.2).abs() < 1e-12);
        assert!((hi - 0.7).abs() < 1e-12);
        // all positive -> starts at 0
        let v = [1.0, 2.0];
        let (lo, hi) = two_sided_range(&v, 0.5).unwrap();
        assert_eq!(lo, 0.0);
        assert_eq!(hi, 0.5);
    }
}
