//! The end-to-end relevance pipeline: distances → reduction →
//! normalization → combining → relevance factors → display selection.
//!
//! This is the computational spine of VisDB. The paper budgets
//! O(#sp · n) for the distance passes plus O(n log n) for the final sort
//! ("For simple queries and standard distance functions the complexity is
//! O(n logn) ... query processing time is dominated by the time needed
//! for sorting", §3). The default [`ExecMode::Vectorized`] execution
//! beats that budget's constant factors *and* its sort term:
//!
//! * distances come from typed columnar kernels over native column
//!   slices ([`visdb_distance::batch`]), not per-tuple [`Value`]
//!   dispatch;
//! * every O(n) pass — kernels, normalization-apply fused with
//!   combining — walks the rows in chunks fanned out across the shared
//!   budgeted runtime ([`crate::chunk`] over `visdb-exec`), so one
//!   large query parallelizes over rows rather than only across
//!   predicate windows, without ever exceeding the global thread
//!   budget;
//! * the final full sort is replaced by `select_nth_unstable_by` top-k
//!   selection plus a sort of only the displayed prefix whenever the
//!   display policy keeps fewer than n items;
//! * under a horizontal [`Partitioning`]
//!   ([`PipelineOptions::partitions`] / [`run_pipeline_partitioned`]),
//!   every pass is scheduled as per-partition tasks over
//!   partition-sliced column buffers and ranking becomes per-partition
//!   top-k selections merged k-way by relevance rank — bit-identical
//!   output, sharding-shaped scheduling.
//!
//! [`ExecMode::Scalar`] preserves the per-tuple, full-sort reference
//! path; both modes produce bit-identical distances, windows and display
//! sets (property-tested in `tests/properties.rs`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use visdb_distance::frame::{DistanceFrame, FrameStats};
use visdb_distance::registry::DistanceResolver;
use visdb_exec::{fault, fault::Phase, CancelToken, Interrupt};
use visdb_query::ast::{ConditionNode, Weighted};
use visdb_storage::{Database, Partitioning, Table};
use visdb_types::{Error, Result};

use crate::cache::{window_key, PipelineCache, WindowSource};
use crate::chunk;
use crate::combine::{
    combine_and_frames, combine_and_slices, combine_or_frames, combine_or_slices,
};
use crate::eval::{EvalContext, NodeEval};
use crate::normalize::{
    apply_frame, apply_slice, fit_frame, normalize_naive, params_from_max, NormParams, NORM_MAX,
};
use crate::quantile::display_fraction;
use crate::reduction::gap_cutoff;

pub use crate::eval::ExecMode;

/// Wall-clock breakdown of one pipeline run, phase by phase — where the
/// time actually goes at scale (the `pipeline_perf` bench records this
/// in `BENCH_pipeline.json` so the perf trajectory is attributable
/// instead of one end-to-end number). Streaming runs attribute their
/// stats walks to `distance`, fit merges to `fit`, the fused combine
/// pass plus final normalization to `normalize_combine`, and ranking
/// plus the O(k) late window assembly to `rank`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Distance walks over the base relation (kernels or per-tuple),
    /// including the fused per-predicate stats accumulation.
    pub distance: Duration,
    /// §5.2 normalization fits (stats fast path or the packed
    /// selection).
    pub fit: Duration,
    /// The normalize-apply + combine walk (fused in vectorized mode)
    /// plus the final combined normalization.
    pub normalize_combine: Duration,
    /// Ranking and display selection (top-k / sort / merge).
    pub rank: Duration,
}

/// The first-class explain record of one pipeline run, attached to
/// [`PipelineOutput::trace`] when [`PipelineOptions::trace`] is set:
/// the per-phase wall-clock breakdown plus the execution decisions that
/// produced it — which materialization the planner chose, how far the
/// partition fan-out went, how many windows the §6 caches served vs.
/// re-evaluated, and how much work the streaming fit-selection's
/// shared-threshold pruning skipped. This is what `trace: true` server
/// requests return inline and what `pipeline_perf` records as
/// `phase_ms`, so production traces and the bench can never drift
/// apart. Collection costs one branch when disabled (no allocation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineTrace {
    /// Wall-clock per phase (distance / fit / normalize+combine /
    /// rank), same attribution rules as [`PhaseTimings`].
    pub phases: PhaseTimings,
    /// True when the streaming (zero-materialization) executor ran —
    /// the `Auto` planner's choice made visible.
    pub streaming: bool,
    /// Horizontal partition fan-out (1 = unpartitioned).
    pub partitions: usize,
    /// Rows the execution examined: the relation size for materialized
    /// runs (every window evaluation walks all rows), the defined rows
    /// of every per-node stats walk for streaming runs.
    pub rows_scanned: u64,
    /// Rows the streaming fit-selection skipped via the shared atomic
    /// threshold (a late chunk's value at/above an earlier chunk's k-th
    /// smallest never enters a pool). Always 0 on the materialized
    /// path.
    pub rows_pruned: u64,
    /// Top-level windows served from the per-session §6 incremental
    /// cache.
    pub cache_hits: usize,
    /// Top-level windows served from the cross-session shared window
    /// cache.
    pub shared_hits: usize,
    /// Top-level windows actually (re-)evaluated this run.
    pub windows_evaluated: usize,
}

/// Add `elapsed` to a phase of an optional timing collector.
macro_rules! phase_time {
    ($timings:expr, $phase:ident, $body:expr) => {{
        let start = $timings.as_ref().map(|_| Instant::now());
        let out = $body;
        if let (Some(t), Some(start)) = (&mut $timings, start) {
            t.$phase += start.elapsed();
        }
        out
    }};
}

/// How to choose the number of displayed data items (§5.1, §4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum DisplayPolicy {
    /// "simply presenting as many data items as fit on the screen": a
    /// pixel budget shared by the overall window and one window per
    /// predicate, each item taking 1, 4 or 16 pixels.
    FitScreen {
        /// Total pixels available across windows.
        pixels: usize,
        /// Pixels per data item (1, 4 or 16).
        pixels_per_item: usize,
    },
    /// "a user given percentage of the data" (0..=100].
    Percentage(f64),
    /// The multi-peak gap heuristic (§5.1): display up to the largest
    /// density gap between `rmin` and `rmax`, window constant `z`.
    GapHeuristic {
        /// Smallest acceptable display count.
        rmin: usize,
        /// Largest acceptable display count.
        rmax: usize,
        /// Gap window size (`2 < z << rmax - rmin`).
        z: usize,
    },
    /// The two-sided variant for *signed* distances (§5.1): "the range of
    /// values presented to the user is given by
    /// [α₀·(1−p)-quantile, (α₀·(1−p)+p)-quantile] where α₀ is determined
    /// by α₀-quantile = 0". Items are selected around the zero crossing
    /// of the first window's signed raw distances, so the display keeps
    /// under- and over-shooting items in proportion to the data. Falls
    /// back to the one-sided percentage rule when the distances carry no
    /// signs.
    TwoSidedPercentage(f64),
}

impl DisplayPolicy {
    /// An indicative item budget used for weight-proportional
    /// normalization before the display count is finally known. Public
    /// because the sorted-projection slider fast path must reproduce the
    /// pipeline's fit inputs exactly.
    pub fn budget(&self, n: usize) -> usize {
        match self {
            DisplayPolicy::FitScreen {
                pixels,
                pixels_per_item,
            } => (pixels / (*pixels_per_item).max(1)).max(1),
            DisplayPolicy::Percentage(p) => {
                ((n as f64 * (p / 100.0)).ceil() as usize).clamp(1, n.max(1))
            }
            DisplayPolicy::GapHeuristic { rmax, .. } => (*rmax).max(1),
            DisplayPolicy::TwoSidedPercentage(p) => {
                ((n as f64 * (p / 100.0)).ceil() as usize).clamp(1, n.max(1))
            }
        }
    }
}

/// Where a [`PredicateWindow`]'s per-item distances live.
///
/// The materialized representation holds two full-size packed
/// [`DistanceFrame`]s — the cacheable form every window cache stores and
/// the §5.1 two-sided display selection requires. The streaming
/// execution mode instead assembles windows **lazily**: only the
/// *ranked* rows — the sorted prefix `order[..sorted_len]`, a superset
/// of the displayed set (the gap heuristic ranks `rmax + z + 1` rows
/// but may display fewer) — are evaluated, shrinking the per-window
/// footprint from ~9 bytes/row to O(k) for the k ranked items. §4.2
/// windows are position-coherent with the overall window, so ranked
/// rows are the only rows renderers and prefix-walking callers read.
#[derive(Debug, Clone)]
pub enum WindowData {
    /// Fully materialized frames (the default path; required for caching
    /// and for full-relation reads).
    Full {
        /// Raw signed distances per item in packed SoA form (shared with
        /// the incremental caches; cloning a window is cheap).
        raw: Arc<DistanceFrame>,
        /// Normalized absolute distances (`[0, 255]`), packed like `raw`.
        normalized: Arc<DistanceFrame>,
    },
    /// Late-materialized: the ranked (sorted-prefix) rows only,
    /// evaluated after the ranking of the streaming execution mode.
    Displayed(Arc<DisplayedWindow>),
}

/// The late-materialized window payload of the streaming execution mode:
/// raw distances at the ranked (sorted-prefix) row ids plus the
/// full-relation exact-answer count (fused into the streaming combine
/// walk, so the §4.3 panel's `# results` field never needs the full
/// frame).
#[derive(Debug, Clone)]
pub struct DisplayedWindow {
    /// Rows of the base relation (the length a full frame would have).
    n: usize,
    /// `(row, raw signed distance)` for every covered (ranked) row,
    /// ascending by row id; `None` = covered but undefined.
    rows: Vec<(usize, Option<f64>)>,
    /// Exact answers (`raw == 0`) over the **full** relation.
    zeros: usize,
}

impl DisplayedWindow {
    /// Build from covered rows (must be sorted ascending by row id).
    pub fn new(n: usize, rows: Vec<(usize, Option<f64>)>, zeros: usize) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        DisplayedWindow { n, rows, zeros }
    }

    fn raw_at(&self, i: usize) -> Option<f64> {
        self.rows
            .binary_search_by_key(&i, |r| r.0)
            .ok()
            .and_then(|pos| self.rows[pos].1)
    }
}

/// One per-predicate visualization window (§4.2): the raw signed
/// distances, the `[0,255]` normalization, and the fitted parameters so
/// sliders can map colors back to attribute values.
#[derive(Debug, Clone)]
pub struct PredicateWindow {
    /// Window title.
    pub label: String,
    /// Whether the raw distances are signed.
    pub signed: bool,
    /// Weight of this predicate in the query.
    pub weight: f64,
    /// The per-item distance data: materialized full frames or the
    /// streaming mode's displayed-rows slice.
    pub data: WindowData,
    /// The fitted normalization (for color → value lookups).
    pub norm_params: NormParams,
}

impl PredicateWindow {
    /// A window over fully materialized frames (the cacheable form).
    pub fn full(
        label: String,
        signed: bool,
        weight: f64,
        raw: Arc<DistanceFrame>,
        normalized: Arc<DistanceFrame>,
        norm_params: NormParams,
    ) -> Self {
        PredicateWindow {
            label,
            signed,
            weight,
            data: WindowData::Full { raw, normalized },
            norm_params,
        }
    }

    /// Rows of the base relation this window spans.
    pub fn len(&self) -> usize {
        match &self.data {
            WindowData::Full { raw, .. } => raw.len(),
            WindowData::Displayed(d) => d.n,
        }
    }

    /// True when the window spans no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw signed distance of row `i`. For a late-materialized window
    /// only the ranked rows (`order[..sorted_len]`, ⊇ the displayed
    /// set) are covered; uncovered rows read as undefined (exactly like
    /// out-of-range reads on a full frame).
    pub fn raw_at(&self, i: usize) -> Option<f64> {
        match &self.data {
            WindowData::Full { raw, .. } => raw.get(i),
            WindowData::Displayed(d) => d.raw_at(i),
        }
    }

    /// Normalized (`[0, 255]`) distance of row `i`; same coverage rules
    /// as [`PredicateWindow::raw_at`]. The lazy path applies the fitted
    /// params on the fly — the identical float op the materialized
    /// normalize walk performs, so covered rows are bit-identical.
    pub fn normalized_at(&self, i: usize) -> Option<f64> {
        match &self.data {
            WindowData::Full { normalized, .. } => normalized.get(i),
            WindowData::Displayed(d) => d.raw_at(i).map(|v| self.norm_params.apply(v.abs())),
        }
    }

    /// Exact answers of this window (`raw == 0`) over the full relation
    /// — the §4.3 panel's per-slider `# results` field. The streaming
    /// mode fuses this count into its combine walk, so it is exact even
    /// for late-materialized windows.
    pub fn zero_raw_count(&self) -> usize {
        match &self.data {
            WindowData::Full { raw, .. } => raw.iter().filter(|d| *d == Some(0.0)).count(),
            WindowData::Displayed(d) => d.zeros,
        }
    }

    /// The materialized frames, when this window carries them (`None`
    /// for a late-materialized streaming window). Full-relation
    /// consumers — the window caches, the two-sided display band, the
    /// spectrum strips — require this representation.
    pub fn full_frames(&self) -> Option<(&Arc<DistanceFrame>, &Arc<DistanceFrame>)> {
        match &self.data {
            WindowData::Full { raw, normalized } => Some((raw, normalized)),
            WindowData::Displayed(_) => None,
        }
    }

    /// The normalized distances as an `Option` vector over the full row
    /// range (boundary adapters, spectrum rendering). Uncovered rows of
    /// a late-materialized window read as undefined.
    pub fn normalized_options(&self) -> Vec<Option<f64>> {
        match &self.data {
            WindowData::Full { normalized, .. } => normalized.to_options(),
            WindowData::Displayed(d) => {
                let mut out = vec![None; d.n];
                for &(row, raw) in &d.rows {
                    out[row] = raw.map(|v| self.norm_params.apply(v.abs()));
                }
                out
            }
        }
    }
}

/// The pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Number of data items considered.
    pub n: usize,
    /// Normalized combined distance per item (`[0, 255]`, `None` =
    /// undefined / not colorable).
    pub combined: Vec<Option<f64>>,
    /// Relevance factor per item: the inverse of the combined distance,
    /// realised as `NORM_MAX - combined` so exact answers score 255.
    pub relevance: Vec<Option<f64>>,
    /// Item indices ranked by descending relevance (undefined excluded).
    /// Only the first [`PipelineOutput::sorted_len`] entries are sorted;
    /// the tail holds the remaining defined items in unspecified (but
    /// deterministic) order. The vectorized path sizes the sorted prefix
    /// to what the display policy needs (top-k selection); the scalar
    /// reference path sorts everything, paying the classic O(n log n).
    pub order: Vec<usize>,
    /// How many leading entries of `order` are relevance-sorted. Always
    /// at least `displayed.len()`, and exactly `order.len()` under
    /// [`ExecMode::Scalar`] or when the policy displays everything. For
    /// one-sided policies the sorted prefix is the *global* top-k; under
    /// the two-sided policy it is the displayed band (whose members need
    /// not be the globally closest items).
    pub sorted_len: usize,
    /// The items selected for display by the policy, in relevance order.
    /// For one-sided policies this is a prefix of `order`; the two-sided
    /// §5.1 rule instead selects around the primary window's zero
    /// crossing.
    pub displayed: Vec<usize>,
    /// Number of exact answers (combined distance 0).
    pub num_exact: usize,
    /// One window per top-level selection predicate.
    pub windows: Vec<PredicateWindow>,
    /// The explain record, when [`PipelineOptions::trace`] asked for
    /// one (`None` otherwise — the disabled path allocates nothing).
    pub trace: Option<Box<PipelineTrace>>,
}

impl PipelineOutput {
    /// Relevance rank of an item: its position within the sorted prefix
    /// of [`PipelineOutput::order`], or `None` when the item is undefined
    /// or ranked beyond [`PipelineOutput::sorted_len`] — positions in the
    /// unsorted tail carry no rank information, so callers comparing
    /// ranks must use this instead of `order.iter().position(..)`.
    pub fn rank_of(&self, item: usize) -> Option<usize> {
        self.order[..self.sorted_len]
            .iter()
            .position(|&i| i == item)
    }

    /// Fraction of items displayed (the `% displayed` panel field).
    pub fn displayed_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.displayed.len() as f64 / self.n as f64
        }
    }
}

/// How the pipeline materializes its intermediates (the tentpole knob of
/// the streaming execution mode).
///
/// The **materialized** path computes one full-size packed
/// [`DistanceFrame`] pair per predicate window — the representation the
/// window caches store and reuse across sessions. The **streaming** path
/// never builds full-size per-predicate intermediates: it walks the
/// chunks twice (a fused stats/fit pass that *recomputes* distances
/// instead of storing them, then a fused distance → normalize → combine
/// pass streaming straight into the combined vector) and assembles the
/// per-predicate windows lazily at the displayed row ids only. Both
/// paths are **bit-identical** in every output (property-tested); the
/// choice trades per-query memory traffic against cache reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Materialization {
    /// The planner decides per query: stream when no window caches are
    /// attached (nothing could be reused or stored) and the query shape
    /// supports it; materialize otherwise.
    #[default]
    Auto,
    /// Always run the materialized path.
    Materialized,
    /// Stream whenever the query shape supports it (attached caches are
    /// bypassed — neither consulted nor fed); fall back to the
    /// materialized path otherwise. The fallback shapes are subqueries
    /// (their approximate join evaluates the inner relation, not a
    /// per-row function of the base relation), non-invertible negations,
    /// the two-sided display policy (its quantile band needs the primary
    /// window's full signed distance distribution), and
    /// [`ExecMode::Scalar`] — the scalar reference always runs its
    /// per-tuple materialized walk, so forcing `Streaming` there is a
    /// silent no-op. Connections and string/ordinal predicates stream.
    Streaming,
}

/// A shared cross-session window cache handle (see
/// [`crate::cache::WindowSource`]). `scope` must uniquely identify the
/// dataset *generation* — it anchors every key this run produces.
#[derive(Clone, Copy)]
pub struct SharedWindows<'a> {
    /// Dataset scope (e.g. `name#generation` in `visdb-service`).
    pub scope: &'a str,
    /// The cache implementation.
    pub cache: &'a dyn WindowSource,
}

/// Optional machinery around a pipeline run.
#[derive(Default)]
pub struct PipelineOptions<'a> {
    /// §6 incremental recalculation: per-session reuse of unchanged
    /// windows across query modifications.
    pub cache: Option<&'a mut PipelineCache>,
    /// Cross-session predicate-window reuse (the serving layer's shared
    /// cache); consulted after the per-session cache misses.
    pub shared: Option<SharedWindows<'a>>,
    /// Columnar fast path (default) vs per-tuple reference path.
    pub mode: ExecMode,
    /// Horizontal partitioning of the base relation. When set (and the
    /// mode is vectorized), every O(n) pass runs as per-partition
    /// runtime tasks over partition-sliced column buffers, and ranking
    /// becomes per-partition top-k selections merged k-way by relevance
    /// rank. Results are **bit-identical** to the unpartitioned path
    /// (property-tested) — partitioning is purely a scheduling/sharding
    /// decision. Ignored under [`ExecMode::Scalar`], which stays the
    /// strictly sequential reference.
    pub partitions: Option<&'a Partitioning>,
    /// When true, the run collects a [`PipelineTrace`] (per-phase wall
    /// clock + execution decisions) into [`PipelineOutput::trace`].
    /// Costs one branch and one small allocation per run when enabled,
    /// one branch when disabled.
    pub trace: bool,
    /// Streaming vs materialized execution (see [`Materialization`]).
    pub materialization: Materialization,
    /// Cooperative cancellation / deadline token. When set, every chunk
    /// walk polls it once per 16k-row chunk and the run stops at the
    /// next phase boundary with [`Error::Cancelled`] /
    /// [`Error::DeadlineExceeded`] — crucially *before* any window from
    /// the disturbed run can reach the session or shared caches, so a
    /// re-ask is byte-identical to a cold run. `None` costs one branch
    /// per chunk.
    pub cancel: Option<&'a CancelToken>,
}

/// A phase-boundary cancellation checkpoint: runs any armed fault
/// injection for `phase`, then maps a tripped token into the pipeline's
/// error. Placed before every phase *and* before the cache-store block,
/// so a cancelled run's garbage windows (fast-drained chunks look like
/// all-undefined rows — valid-shaped but wrong) can never be cached.
pub(crate) fn checkpoint(cancel: Option<&CancelToken>, phase: Phase) -> Result<()> {
    let Some(token) = cancel else { return Ok(()) };
    fault::check(phase, token);
    match token.interrupted() {
        None => Ok(()),
        Some(Interrupt::Cancelled) => Err(Error::Cancelled),
        Some(Interrupt::DeadlineExceeded) => Err(Error::DeadlineExceeded),
    }
}

/// Run the pipeline over a base relation.
///
/// `condition = None` marks every item an exact answer (a pure scan).
pub fn run_pipeline(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
) -> Result<PipelineOutput> {
    run_pipeline_opts(
        db,
        table,
        resolver,
        condition,
        policy,
        PipelineOptions::default(),
    )
}

/// [`run_pipeline`] forced onto the per-tuple, full-sort reference path.
/// Exists for the equivalence property tests and the
/// scalar-vs-vectorized benchmark; results are bit-identical to the
/// default path (up to the unsorted tail of [`PipelineOutput::order`]).
pub fn run_pipeline_scalar(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
) -> Result<PipelineOutput> {
    run_pipeline_opts(
        db,
        table,
        resolver,
        condition,
        policy,
        PipelineOptions {
            mode: ExecMode::Scalar,
            ..Default::default()
        },
    )
}

/// [`run_pipeline`] with incremental recalculation (§6): top-level window
/// evaluations whose condition subtree is unchanged since the previous
/// run are served from `cache` instead of re-evaluated. Pass the same
/// cache across interactive modifications; see
/// [`crate::cache::PipelineCache`].
pub fn run_pipeline_cached(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
    cache: Option<&mut PipelineCache>,
) -> Result<PipelineOutput> {
    run_pipeline_opts(
        db,
        table,
        resolver,
        condition,
        policy,
        PipelineOptions {
            cache,
            ..Default::default()
        },
    )
}

/// [`run_pipeline`] over `parts` horizontal partitions of the base
/// relation: per-partition distance/normalize/combine passes scheduled
/// as runtime tasks, per-partition top-k selections merged k-way by
/// relevance rank. Output is bit-identical to the unpartitioned path —
/// this is the single-box rehearsal of multi-box sharding.
pub fn run_pipeline_partitioned(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
    parts: usize,
) -> Result<PipelineOutput> {
    let partitioning = table.partitions(parts);
    run_pipeline_opts(
        db,
        table,
        resolver,
        condition,
        policy,
        PipelineOptions {
            partitions: Some(&partitioning),
            ..Default::default()
        },
    )
}

/// The fully-optioned pipeline entry point.
pub fn run_pipeline_opts(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
    opts: PipelineOptions<'_>,
) -> Result<PipelineOutput> {
    let PipelineOptions {
        mut cache,
        shared,
        mode,
        partitions,
        trace: want_trace,
        materialization,
        cancel,
    } = opts;
    let mut trace = want_trace.then(Box::<PipelineTrace>::default);
    let n = table.len();
    // partitioning is a vectorized-only scheduling decision; a single
    // partition is the unpartitioned walk, and below
    // [`PARTITION_MIN_ROWS`] the planner drops a requested partitioning
    // entirely — per-partition task dispatch and the k-way selection
    // merge are pure overhead on small relations, and the outputs are
    // bit-identical either way (pinned by `partition_planner_threshold`)
    let partitions = match partitions {
        Some(p) if mode == ExecMode::Vectorized => {
            if p.rows() != n {
                return Err(Error::invalid_parameter(
                    "partitions",
                    format!("partitioning covers {} rows, relation has {n}", p.rows()),
                ));
            }
            (p.len() > 1 && n >= PARTITION_MIN_ROWS).then_some(p)
        }
        _ => None,
    };
    let Some(cond) = condition else {
        // pure scan: every item is an exact answer; (0..n) is already the
        // relevance order (all-zero distances, index tiebreak)
        let combined = vec![Some(0.0); n];
        let order: Vec<usize> = (0..n).collect();
        let displayed = select_display(&combined, &order, policy, 0, None)?;
        if let Some(t) = &mut trace {
            t.partitions = partitions.map_or(1, |p| p.len());
            t.rows_scanned = n as u64;
        }
        return Ok(PipelineOutput {
            n,
            relevance: vec![Some(NORM_MAX); n],
            sorted_len: order.len(),
            order,
            displayed,
            num_exact: n,
            windows: Vec::new(),
            combined,
            trace,
        });
    };

    if let DisplayPolicy::Percentage(p) | DisplayPolicy::TwoSidedPercentage(p) = policy {
        if !(0.0..=100.0).contains(p) || *p <= 0.0 {
            return Err(Error::invalid_parameter(
                "percentage",
                format!("must be in (0, 100], got {p}"),
            ));
        }
    }

    let ctx = EvalContext {
        db,
        table,
        resolver,
        display_budget: policy.budget(n),
        mode,
        partitions,
        cancel,
    };

    // Top-level windows: the direct children of a root AND/OR, otherwise
    // the root itself (§3: "we generate a separate window for each
    // selection predicate of the query").
    let top: Vec<&Weighted> = match &cond.node {
        ConditionNode::And(cs) | ConditionNode::Or(cs) => cs.iter().collect(),
        _ => vec![cond],
    };

    // The streaming planner: zero-materialization execution whenever the
    // caches could neither be consulted nor fed (Auto) or the caller
    // explicitly asked for it, the query compiles to per-row streamable
    // nodes, and the display policy does not need a full window frame
    // (the two-sided band fits quantiles over the primary window's whole
    // signed distribution). Shapes the compiler declines fall back to
    // the materialized path below — bit-identical either way.
    let want_stream = match materialization {
        Materialization::Materialized => false,
        Materialization::Streaming => true,
        Materialization::Auto => cache.is_none() && shared.is_none(),
    };
    if want_stream
        && mode == ExecMode::Vectorized
        && !matches!(policy, DisplayPolicy::TwoSidedPercentage(_))
    {
        if let Some(plan) = crate::stream::compile(&ctx, cond, &top) {
            return crate::stream::run_streaming(&ctx, &plan, policy, trace);
        }
    }

    // Serve structurally-unchanged windows (same subtree AND weight) from
    // the per-session incremental cache, then from the cross-session
    // shared cache; evaluate the rest. Window data is Arc-shared, so
    // cache hits avoid both the O(n) distance pass and the
    // weight-proportional normalization.
    let mut slots: Vec<Option<PredicateWindow>> = match &mut cache {
        Some(cache) => {
            cache.validate(table, ctx.display_budget);
            top.iter()
                .map(|w| {
                    cache
                        .lookup(&w.node, w.weight)
                        // only materialized windows can be reused: a
                        // late-materialized one covers displayed rows of
                        // a *previous* display selection
                        .filter(|w| w.full_frames().is_some())
                })
                .collect()
        }
        None => vec![None; top.len()],
    };
    let session_hits = slots.iter().flatten().count();
    let mut shared_keys: Vec<Option<String>> = match shared {
        Some(sh) => top
            .iter()
            .zip(&slots)
            .map(|(w, slot)| {
                slot.is_none()
                    .then(|| window_key(sh.scope, table, ctx.display_budget, w.weight, &w.node))
            })
            .collect(),
        None => vec![None; top.len()],
    };
    if let Some(sh) = shared {
        for (slot, key) in slots.iter_mut().zip(shared_keys.iter_mut()) {
            if slot.is_none() {
                if let Some(k) = key.as_deref() {
                    *slot = sh.cache.lookup(k).filter(|w| w.full_frames().is_some());
                    if slot.is_some() {
                        // hit: drop the key so the post-run store loop
                        // doesn't re-insert (and re-scan) on every query
                        *key = None;
                    }
                }
            }
        }
    }
    let shared_hits = slots.iter().flatten().count() - session_hits;
    let missing: Vec<&Weighted> = top
        .iter()
        .zip(&slots)
        .filter(|(_, got)| got.is_none())
        .map(|(w, _)| *w)
        .collect();
    let windows_evaluated = missing.len();
    let mut timings = trace.as_deref_mut().map(|t| &mut t.phases);
    checkpoint(cancel, Phase::Distance)?;
    let fresh = phase_time!(timings, distance, eval_windows(&ctx, &missing)?);

    // a token that tripped mid-eval left fast-drained chunks behind —
    // all-undefined rows that look valid-shaped but are wrong; stop
    // before the fit can see them
    checkpoint(cancel, Phase::Fit)?;
    let (windows, combined_raw, root_acc) = match mode {
        ExecMode::Scalar => {
            let (windows, combined_raw) =
                combine_scalar(&ctx, cond, &top, slots, fresh, &mut timings)?;
            (windows, combined_raw, None)
        }
        ExecMode::Vectorized => {
            let (windows, combined_raw, acc) =
                combine_vectorized(&ctx, cond, &top, slots, fresh, &mut timings);
            (windows, combined_raw, Some(acc))
        }
    };

    // The last gate before the caches: a run interrupted during combine
    // must not publish its windows to either layer.
    checkpoint(cancel, Phase::NormalizeCombine)?;

    // Freshly evaluated windows feed both cache layers (keys survive
    // only for windows that were actually evaluated this run). Windows
    // whose shape supports it carry an extension recipe so the append
    // path can grow them by delta rows instead of re-evaluating.
    if let Some(sh) = shared {
        for ((win, key), w) in windows.iter().zip(shared_keys).zip(&top) {
            if let Some(key) = key {
                let recipe = win.full_frames().and_then(|(raw, _)| {
                    crate::extend::extension_recipe(&ctx, w, FrameStats::of_frame(raw))
                });
                sh.cache.store(key, win.clone(), recipe);
            }
        }
    }
    if let Some(cache) = &mut cache {
        cache.store(
            top.iter()
                .map(|w| w.node.clone())
                .zip(windows.iter().cloned())
                .collect(),
        );
    }

    let (combined, relevance, num_exact) = phase_time!(timings, normalize_combine, {
        match root_acc {
            // scalar reference: whole-vector normalization plus separate
            // relevance and exact-count passes
            None => {
                let (combined, _) = normalize_combined(&combined_raw);
                let relevance: Vec<Option<f64>> =
                    combined.iter().map(|d| d.map(|x| NORM_MAX - x)).collect();
                let num_exact = combined_raw
                    .iter()
                    .filter(|d| matches!(d, Some(x) if *x == 0.0))
                    .count();
                (combined, relevance, num_exact)
            }
            // vectorized: the fused walk already folded the fit inputs
            // and the exact count, so the finish is a single
            // chunk-parallel in-place normalize + relevance pass — the
            // same walk the streaming pipeline uses
            Some(acc) => {
                let mut combined = combined_raw;
                let mut relevance: Vec<Option<f64>> = vec![None; n];
                finalize_relevance(
                    &mut combined,
                    &mut relevance,
                    acc.any_nonzero,
                    params_from_max(acc.max_abs),
                    &chunk::ranges(n, partitions),
                    n >= PARALLEL_THRESHOLD,
                );
                (combined, relevance, acc.num_exact)
            }
        }
    });

    // Rank and select. The scalar reference pays the paper's dominant
    // O(n log n) full sort; the vectorized path selects the policy's
    // top k and sorts only that prefix; the partitioned path selects
    // per partition and merges the selections k-way by relevance rank.
    checkpoint(cancel, Phase::Rank)?;
    let (order, displayed, sorted_len) = phase_time!(timings, rank, {
        match (mode, partitions) {
            (ExecMode::Scalar, _) => {
                let mut order: Vec<usize> = (0..n).filter(|&i| combined[i].is_some()).collect();
                order.sort_by(|&a, &b| rank_cmp(&combined, a, b));
                let displayed =
                    select_display(&combined, &order, policy, windows.len(), Some(&windows))?;
                let sorted_len = order.len();
                (order, displayed, sorted_len)
            }
            (ExecMode::Vectorized, None) => {
                rank_and_select(&combined, &windows, policy, windows.len())?
            }
            (ExecMode::Vectorized, Some(p)) => {
                rank_and_select_partitioned(&combined, &windows, policy, windows.len(), p)?
            }
        }
    });

    if let Some(t) = &mut trace {
        // every materialized window evaluation scans the full relation;
        // only the streaming fit-selection can prune
        t.partitions = partitions.map_or(1, |p| p.len());
        t.rows_scanned = n as u64;
        t.cache_hits = session_hits;
        t.shared_hits = shared_hits;
        t.windows_evaluated = windows_evaluated;
    }
    Ok(PipelineOutput {
        n,
        combined,
        relevance,
        order,
        sorted_len,
        displayed,
        num_exact,
        windows,
        trace,
    })
}

/// The scalar reference combine: normalize each fresh window in full,
/// then combine whole frames at the root — the per-row arithmetic of the
/// pre-vectorization code path, kept as the correctness baseline (the
/// storage is packed now, but every row still goes through the same
/// `fit` → `apply` → `and_row`/`or_row` sequence).
fn combine_scalar(
    ctx: &EvalContext<'_>,
    cond: &Weighted,
    top: &[&Weighted],
    mut slots: Vec<Option<PredicateWindow>>,
    fresh: Vec<NodeEval>,
    timings: &mut Option<&mut PhaseTimings>,
) -> Result<(Vec<PredicateWindow>, Vec<Option<f64>>)> {
    let mut fresh_it = fresh.into_iter();
    for (slot, w) in slots.iter_mut().zip(top.iter()) {
        if slot.is_none() {
            let e = fresh_it.next().expect("one eval per missing window");
            let params = phase_time!(
                (*timings),
                fit,
                fit_frame(&e.distances, &e.stats, w.weight, ctx.display_budget)
            );
            let normalized = phase_time!(
                (*timings),
                normalize_combine,
                apply_frame(&e.distances, params)
            );
            *slot = Some(PredicateWindow::full(
                e.label,
                e.signed,
                w.weight,
                Arc::new(e.distances),
                Arc::new(normalized),
                params,
            ));
        }
    }
    let windows: Vec<PredicateWindow> = slots
        .into_iter()
        .map(|s| s.expect("filled above"))
        .collect();
    let weights: Vec<f64> = top.iter().map(|w| w.weight).collect();
    let normed_children: Vec<&DistanceFrame> = windows
        .iter()
        .map(|w| {
            w.full_frames()
                .expect("materialized path builds full windows")
                .1
                .as_ref()
        })
        .collect();
    let combined_raw = phase_time!((*timings), normalize_combine, {
        match &cond.node {
            ConditionNode::Or(_) => combine_or_frames(&normed_children, &weights)?
                .0
                .to_options(),
            ConditionNode::And(_) => combine_and_frames(&normed_children, &weights)?
                .0
                .to_options(),
            _ => normed_children[0].to_options(),
        }
    });
    Ok((windows, combined_raw))
}

/// The vectorized combine: fit each fresh window's normalization from
/// its fused distance-walk stats ([`fit_frame`] — zero extra passes when
/// the fit covers every defined item, an 8-byte selection otherwise),
/// then fill the packed normalized frames *and* the root combination in
/// one fused, chunk-parallel walk — each row is touched once instead of
/// once per pass, and the bytes streamed per window drop from 16 to 9
/// per row.
/// Root-combine accumulator of the fused vectorized walk: everything the
/// final combined normalization needs ([`params_from_max`] input plus
/// [`normalize_combined`]'s any-nonzero guard) and the exact-match count,
/// folded while the combined values are still in registers — so the
/// materialized path, like the streaming one, never re-reads the combined
/// vector between combining and the finalize pass. All three folds are
/// set operations (max / or / sum), so per-range accumulation and merging
/// is bit-identical to the scalar reference's single pass.
struct RootAcc {
    /// Largest finite |combined| over defined rows (`-inf` when none) —
    /// exactly the fold [`normalize_naive`]'s fit performs.
    max_abs: f64,
    /// Any defined combined value `!= 0.0` (NaN counts: it is not 0),
    /// matching [`normalize_combined`]'s test.
    any_nonzero: bool,
    /// Defined rows whose combined distance is exactly 0.0.
    num_exact: usize,
}

impl Default for RootAcc {
    fn default() -> Self {
        RootAcc {
            max_abs: f64::NEG_INFINITY,
            any_nonzero: false,
            num_exact: 0,
        }
    }
}

impl RootAcc {
    fn merge(&mut self, other: &RootAcc) {
        self.max_abs = self.max_abs.max(other.max_abs);
        self.any_nonzero |= other.any_nonzero;
        self.num_exact += other.num_exact;
    }
}

/// The shared finalize pass of the materialized-vectorized and streaming
/// paths: apply [`normalize_combined`] semantics in place (all-exact
/// inputs keep their zeros) and mirror `relevance = NORM_MAX − v`, fanned
/// out over the given row ranges.
pub(crate) fn finalize_relevance(
    combined: &mut [Option<f64>],
    relevance: &mut [Option<f64>],
    any_nonzero: bool,
    final_params: NormParams,
    ranges: &[(usize, usize)],
    parallel: bool,
) {
    type NormTask<'t> = (&'t mut [Option<f64>], &'t mut [Option<f64>]);
    let tasks: Vec<NormTask<'_>> = chunk::split_ranges(combined, ranges)
        .into_iter()
        .zip(chunk::split_ranges(relevance, ranges))
        .collect();
    chunk::run_striped(tasks, parallel, move |(comb, rel)| {
        for (c, r) in comb.iter_mut().zip(rel.iter_mut()) {
            if let Some(d) = *c {
                let v = if any_nonzero {
                    final_params.apply(d.abs())
                } else {
                    d
                };
                *c = Some(v);
                *r = Some(NORM_MAX - v);
            }
        }
    });
}

fn combine_vectorized(
    ctx: &EvalContext<'_>,
    cond: &Weighted,
    top: &[&Weighted],
    slots: Vec<Option<PredicateWindow>>,
    fresh: Vec<NodeEval>,
    timings: &mut Option<&mut PhaseTimings>,
) -> (Vec<PredicateWindow>, Vec<Option<f64>>, RootAcc) {
    let n = ctx.table.len();
    let weights: Vec<f64> = top.iter().map(|w| w.weight).collect();

    /// Per-window input to the fused walk, as raw SoA slices.
    enum Src<'a> {
        /// Cache hit: normalized values already exist.
        Ready(&'a [f64], &'a [bool]),
        /// Fresh eval: normalize into `fresh_norm[slot]` on the fly.
        Fresh {
            raw_vals: &'a [f64],
            raw_mask: &'a [bool],
            params: NormParams,
            slot: usize,
        },
    }

    let fresh_params: Vec<NormParams> = phase_time!((*timings), fit, {
        let mut params = Vec::with_capacity(fresh.len());
        let mut fresh_idx = 0;
        for (slot, w) in slots.iter().zip(top.iter()) {
            if slot.is_none() {
                let e = &fresh[fresh_idx];
                params.push(fit_frame(
                    &e.distances,
                    &e.stats,
                    w.weight,
                    ctx.display_budget,
                ));
                fresh_idx += 1;
            }
        }
        params
    });
    let mut fresh_norm: Vec<DistanceFrame> =
        fresh.iter().map(|_| DistanceFrame::undefined(n)).collect();
    let mut combined_raw: Vec<Option<f64>> = vec![None; n];

    // 0 = single window at the root, 1 = AND, 2 = OR — mirrors the
    // root-match of the scalar path exactly.
    let root = match &cond.node {
        ConditionNode::And(_) => 1u8,
        ConditionNode::Or(_) => 2u8,
        _ => 0u8,
    };

    let acc = phase_time!((*timings), normalize_combine, {
        let mut srcs: Vec<Src<'_>> = Vec::with_capacity(top.len());
        let mut fresh_idx = 0;
        for slot in &slots {
            match slot {
                Some(w) => {
                    let (_, normalized) = w
                        .full_frames()
                        .expect("cache hits are filtered to materialized windows");
                    srcs.push(Src::Ready(
                        normalized.values(),
                        normalized.validity().as_slice(),
                    ));
                }
                None => {
                    let raw = &fresh[fresh_idx].distances;
                    srcs.push(Src::Fresh {
                        raw_vals: raw.values(),
                        raw_mask: raw.validity().as_slice(),
                        params: fresh_params[fresh_idx],
                        slot: fresh_idx,
                    });
                    fresh_idx += 1;
                }
            }
        }

        /// One fused-walk task: a row offset, that row range of the
        /// combined output, the same range of every fresh window's
        /// normalized frame buffers, and the range's root accumulator.
        type FusedTask<'a> = (
            usize,
            &'a mut [Option<f64>],
            Vec<(&'a mut [f64], &'a mut [bool])>,
            &'a mut RootAcc,
        );

        // split the combined vector and every fresh normalized frame in
        // lockstep — by partition-respecting ranges, so one task owns the
        // same row range of all outputs and never crosses a partition
        let ranges = chunk::ranges(n, ctx.partitions);
        let mut range_accs: Vec<RootAcc> = ranges.iter().map(|_| RootAcc::default()).collect();
        let mut fresh_iters: Vec<_> = fresh_norm
            .iter_mut()
            .map(|f| f.split_ranges_mut(&ranges).into_iter())
            .collect();
        let mut tasks: Vec<FusedTask<'_>> = Vec::new();
        for (((offset, _), comb), acc) in ranges
            .iter()
            .copied()
            .zip(chunk::split_ranges(&mut combined_raw, &ranges))
            .zip(range_accs.iter_mut())
        {
            let parts: Vec<(&mut [f64], &mut [bool])> = fresh_iters
                .iter_mut()
                .map(|it| it.next().expect("lockstep chunking"))
                .collect();
            tasks.push((offset, comb, parts, acc));
        }
        let srcs = &srcs;
        let weights = &weights;
        let arena = chunk::ScratchArena::new();
        let arena = &arena;
        // The fused walk, restructured from a per-row Option loop into
        // branchless SoA kernel calls per chunk: normalize-apply each
        // fresh child into its packed frame ([`apply_slice`] — validity
        // words drive lane masks), combine the child chunks at the root
        // ([`combine_and_slices`]/[`combine_or_slices`]), then write the
        // Option outputs while folding the finalize inputs with
        // branch-free selects. Bit-identical to the old per-row walk:
        // every kernel is proven exact against the scalar reference (see
        // the kernels' docs), and the fold order per row range is
        // unchanged.
        let cancel = ctx.cancel;
        chunk::run_striped(
            tasks,
            n >= chunk::PAR_MIN_ROWS,
            move |(offset, comb, mut parts, acc)| {
                use visdb_distance::lanes::select;
                // fast-drain: a tripped token skips the chunk body; the
                // NormalizeCombine checkpoint after this walk discards
                // the half-combined output before anything is cached
                if cancel.is_some_and(|c| c.should_stop(Phase::NormalizeCombine)) {
                    return;
                }
                let len = comb.len();
                for src in srcs {
                    if let Src::Fresh {
                        raw_vals,
                        raw_mask,
                        params,
                        slot,
                    } = src
                    {
                        let (ov, om) = &mut parts[*slot];
                        apply_slice(
                            *params,
                            &raw_vals[offset..offset + len],
                            &raw_mask[offset..offset + len],
                            ov,
                            om,
                        );
                    }
                }
                let views: Vec<(&[f64], &[bool])> = srcs
                    .iter()
                    .map(|src| match src {
                        Src::Ready(vals, mask) => {
                            (&vals[offset..offset + len], &mask[offset..offset + len])
                        }
                        Src::Fresh { slot, .. } => {
                            let (ov, om) = &parts[*slot];
                            (&ov[..], &om[..])
                        }
                    })
                    .collect();
                let mut scratch = arena.take();
                let (cv, cm): (&[f64], &[bool]) = if root == 0 {
                    views[0]
                } else {
                    let (cv, cm) = &mut scratch.frames(1, len)[0];
                    if root == 1 {
                        combine_and_slices(&views, weights, cv, cm);
                    } else {
                        combine_or_slices(&views, weights, cv, cm);
                    }
                    (cv.as_slice(), cm.as_slice())
                };
                // undefined rows carry canonical 0.0 in every packed
                // buffer, so the masked folds below see a harmless value
                for (out, (&x, &ok)) in comb.iter_mut().zip(cv.iter().zip(cm)) {
                    *out = ok.then_some(x);
                    acc.num_exact += (ok && x == 0.0) as usize;
                    acc.any_nonzero |= ok && x != 0.0;
                    let a = x.abs();
                    acc.max_abs =
                        acc.max_abs
                            .max(select(ok && a.is_finite(), a, f64::NEG_INFINITY));
                }
            },
        );
        let mut acc = RootAcc::default();
        for range_acc in &range_accs {
            acc.merge(range_acc);
        }
        acc
    });

    let mut fresh_it = fresh
        .into_iter()
        .zip(fresh_params)
        .zip(fresh_norm)
        .map(|((e, params), normalized)| (e, params, normalized));
    let windows: Vec<PredicateWindow> = slots
        .into_iter()
        .zip(top.iter())
        .map(|(slot, w)| match slot {
            Some(win) => win,
            None => {
                let (e, params, normalized) = fresh_it.next().expect("one eval per missing window");
                PredicateWindow::full(
                    e.label,
                    e.signed,
                    w.weight,
                    Arc::new(e.distances),
                    Arc::new(normalized),
                    params,
                )
            }
        })
        .collect();
    (windows, combined_raw, acc)
}

/// The relevance ranking's total order: ascending combined distance with
/// index tiebreak (ties are impossible under the comparator, which makes
/// partial selection + prefix sort reproduce the full sort's prefix
/// exactly).
#[inline]
fn rank_cmp(combined: &[Option<f64>], a: usize, b: usize) -> std::cmp::Ordering {
    combined[a]
        .partial_cmp(&combined[b])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

/// Sort only the `k` smallest entries of `idx` to the front (top-k
/// selection): O(m + k log k) instead of the full O(m log m) sort.
fn sort_prefix(idx: &mut [usize], k: usize, combined: &[Option<f64>]) {
    if k == 0 || idx.is_empty() {
        return;
    }
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(combined, a, b));
        idx[..k].sort_unstable_by(|&a, &b| rank_cmp(combined, a, b));
    } else {
        idx.sort_unstable_by(|&a, &b| rank_cmp(combined, a, b));
    }
}

// ----- display-policy math shared by both execution modes ---------------
//
// The scalar path (full sort, `select_display`) and the vectorized path
// (top-k, `rank_and_select`) must stay bit-identical; every k-formula
// and band predicate therefore exists exactly once, below.

/// `Percentage` display count — also the two-sided policy's fallback.
fn percentage_count(p: f64, n: usize, defined: usize) -> usize {
    (((p / 100.0) * n as f64).round() as usize).min(defined)
}

/// The display count a *pure top-k* policy selects over `n` items of
/// which `defined` have a defined combined distance, or `None` for the
/// policies whose selection is not a plain top-k (gap heuristic,
/// two-sided band). Public so the sorted-projection slider fast path
/// selects exactly the set the pipeline would.
pub fn display_count(
    policy: &DisplayPolicy,
    n: usize,
    defined: usize,
    num_windows: usize,
) -> Option<usize> {
    match policy {
        DisplayPolicy::Percentage(p) => Some(percentage_count(*p, n, defined)),
        DisplayPolicy::FitScreen {
            pixels,
            pixels_per_item,
        } => Some(fit_screen_count(
            *pixels,
            *pixels_per_item,
            n,
            num_windows,
            defined,
        )),
        DisplayPolicy::GapHeuristic { .. } | DisplayPolicy::TwoSidedPercentage(_) => None,
    }
}

/// `FitScreen` display count (§5.1 `p = r / (n·(#sp+1))`).
fn fit_screen_count(
    pixels: usize,
    pixels_per_item: usize,
    n: usize,
    num_windows: usize,
    defined: usize,
) -> usize {
    let p = display_fraction(pixels, n, num_windows, pixels_per_item);
    ((p * n as f64).floor() as usize).min(defined)
}

/// Effective `(rmin, rmax)` of the gap heuristic, clamped to the number
/// of defined items (`defined` must be > 0).
fn gap_bounds(rmin: usize, rmax: usize, defined: usize) -> (usize, usize) {
    let rmax_eff = rmax.min(defined - 1);
    (rmin.min(rmax_eff), rmax_eff)
}

/// The two-sided quantile band of the primary window's signed raw
/// distances (`None` when the window has no defined distances). Needs
/// the full distance distribution, which is why the streaming planner
/// declines the two-sided policy: only materialized windows reach here.
fn two_sided_band(win: &PredicateWindow, p: f64) -> Result<Option<(f64, f64)>> {
    let (raw, _) = win
        .full_frames()
        .expect("two-sided selection runs on materialized windows only");
    let signed: Vec<f64> = raw.iter().flatten().collect();
    if signed.is_empty() {
        return Ok(None);
    }
    let (lo_level, hi_level) = crate::quantile::two_sided_range(&signed, p / 100.0)?;
    let lo = crate::quantile::quantile(&signed, lo_level)?;
    let hi = crate::quantile::quantile(&signed, hi_level)?;
    Ok(Some((lo, hi)))
}

/// Two-sided membership: inside the band, or an exact answer
/// ("exact answers always display", §5.1).
fn in_two_sided_band(win: &PredicateWindow, lo: f64, hi: f64, i: usize) -> bool {
    match win.raw_at(i) {
        Some(d) => (d >= lo && d <= hi) || d == 0.0,
        None => false,
    }
}

/// Vectorized ranking + display selection: compute how many items the
/// policy can display, top-k select exactly that many (plus the gap
/// heuristic's scan window / the two-sided quantile band), and sort only
/// the selected prefix.
pub(crate) fn rank_and_select(
    combined: &[Option<f64>],
    windows: &[PredicateWindow],
    policy: &DisplayPolicy,
    num_windows: usize,
) -> Result<(Vec<usize>, Vec<usize>, usize)> {
    let n = combined.len();
    let mut defined: Vec<usize> = (0..n).filter(|&i| combined[i].is_some()).collect();
    let m = defined.len();
    let top_k = |mut defined: Vec<usize>, k: usize| {
        sort_prefix(&mut defined, k, combined);
        let displayed = defined[..k].to_vec();
        Ok((defined, displayed, k))
    };
    match policy {
        DisplayPolicy::Percentage(p) => top_k(defined, percentage_count(*p, n, m)),
        DisplayPolicy::FitScreen {
            pixels,
            pixels_per_item,
        } => top_k(
            defined,
            fit_screen_count(*pixels, *pixels_per_item, n, num_windows, m),
        ),
        DisplayPolicy::GapHeuristic { rmin, rmax, z } => {
            if m == 0 {
                return Ok((defined, Vec::new(), 0));
            }
            let (rmin_eff, rmax_eff) = gap_bounds(*rmin, *rmax, m);
            // the gap statistic s_i looks z items past rmax, so select
            // and sort up to that bound before the scan
            let sorted_len = m.min(rmax_eff.saturating_add(*z).saturating_add(1));
            sort_prefix(&mut defined, sorted_len, combined);
            let sorted: Vec<f64> = defined[..sorted_len]
                .iter()
                .map(|&i| combined[i].expect("ordered"))
                .collect();
            let cut = gap_cutoff(&sorted, rmin_eff, rmax_eff, *z)? + 1;
            let displayed = defined[..cut].to_vec();
            Ok((defined, displayed, sorted_len))
        }
        DisplayPolicy::TwoSidedPercentage(p) => {
            let Some(win) = windows.first().filter(|w| w.signed) else {
                return top_k(defined, percentage_count(*p, n, m));
            };
            let Some((lo, hi)) = two_sided_band(win, *p)? else {
                return Ok((defined, Vec::new(), 0));
            };
            // select the quantile band first, then sort only the
            // selection — identical to filtering a fully-sorted order
            let mut selected: Vec<usize> = Vec::with_capacity(m);
            let mut rest: Vec<usize> = Vec::new();
            for &i in &defined {
                if in_two_sided_band(win, lo, hi, i) {
                    selected.push(i);
                } else {
                    rest.push(i);
                }
            }
            selected.sort_unstable_by(|&a, &b| rank_cmp(combined, a, b));
            let sorted_len = selected.len();
            let displayed = selected.clone();
            let mut order = selected;
            order.extend(rest);
            Ok((order, displayed, sorted_len))
        }
    }
}

/// Per-partition top-k selection plus a k-way merge by relevance rank:
/// sort each partition's index list to its own top-`k` prefix (scheduled
/// as runtime tasks), then repeatedly take the globally smallest head.
/// Because [`rank_cmp`] is a total order (index tiebreak), the merged
/// prefix is exactly the prefix a global sort would produce — the
/// property that makes partitioning (and later, multi-box sharding)
/// invisible in the output. Returns the full order: the merged top-`k`
/// followed by every remaining defined item (unspecified, deterministic
/// order).
fn select_and_merge(mut parts: Vec<Vec<usize>>, k: usize, combined: &[Option<f64>]) -> Vec<usize> {
    {
        let total: usize = parts.iter().map(Vec::len).sum();
        let tasks: Vec<&mut Vec<usize>> = parts.iter_mut().filter(|p| !p.is_empty()).collect();
        chunk::run_striped(tasks, total >= chunk::PAR_MIN_ROWS, |idx| {
            let prefix = k.min(idx.len());
            sort_prefix(idx, prefix, combined);
        });
    }
    let limits: Vec<usize> = parts.iter().map(|p| k.min(p.len())).collect();
    let mut cursors = vec![0usize; parts.len()];
    let mut merged: Vec<usize> = Vec::with_capacity(k);
    while merged.len() < k {
        // k-way merge head scan (partition counts are small)
        let mut best: Option<(usize, usize)> = None; // (part, item)
        for (pi, part) in parts.iter().enumerate() {
            if cursors[pi] < limits[pi] {
                let cand = part[cursors[pi]];
                best = match best {
                    Some((_, b)) if rank_cmp(combined, b, cand) != std::cmp::Ordering::Greater => {
                        best
                    }
                    _ => Some((pi, cand)),
                };
            }
        }
        let Some((pi, item)) = best else {
            break;
        };
        merged.push(item);
        cursors[pi] += 1;
    }
    let mut order = merged;
    for (pi, part) in parts.into_iter().enumerate() {
        order.extend(part.into_iter().skip(cursors[pi]));
    }
    order
}

/// Partitioned ranking + display selection: compute per-partition
/// defined-index lists and top-k selections as runtime tasks, then merge
/// them k-way by relevance rank ([`select_and_merge`]). Bit-identical to
/// [`rank_and_select`] and the scalar full sort in everything the
/// display semantics observe (`displayed`, the sorted prefix,
/// `sorted_len`).
pub(crate) fn rank_and_select_partitioned(
    combined: &[Option<f64>],
    windows: &[PredicateWindow],
    policy: &DisplayPolicy,
    num_windows: usize,
    partitioning: &Partitioning,
) -> Result<(Vec<usize>, Vec<usize>, usize)> {
    let n = combined.len();
    let bounds = partitioning.partitions();
    let mut defined_parts: Vec<Vec<usize>> = vec![Vec::new(); bounds.len()];
    {
        let tasks: Vec<(&mut Vec<usize>, visdb_storage::Partition)> = defined_parts
            .iter_mut()
            .zip(bounds.iter().copied())
            .filter(|(_, p)| p.len > 0)
            .collect();
        chunk::run_striped(tasks, n >= chunk::PAR_MIN_ROWS, |(slot, part)| {
            *slot = (part.offset..part.offset + part.len)
                .filter(|&i| combined[i].is_some())
                .collect();
        });
    }
    let m: usize = defined_parts.iter().map(Vec::len).sum();
    let top_k = |defined_parts: Vec<Vec<usize>>, k: usize| {
        let order = select_and_merge(defined_parts, k, combined);
        let displayed = order[..k].to_vec();
        Ok((order, displayed, k))
    };
    match policy {
        DisplayPolicy::Percentage(p) => top_k(defined_parts, percentage_count(*p, n, m)),
        DisplayPolicy::FitScreen {
            pixels,
            pixels_per_item,
        } => top_k(
            defined_parts,
            fit_screen_count(*pixels, *pixels_per_item, n, num_windows, m),
        ),
        DisplayPolicy::GapHeuristic { rmin, rmax, z } => {
            if m == 0 {
                return Ok((Vec::new(), Vec::new(), 0));
            }
            let (rmin_eff, rmax_eff) = gap_bounds(*rmin, *rmax, m);
            let sorted_len = m.min(rmax_eff.saturating_add(*z).saturating_add(1));
            let order = select_and_merge(defined_parts, sorted_len, combined);
            let sorted: Vec<f64> = order[..sorted_len]
                .iter()
                .map(|&i| combined[i].expect("ordered"))
                .collect();
            let cut = gap_cutoff(&sorted, rmin_eff, rmax_eff, *z)? + 1;
            let displayed = order[..cut].to_vec();
            Ok((order, displayed, sorted_len))
        }
        DisplayPolicy::TwoSidedPercentage(p) => {
            let Some(win) = windows.first().filter(|w| w.signed) else {
                return top_k(defined_parts, percentage_count(*p, n, m));
            };
            let Some((lo, hi)) = two_sided_band(win, *p)? else {
                return Ok((defined_parts.concat(), Vec::new(), 0));
            };
            // per-partition band split (selected stays to be rank-sorted
            // by the merge; rest keeps ascending index order, matching
            // the unpartitioned selection exactly)
            let mut selected_parts: Vec<Vec<usize>> = vec![Vec::new(); defined_parts.len()];
            let mut rest_parts: Vec<Vec<usize>> = vec![Vec::new(); defined_parts.len()];
            {
                let tasks: Vec<(&mut Vec<usize>, &mut Vec<usize>, &Vec<usize>)> = selected_parts
                    .iter_mut()
                    .zip(rest_parts.iter_mut())
                    .zip(defined_parts.iter())
                    .map(|((s, r), d)| (s, r, d))
                    .filter(|(_, _, d)| !d.is_empty())
                    .collect();
                chunk::run_striped(tasks, n >= chunk::PAR_MIN_ROWS, |(sel, rest, defined)| {
                    for &i in defined.iter() {
                        if in_two_sided_band(win, lo, hi, i) {
                            sel.push(i);
                        } else {
                            rest.push(i);
                        }
                    }
                });
            }
            let total: usize = selected_parts.iter().map(Vec::len).sum();
            let mut order = select_and_merge(selected_parts, total, combined);
            let displayed = order.clone();
            for rest in rest_parts {
                order.extend(rest);
            }
            Ok((order, displayed, total))
        }
    }
}

/// Above this many items the distance passes fan out across the chunked
/// worker pool (see [`crate::chunk`]); kept as a named constant for the
/// benches and tests that pin workloads on either side of the threshold.
pub const PARALLEL_THRESHOLD: usize = chunk::PAR_MIN_ROWS;

/// Below this many rows the planner ignores a requested [`Partitioning`]
/// and runs the unpartitioned walk: per-partition task dispatch plus the
/// k-way selection merge cost more than they save on relations this
/// small, and the two walks are bit-identical, so dropping the fan-out
/// is purely a scheduling decision (`trace.partitions` reports 1).
pub const PARTITION_MIN_ROWS: usize = chunk::PAR_MIN_ROWS;

/// Evaluate the top-level windows. Parallelism lives *inside* each
/// window evaluation now (chunked over rows, so even a single-predicate
/// query uses every core); windows themselves are walked sequentially.
fn eval_windows(ctx: &EvalContext<'_>, top: &[&Weighted]) -> Result<Vec<NodeEval>> {
    top.iter().map(|w| ctx.eval_node(&w.node)).collect()
}

/// Normalize a combined vector while *preserving* exact zeros (an exact
/// answer must stay exactly 0 so `num_exact` and the yellow region are
/// stable even when every item is an exact match).
fn normalize_combined(raw: &[Option<f64>]) -> (Vec<Option<f64>>, NormParams) {
    let any_nonzero = raw.iter().flatten().any(|&d| d != 0.0);
    if !any_nonzero {
        // all exact (or undefined): keep zeros
        return (
            raw.to_vec(),
            NormParams {
                dmin: 0.0,
                dmax: 0.0,
            },
        );
    }
    normalize_naive(raw)
}

fn select_display(
    combined: &[Option<f64>],
    order: &[usize],
    policy: &DisplayPolicy,
    num_windows: usize,
    windows: Option<&[PredicateWindow]>,
) -> Result<Vec<usize>> {
    if let DisplayPolicy::TwoSidedPercentage(p) = policy {
        return select_two_sided(combined, order, *p, windows);
    }
    let n = combined.len();
    let defined = order.len();
    let k = match policy {
        DisplayPolicy::FitScreen {
            pixels,
            pixels_per_item,
        } => fit_screen_count(*pixels, *pixels_per_item, n, num_windows, defined),
        DisplayPolicy::Percentage(p) => percentage_count(*p, n, defined),
        DisplayPolicy::TwoSidedPercentage(_) => unreachable!("handled above"),
        DisplayPolicy::GapHeuristic { rmin, rmax, z } => {
            if defined == 0 {
                0
            } else {
                let sorted: Vec<f64> = order
                    .iter()
                    .map(|&i| combined[i].expect("ordered"))
                    .collect();
                let (rmin_eff, rmax_eff) = gap_bounds(*rmin, *rmax, defined);
                gap_cutoff(&sorted, rmin_eff, rmax_eff, *z)? + 1
            }
        }
    };
    Ok(order[..k.min(defined)].to_vec())
}

/// Two-sided display selection (§5.1): choose items whose *signed* raw
/// distance on the primary window lies between the
/// `α₀·(1−p)`- and `(α₀·(1−p)+p)`-quantiles, where `α₀` is the fraction
/// of negative distances. Exact answers (distance 0) always display.
fn select_two_sided(
    combined: &[Option<f64>],
    order: &[usize],
    p: f64,
    windows: Option<&[PredicateWindow]>,
) -> Result<Vec<usize>> {
    let Some(win) = windows.and_then(|w| w.first()).filter(|w| w.signed) else {
        let k = percentage_count(p, combined.len(), order.len());
        return Ok(order[..k].to_vec());
    };
    let Some((lo, hi)) = two_sided_band(win, p)? else {
        return Ok(Vec::new());
    };
    Ok(order
        .iter()
        .copied()
        .filter(|&i| in_two_sided_band(win, lo, hi, i))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_query::builder::QueryBuilder;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn db_with_ramp(n: usize) -> Database {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        db
    }

    fn cond(op: CompareOp, v: f64) -> Weighted {
        Weighted::unit(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            op,
            v,
        )))
    }

    #[test]
    fn exact_answers_rank_first() {
        let db = db_with_ramp(100);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 90.0);
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(50.0)).unwrap();
        assert_eq!(out.n, 100);
        assert_eq!(out.num_exact, 10); // x in 90..=99
                                       // the first 10 in order are the exact answers
        for &i in &out.order[..10] {
            assert_eq!(out.combined[i], Some(0.0));
            assert_eq!(out.relevance[i], Some(NORM_MAX));
        }
        // the sorted prefix is monotone in combined distance and covers
        // (at least) the display set; the tail is unsorted by design
        assert!(out.sorted_len >= out.displayed.len());
        for w in out.order[..out.sorted_len].windows(2) {
            assert!(out.combined[w[0]] <= out.combined[w[1]]);
        }
        assert_eq!(out.displayed.len(), 50);
        // top-k engaged: only the displayed half was sorted
        assert_eq!(out.sorted_len, 50);
        assert_eq!(out.order.len(), 100, "every defined item stays ranked");
    }

    #[test]
    fn percentage_policy_counts() {
        let db = db_with_ramp(200);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 100.0);
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(10.0)).unwrap();
        assert_eq!(out.displayed.len(), 20);
        assert!(run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(0.0)).is_err());
        assert!(run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(150.0)).is_err());
    }

    #[test]
    fn fit_screen_policy_divides_budget_among_windows() {
        let db = db_with_ramp(1000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        // two predicates -> 3 windows total (overall + 2)
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 500.0)
            .cmp("x", CompareOp::Lt, 600.0)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::FitScreen {
                pixels: 900,
                pixels_per_item: 1,
            },
        )
        .unwrap();
        // p = 900 / (1000 * 3) = 0.3 -> 300 items
        assert_eq!(out.displayed.len(), 300);
        assert_eq!(out.windows.len(), 2);
    }

    #[test]
    fn gap_policy_cuts_at_the_gap() {
        // two clusters: 50 near answers, 50 far answers
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..50 {
            b = b.row(vec![Value::Float(10.0 + i as f64 * 0.01)]).unwrap();
        }
        for i in 0..50 {
            b = b.row(vec![Value::Float(1000.0 + i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Le, 10.0);
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::GapHeuristic {
                rmin: 10,
                rmax: 90,
                z: 5,
            },
        )
        .unwrap();
        // the cut should land near the cluster boundary (50)
        assert!(
            (45..=55).contains(&out.displayed.len()),
            "displayed {} items",
            out.displayed.len()
        );
    }

    #[test]
    fn no_condition_is_all_exact() {
        let db = db_with_ramp(10);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let out = run_pipeline(&db, t, &r, None, &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.num_exact, 10);
        assert_eq!(out.displayed.len(), 10);
        assert!(out.windows.is_empty());
    }

    #[test]
    fn windows_carry_signed_raw_distances() {
        let db = db_with_ramp(10);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 5.0)
            .cmp("x", CompareOp::Lt, 7.0)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.windows.len(), 2);
        let w0 = &out.windows[0];
        assert!(w0.signed);
        assert_eq!(w0.raw_at(0), Some(-5.0)); // x=0 misses `>= 5` by 5
        assert_eq!(w0.raw_at(5), Some(0.0));
        // normalized values live in [0, 255]
        for v in (0..out.n).filter_map(|i| w0.normalized_at(i)) {
            assert!((0.0..=NORM_MAX).contains(&v));
        }
        // distance-exact AND answers: x in 5..=7 (distance functions do
        // not distinguish < from <=, see visdb_distance::numeric) -> 3
        assert_eq!(out.num_exact, 3);
    }

    #[test]
    fn two_sided_policy_straddles_zero() {
        // target x = 500 on a 0..999 ramp: signed distances are negative
        // below and positive above; a 20% two-sided display must keep
        // items on BOTH sides of the target
        let db = db_with_ramp(1000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Eq, 500.0);
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(20.0),
        )
        .unwrap();
        assert!(!out.displayed.is_empty());
        let below = out.displayed.iter().filter(|&&i| i < 500).count();
        let above = out.displayed.iter().filter(|&&i| i > 500).count();
        assert!(below > 0 && above > 0, "below={below} above={above}");
        // roughly balanced for a symmetric ramp
        let ratio = below as f64 / above.max(1) as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        // ~20% of 1000 items
        assert!(
            (150..=260).contains(&out.displayed.len()),
            "{}",
            out.displayed.len()
        );
        // invalid percentages rejected
        assert!(run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(0.0)
        )
        .is_err());
    }

    #[test]
    fn two_sided_falls_back_for_unsigned_windows() {
        // a string-distance window carries no signs -> one-sided rule
        let mut b = TableBuilder::new("S", vec![Column::new("name", DataType::Str)]);
        for i in 0..10 {
            b = b.row(vec![Value::Str(format!("name{i}"))]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        let t = db.table("S").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["S"])
            .cmp("name", CompareOp::Eq, "name0")
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(50.0),
        )
        .unwrap();
        assert_eq!(out.displayed.len(), 5);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        // above PARALLEL_THRESHOLD the windows are evaluated on threads;
        // results must be identical to the small-data sequential path
        let n = super::PARALLEL_THRESHOLD + 1_000;
        let db = db_with_ramp(n);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, n as f64 * 0.9)
            .cmp("x", CompareOp::Lt, n as f64 * 0.95)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline_opts(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::Percentage(10.0),
            PipelineOptions {
                materialization: Materialization::Materialized,
                ..Default::default()
            },
        )
        .unwrap();
        // sequential reference: evaluate each child by hand
        let ctx = crate::eval::EvalContext {
            db: &db,
            table: t,
            resolver: &r,
            display_budget: (n as f64 * 0.1).ceil() as usize,
            mode: ExecMode::Scalar,
            partitions: None,
            cancel: None,
        };
        if let ConditionNode::And(children) = &c.node {
            for (win, child) in out.windows.iter().zip(children) {
                let seq = ctx.eval_node(&child.node).unwrap();
                assert_eq!(
                    *win.full_frames().expect("materialized").0.as_ref(),
                    seq.distances
                );
            }
        } else {
            panic!("expected AND root");
        }
        assert_eq!(out.windows.len(), 2);
        // the (default) streaming run agrees at every displayed row and
        // on the full-relation exact counts
        let streamed =
            run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(10.0)).unwrap();
        assert_eq!(streamed.displayed, out.displayed);
        for (sw, mw) in streamed.windows.iter().zip(&out.windows) {
            for &i in &streamed.displayed {
                assert_eq!(sw.raw_at(i), mw.raw_at(i));
            }
            assert_eq!(sw.zero_raw_count(), mw.zero_raw_count());
        }
    }

    #[test]
    fn vectorized_matches_scalar_reference_end_to_end() {
        let db = db_with_ramp(3000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 2500.0)
            .cmp("x", CompareOp::Lt, 2800.0)
            .build();
        let c = q.condition.unwrap();
        for policy in [
            DisplayPolicy::Percentage(20.0),
            DisplayPolicy::FitScreen {
                pixels: 900,
                pixels_per_item: 4,
            },
            DisplayPolicy::GapHeuristic {
                rmin: 10,
                rmax: 200,
                z: 5,
            },
            DisplayPolicy::TwoSidedPercentage(15.0),
        ] {
            let fast = run_materialized(&db, t, &r, Some(&c), &policy, None);
            let slow = run_pipeline_scalar(&db, t, &r, Some(&c), &policy).unwrap();
            assert_eq!(fast.combined, slow.combined, "{policy:?}");
            assert_eq!(fast.relevance, slow.relevance);
            assert_eq!(fast.num_exact, slow.num_exact);
            assert_eq!(fast.displayed, slow.displayed, "{policy:?}");
            if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_)) {
                // one-sided policies: the top-k prefix equals the full
                // sort's prefix (two-sided prefixes are the displayed
                // band, covered by the `displayed` equality above)
                assert_eq!(
                    fast.order[..fast.sorted_len],
                    slow.order[..fast.sorted_len],
                    "{policy:?}"
                );
            }
            assert!(fast.sorted_len < fast.order.len(), "top-k must engage");
            assert_eq!(slow.sorted_len, slow.order.len());
            for (fw, sw) in fast.windows.iter().zip(&slow.windows) {
                let (fr, fn_) = fw.full_frames().expect("materialized");
                let (sr, sn) = sw.full_frames().expect("materialized");
                assert_eq!(*fr, *sr);
                assert_eq!(*fn_, *sn);
                assert_eq!(fw.norm_params, sw.norm_params);
            }
        }
    }

    /// [`run_pipeline_opts`] forced onto the materialized path (with an
    /// optional partitioning) — the reference the streaming assertions
    /// compare against.
    fn run_materialized(
        db: &Database,
        t: &Table,
        r: &DistanceResolver,
        c: Option<&Weighted>,
        policy: &DisplayPolicy,
        partitions: Option<&Partitioning>,
    ) -> PipelineOutput {
        run_pipeline_opts(
            db,
            t,
            r,
            c,
            policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                partitions,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn streaming_matches_materialized_and_scalar_end_to_end() {
        let db = db_with_ramp(3000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 2500.0)
            .cmp("x", CompareOp::Lt, 2800.0)
            .build();
        let c = q.condition.unwrap();
        for policy in [
            DisplayPolicy::Percentage(20.0),
            DisplayPolicy::FitScreen {
                pixels: 900,
                pixels_per_item: 4,
            },
            DisplayPolicy::GapHeuristic {
                rmin: 10,
                rmax: 200,
                z: 5,
            },
            // the planner falls back to materialized here — output must
            // still be identical
            DisplayPolicy::TwoSidedPercentage(15.0),
        ] {
            // `run_pipeline` without caches = the Auto planner streaming
            let stream = run_pipeline(&db, t, &r, Some(&c), &policy).unwrap();
            let slow = run_pipeline_scalar(&db, t, &r, Some(&c), &policy).unwrap();
            let mat = run_materialized(&db, t, &r, Some(&c), &policy, None);
            for (tag, out) in [("scalar", &slow), ("materialized", &mat)] {
                assert_eq!(stream.combined, out.combined, "{policy:?} vs {tag}");
                assert_eq!(stream.relevance, out.relevance, "{policy:?} vs {tag}");
                assert_eq!(stream.num_exact, out.num_exact, "{policy:?} vs {tag}");
                assert_eq!(stream.displayed, out.displayed, "{policy:?} vs {tag}");
                for (fw, sw) in stream.windows.iter().zip(&out.windows) {
                    assert_eq!(fw.label, sw.label);
                    assert_eq!(fw.signed, sw.signed);
                    assert_eq!(fw.norm_params, sw.norm_params, "{policy:?} vs {tag}");
                    assert_eq!(fw.zero_raw_count(), sw.zero_raw_count(), "{policy:?}");
                    for &i in &stream.displayed {
                        assert_eq!(fw.raw_at(i), sw.raw_at(i), "{policy:?} row {i}");
                        assert_eq!(fw.normalized_at(i), sw.normalized_at(i), "{policy:?}");
                    }
                }
            }
            if !matches!(policy, DisplayPolicy::TwoSidedPercentage(_)) {
                assert_eq!(
                    stream.order[..stream.sorted_len],
                    slow.order[..stream.sorted_len],
                    "{policy:?}"
                );
                // zero materialization engaged: lazy windows
                assert!(
                    stream.windows.iter().all(|w| w.full_frames().is_none()),
                    "{policy:?} must stream"
                );
            }
            // streaming composes with partitioned execution
            for parts in [2usize, 7] {
                let partitioning = t.partitions(parts);
                let part = run_pipeline_opts(
                    &db,
                    t,
                    &r,
                    Some(&c),
                    &policy,
                    PipelineOptions {
                        partitions: Some(&partitioning),
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(part.combined, slow.combined, "{policy:?} x{parts}");
                assert_eq!(part.displayed, slow.displayed, "{policy:?} x{parts}");
                assert_eq!(part.num_exact, slow.num_exact, "{policy:?} x{parts}");
            }
        }
    }

    #[test]
    fn forced_streaming_bypasses_attached_caches() {
        let db = db_with_ramp(500);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 300.0);
        let policy = DisplayPolicy::Percentage(25.0);
        let mut cache = PipelineCache::new();
        let out = run_pipeline_opts(
            &db,
            t,
            &r,
            Some(&c),
            &policy,
            PipelineOptions {
                cache: Some(&mut cache),
                materialization: Materialization::Streaming,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(cache.is_empty(), "forced streaming must not feed caches");
        assert!(out.windows[0].full_frames().is_none());
        let reference = run_pipeline_scalar(&db, t, &r, Some(&c), &policy).unwrap();
        assert_eq!(out.combined, reference.combined);
        assert_eq!(out.displayed, reference.displayed);
        // with a cache attached, Auto materializes (the cacheable form)
        let auto = run_pipeline_cached(&db, t, &r, Some(&c), &policy, Some(&mut cache)).unwrap();
        assert!(auto.windows[0].full_frames().is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn partitioned_matches_scalar_and_vectorized_across_policies() {
        let db = db_with_ramp(3000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 2500.0)
            .cmp("x", CompareOp::Lt, 2800.0)
            .build();
        let c = q.condition.unwrap();
        for policy in [
            DisplayPolicy::Percentage(20.0),
            DisplayPolicy::FitScreen {
                pixels: 900,
                pixels_per_item: 4,
            },
            DisplayPolicy::GapHeuristic {
                rmin: 10,
                rmax: 200,
                z: 5,
            },
            DisplayPolicy::TwoSidedPercentage(15.0),
        ] {
            let slow = run_pipeline_scalar(&db, t, &r, Some(&c), &policy).unwrap();
            let fast = run_materialized(&db, t, &r, Some(&c), &policy, None);
            for parts in [1, 2, 7, 16] {
                let partitioning = t.partitions(parts);
                let part = run_materialized(
                    &db,
                    t,
                    &r,
                    Some(&c),
                    &policy,
                    (partitioning.len() > 1).then_some(&partitioning),
                );
                assert_eq!(part.combined, slow.combined, "{policy:?} x{parts}");
                assert_eq!(part.relevance, slow.relevance);
                assert_eq!(part.num_exact, slow.num_exact);
                assert_eq!(part.displayed, slow.displayed, "{policy:?} x{parts}");
                assert_eq!(part.sorted_len, fast.sorted_len, "{policy:?} x{parts}");
                if matches!(policy, DisplayPolicy::TwoSidedPercentage(_)) {
                    // the two-sided prefix is the displayed band, not the
                    // global top-k: compare against the vectorized path
                    assert_eq!(
                        part.order[..part.sorted_len],
                        fast.order[..fast.sorted_len],
                        "{policy:?} x{parts}"
                    );
                } else {
                    assert_eq!(
                        part.order[..part.sorted_len],
                        slow.order[..part.sorted_len],
                        "{policy:?} x{parts}"
                    );
                }
                assert_eq!(part.order.len(), slow.order.len());
                for (pw, sw) in part.windows.iter().zip(&slow.windows) {
                    let (pr, pn) = pw.full_frames().expect("materialized");
                    let (sr, sn) = sw.full_frames().expect("materialized");
                    assert_eq!(*pr, *sr);
                    assert_eq!(*pn, *sn);
                    assert_eq!(pw.norm_params, sw.norm_params);
                }
            }
        }
        // a partitioning that does not cover the relation is rejected
        let stale = Partitioning::even(2999, 4);
        let err = run_pipeline_opts(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::Percentage(20.0),
            PipelineOptions {
                partitions: Some(&stale),
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    /// Pins the planner's partition row threshold: a requested
    /// partitioning is honored at `PARTITION_MIN_ROWS` and dropped (to
    /// the bit-identical unpartitioned walk) below it.
    #[test]
    fn partition_planner_threshold() {
        let r = DistanceResolver::new();
        let policy = DisplayPolicy::Percentage(20.0);
        for (n, expect_parts) in [(PARTITION_MIN_ROWS / 8, 1), (PARTITION_MIN_ROWS, 4)] {
            let db = db_with_ramp(n);
            let t = db.table("T").unwrap();
            let c = cond(CompareOp::Ge, n as f64 / 2.0);
            let partitioning = t.partitions(4);
            let out = run_pipeline_opts(
                &db,
                t,
                &r,
                Some(&c),
                &policy,
                PipelineOptions {
                    materialization: Materialization::Materialized,
                    partitions: Some(&partitioning),
                    trace: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let trace = out.trace.as_ref().expect("trace requested");
            assert_eq!(trace.partitions, expect_parts, "n={n}");
            // either way the outputs match the unpartitioned walk —
            // dropping the fan-out is purely a scheduling decision
            let plain = run_materialized(&db, t, &r, Some(&c), &policy, None);
            assert_eq!(out.combined, plain.combined, "n={n}");
            assert_eq!(out.num_exact, plain.num_exact);
            assert_eq!(out.displayed, plain.displayed);
            assert_eq!(out.sorted_len, plain.sorted_len);
            // the ranked prefix is identical; the tail is unsorted by
            // design and its order may differ across schedules
            assert_eq!(
                out.order[..out.sorted_len],
                plain.order[..plain.sorted_len],
                "n={n}"
            );
            assert_eq!(out.order.len(), plain.order.len());
        }
    }

    #[test]
    fn stale_partitioning_is_rejected() {
        let db = db_with_ramp(3000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 1500.0);
        let stale = Partitioning::even(2999, 4);
        let err = run_pipeline_opts(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::Percentage(20.0),
            PipelineOptions {
                partitions: Some(&stale),
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn shared_window_cache_round_trips() {
        use std::collections::HashMap;
        use std::sync::Mutex;

        #[derive(Default)]
        struct MapSource {
            map: Mutex<HashMap<String, PredicateWindow>>,
            hits: std::sync::atomic::AtomicUsize,
        }
        impl crate::cache::WindowSource for MapSource {
            fn lookup(&self, key: &str) -> Option<PredicateWindow> {
                let got = self.map.lock().unwrap().get(key).cloned();
                if got.is_some() {
                    self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                got
            }
            fn store(
                &self,
                key: String,
                window: PredicateWindow,
                _recipe: Option<crate::extend::WindowRecipe>,
            ) {
                self.map.lock().unwrap().insert(key, window);
            }
        }

        let db = db_with_ramp(500);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 300.0)
            .cmp("x", CompareOp::Lt, 400.0)
            .build();
        let c = q.condition.unwrap();
        let policy = DisplayPolicy::Percentage(25.0);
        let source = MapSource::default();
        let run = |sh: &MapSource| {
            run_pipeline_opts(
                &db,
                t,
                &r,
                Some(&c),
                &policy,
                PipelineOptions {
                    shared: Some(SharedWindows {
                        scope: "ramp#1",
                        cache: sh,
                    }),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let cold = run(&source);
        assert_eq!(source.map.lock().unwrap().len(), 2);
        assert_eq!(source.hits.load(std::sync::atomic::Ordering::Relaxed), 0);
        // a second run (think: another session) reuses both windows
        let warm = run(&source);
        assert_eq!(source.hits.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(warm.combined, cold.combined);
        assert_eq!(warm.displayed, cold.displayed);
        // a modified predicate re-evaluates only itself: one more entry
        let q2 = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 350.0)
            .cmp("x", CompareOp::Lt, 400.0)
            .build();
        let c2 = q2.condition.unwrap();
        let out2 = run_pipeline_opts(
            &db,
            t,
            &r,
            Some(&c2),
            &policy,
            PipelineOptions {
                shared: Some(SharedWindows {
                    scope: "ramp#1",
                    cache: &source,
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(source.hits.load(std::sync::atomic::Ordering::Relaxed), 3);
        assert_eq!(source.map.lock().unwrap().len(), 3);
        // and is byte-identical to an uncached evaluation
        let reference = run_pipeline(&db, t, &r, Some(&c2), &policy).unwrap();
        assert_eq!(out2.combined, reference.combined);
        assert_eq!(out2.displayed, reference.displayed);
    }

    #[test]
    fn all_exact_stays_zero_after_normalization() {
        let db = db_with_ramp(5);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 0.0); // everything fulfils
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.num_exact, 5);
        assert!(out.combined.iter().all(|d| *d == Some(0.0)));
    }
}
