//! The end-to-end relevance pipeline: distances → reduction →
//! normalization → combining → relevance factors → display selection.
//!
//! This is the computational spine of VisDB. Complexity is O(#sp · n) for
//! the distance passes plus O(n log n) for the final sort — matching the
//! paper's efficiency claim ("For simple queries and standard distance
//! functions the complexity is O(n logn) ... query processing time is
//! dominated by the time needed for sorting", §3).

use std::sync::Arc;

use visdb_distance::registry::DistanceResolver;
use visdb_query::ast::{ConditionNode, Weighted};
use visdb_storage::{Database, Table};
use visdb_types::{Error, Result};

use crate::combine::{combine_and, combine_or};
use crate::eval::{EvalContext, NodeEval};
use crate::normalize::{normalize_improved, normalize_naive, NormParams, NORM_MAX};
use crate::quantile::display_fraction;
use crate::reduction::gap_cutoff;

/// How to choose the number of displayed data items (§5.1, §4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum DisplayPolicy {
    /// "simply presenting as many data items as fit on the screen": a
    /// pixel budget shared by the overall window and one window per
    /// predicate, each item taking 1, 4 or 16 pixels.
    FitScreen {
        /// Total pixels available across windows.
        pixels: usize,
        /// Pixels per data item (1, 4 or 16).
        pixels_per_item: usize,
    },
    /// "a user given percentage of the data" (0..=100].
    Percentage(f64),
    /// The multi-peak gap heuristic (§5.1): display up to the largest
    /// density gap between `rmin` and `rmax`, window constant `z`.
    GapHeuristic {
        /// Smallest acceptable display count.
        rmin: usize,
        /// Largest acceptable display count.
        rmax: usize,
        /// Gap window size (`2 < z << rmax - rmin`).
        z: usize,
    },
    /// The two-sided variant for *signed* distances (§5.1): "the range of
    /// values presented to the user is given by
    /// [α₀·(1−p)-quantile, (α₀·(1−p)+p)-quantile] where α₀ is determined
    /// by α₀-quantile = 0". Items are selected around the zero crossing
    /// of the first window's signed raw distances, so the display keeps
    /// under- and over-shooting items in proportion to the data. Falls
    /// back to the one-sided percentage rule when the distances carry no
    /// signs.
    TwoSidedPercentage(f64),
}

impl DisplayPolicy {
    /// An indicative item budget used for weight-proportional
    /// normalization before the display count is finally known.
    fn budget(&self, n: usize) -> usize {
        match self {
            DisplayPolicy::FitScreen {
                pixels,
                pixels_per_item,
            } => (pixels / pixels_per_item.max(&1)).max(1),
            DisplayPolicy::Percentage(p) => {
                ((n as f64 * (p / 100.0)).ceil() as usize).clamp(1, n.max(1))
            }
            DisplayPolicy::GapHeuristic { rmax, .. } => (*rmax).max(1),
            DisplayPolicy::TwoSidedPercentage(p) => {
                ((n as f64 * (p / 100.0)).ceil() as usize).clamp(1, n.max(1))
            }
        }
    }
}

/// One per-predicate visualization window (§4.2): the raw signed
/// distances, the `[0,255]` normalization, and the fitted parameters so
/// sliders can map colors back to attribute values.
#[derive(Debug, Clone)]
pub struct PredicateWindow {
    /// Window title.
    pub label: String,
    /// Whether the raw distances are signed.
    pub signed: bool,
    /// Weight of this predicate in the query.
    pub weight: f64,
    /// Raw signed distances per item (shared with the incremental cache;
    /// cloning a window is cheap).
    pub raw: Arc<Vec<Option<f64>>>,
    /// Normalized absolute distances (`[0, 255]`).
    pub normalized: Arc<Vec<Option<f64>>>,
    /// The fitted normalization (for color → value lookups).
    pub norm_params: NormParams,
}

/// The pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Number of data items considered.
    pub n: usize,
    /// Normalized combined distance per item (`[0, 255]`, `None` =
    /// undefined / not colorable).
    pub combined: Vec<Option<f64>>,
    /// Relevance factor per item: the inverse of the combined distance,
    /// realised as `NORM_MAX - combined` so exact answers score 255.
    pub relevance: Vec<Option<f64>>,
    /// Item indices sorted by descending relevance (undefined excluded).
    /// This sort is the pipeline's O(n log n) term.
    pub order: Vec<usize>,
    /// The prefix of `order` selected for display by the policy.
    pub displayed: Vec<usize>,
    /// Number of exact answers (combined distance 0).
    pub num_exact: usize,
    /// One window per top-level selection predicate.
    pub windows: Vec<PredicateWindow>,
}

impl PipelineOutput {
    /// Fraction of items displayed (the `% displayed` panel field).
    pub fn displayed_fraction(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.displayed.len() as f64 / self.n as f64
        }
    }
}

/// Run the pipeline over a base relation.
///
/// `condition = None` marks every item an exact answer (a pure scan).
pub fn run_pipeline(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
) -> Result<PipelineOutput> {
    run_pipeline_cached(db, table, resolver, condition, policy, None)
}

/// [`run_pipeline`] with incremental recalculation (§6): top-level window
/// evaluations whose condition subtree is unchanged since the previous
/// run are served from `cache` instead of re-evaluated. Pass the same
/// cache across interactive modifications; see
/// [`crate::cache::PipelineCache`].
pub fn run_pipeline_cached(
    db: &Database,
    table: &Table,
    resolver: &DistanceResolver,
    condition: Option<&Weighted>,
    policy: &DisplayPolicy,
    mut cache: Option<&mut crate::cache::PipelineCache>,
) -> Result<PipelineOutput> {
    let n = table.len();
    let Some(cond) = condition else {
        let combined = vec![Some(0.0); n];
        let order: Vec<usize> = (0..n).collect();
        let displayed = select_display(&combined, &order, policy, 0, None)?;
        return Ok(PipelineOutput {
            n,
            relevance: vec![Some(NORM_MAX); n],
            order,
            displayed,
            num_exact: n,
            windows: Vec::new(),
            combined,
        });
    };

    if let DisplayPolicy::Percentage(p) | DisplayPolicy::TwoSidedPercentage(p) = policy {
        if !(0.0..=100.0).contains(p) || *p <= 0.0 {
            return Err(Error::invalid_parameter(
                "percentage",
                format!("must be in (0, 100], got {p}"),
            ));
        }
    }

    let ctx = EvalContext {
        db,
        table,
        resolver,
        display_budget: policy.budget(n),
    };

    // Top-level windows: the direct children of a root AND/OR, otherwise
    // the root itself (§3: "we generate a separate window for each
    // selection predicate of the query").
    let top: Vec<&Weighted> = match &cond.node {
        ConditionNode::And(cs) | ConditionNode::Or(cs) => cs.iter().collect(),
        _ => vec![cond],
    };

    // Serve structurally-unchanged windows (same subtree AND weight)
    // from the incremental cache; evaluate + normalize the rest (in
    // parallel when large). Window data is Arc-shared, so cache hits
    // avoid both the O(n) distance pass and the O(n log n)
    // weight-proportional normalization.
    let mut slots: Vec<Option<PredicateWindow>> = match &mut cache {
        Some(cache) => {
            cache.validate(table, ctx.display_budget);
            top.iter()
                .map(|w| cache.lookup(&w.node, w.weight))
                .collect()
        }
        None => vec![None; top.len()],
    };
    let missing: Vec<&Weighted> = top
        .iter()
        .zip(&slots)
        .filter(|(_, got)| got.is_none())
        .map(|(w, _)| *w)
        .collect();
    let fresh = eval_windows(&ctx, &missing)?;
    let mut fresh_it = fresh.into_iter();
    for (slot, w) in slots.iter_mut().zip(top.iter()) {
        if slot.is_none() {
            let e = fresh_it.next().expect("one eval per missing window");
            let (normalized, params) =
                normalize_improved(&e.distances, w.weight, ctx.display_budget);
            *slot = Some(PredicateWindow {
                label: e.label,
                signed: e.signed,
                weight: w.weight,
                raw: Arc::new(e.distances),
                normalized: Arc::new(normalized),
                norm_params: params,
            });
        }
    }
    let windows: Vec<PredicateWindow> = slots
        .into_iter()
        .map(|s| s.expect("filled above"))
        .collect();
    if let Some(cache) = &mut cache {
        cache.store(
            top.iter()
                .map(|w| w.node.clone())
                .zip(windows.iter().cloned())
                .collect(),
        );
    }

    // Combine at the root, then bring the result back onto [0, 255].
    let weights: Vec<f64> = top.iter().map(|w| w.weight).collect();
    let normed_children: Vec<&[Option<f64>]> =
        windows.iter().map(|w| w.normalized.as_slice()).collect();
    let combined_raw = match &cond.node {
        ConditionNode::Or(_) => combine_or(&normed_children, &weights)?,
        ConditionNode::And(_) => combine_and(&normed_children, &weights)?,
        _ => normed_children[0].to_vec(),
    };
    let (combined, _) = normalize_combined(&combined_raw);

    let relevance: Vec<Option<f64>> = combined.iter().map(|d| d.map(|x| NORM_MAX - x)).collect();
    let num_exact = combined_raw
        .iter()
        .filter(|d| matches!(d, Some(x) if *x == 0.0))
        .count();

    // The dominant O(n log n) sort: rank items by combined distance.
    let mut order: Vec<usize> = (0..n).filter(|&i| combined[i].is_some()).collect();
    order.sort_by(|&a, &b| {
        combined[a]
            .partial_cmp(&combined[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let displayed = select_display(&combined, &order, policy, windows.len(), Some(&windows))?;

    Ok(PipelineOutput {
        n,
        combined,
        relevance,
        order,
        displayed,
        num_exact,
        windows,
    })
}

/// Above this many items, independent predicate windows are evaluated on
/// separate threads (crossbeam scoped threads). Distance passes are
/// embarrassingly parallel across predicates; the threshold keeps small
/// interactive queries free of spawn overhead.
pub const PARALLEL_THRESHOLD: usize = 50_000;

/// Evaluate the top-level windows, in parallel when the data is large
/// enough and there is more than one window.
fn eval_windows(ctx: &EvalContext<'_>, top: &[&Weighted]) -> Result<Vec<NodeEval>> {
    if top.len() < 2 || ctx.table.len() < PARALLEL_THRESHOLD {
        return top.iter().map(|w| ctx.eval_node(&w.node)).collect();
    }
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = top
            .iter()
            .map(|w| s.spawn(move |_| ctx.eval_node(&w.node)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("window evaluation must not panic"))
            .collect::<Result<Vec<_>>>()
    })
    .map_err(|_| Error::Internal("parallel window evaluation panicked".into()))?
}

/// Normalize a combined vector while *preserving* exact zeros (an exact
/// answer must stay exactly 0 so `num_exact` and the yellow region are
/// stable even when every item is an exact match).
fn normalize_combined(raw: &[Option<f64>]) -> (Vec<Option<f64>>, NormParams) {
    let any_nonzero = raw.iter().flatten().any(|&d| d != 0.0);
    if !any_nonzero {
        // all exact (or undefined): keep zeros
        return (
            raw.to_vec(),
            NormParams {
                dmin: 0.0,
                dmax: 0.0,
            },
        );
    }
    normalize_naive(raw)
}

fn select_display(
    combined: &[Option<f64>],
    order: &[usize],
    policy: &DisplayPolicy,
    num_windows: usize,
    windows: Option<&[PredicateWindow]>,
) -> Result<Vec<usize>> {
    if let DisplayPolicy::TwoSidedPercentage(p) = policy {
        return select_two_sided(combined, order, *p, windows);
    }
    let n = combined.len();
    let defined = order.len();
    let k = match policy {
        DisplayPolicy::FitScreen {
            pixels,
            pixels_per_item,
        } => {
            let p = display_fraction(*pixels, n, num_windows, *pixels_per_item);
            ((p * n as f64).floor() as usize).min(defined)
        }
        DisplayPolicy::Percentage(p) => (((p / 100.0) * n as f64).round() as usize).min(defined),
        DisplayPolicy::TwoSidedPercentage(_) => unreachable!("handled above"),
        DisplayPolicy::GapHeuristic { rmin, rmax, z } => {
            if defined == 0 {
                0
            } else {
                let sorted: Vec<f64> = order
                    .iter()
                    .map(|&i| combined[i].expect("ordered"))
                    .collect();
                let rmax_eff = (*rmax).min(defined - 1);
                let rmin_eff = (*rmin).min(rmax_eff);
                gap_cutoff(&sorted, rmin_eff, rmax_eff, *z)? + 1
            }
        }
    };
    Ok(order[..k.min(defined)].to_vec())
}

/// Two-sided display selection (§5.1): choose items whose *signed* raw
/// distance on the primary window lies between the
/// `α₀·(1−p)`- and `(α₀·(1−p)+p)`-quantiles, where `α₀` is the fraction
/// of negative distances. Exact answers (distance 0) always display.
fn select_two_sided(
    combined: &[Option<f64>],
    order: &[usize],
    p: f64,
    windows: Option<&[PredicateWindow]>,
) -> Result<Vec<usize>> {
    let fallback = |combined: &[Option<f64>], order: &[usize]| {
        let defined = order.len();
        let k = (((p / 100.0) * combined.len() as f64).round() as usize).min(defined);
        Ok(order[..k].to_vec())
    };
    let Some(win) = windows.and_then(|w| w.first()) else {
        return fallback(combined, order);
    };
    if !win.signed {
        return fallback(combined, order);
    }
    let signed: Vec<f64> = win.raw.iter().flatten().copied().collect();
    if signed.is_empty() {
        return Ok(Vec::new());
    }
    let (lo_level, hi_level) = crate::quantile::two_sided_range(&signed, p / 100.0)?;
    let lo = crate::quantile::quantile(&signed, lo_level)?;
    let hi = crate::quantile::quantile(&signed, hi_level)?;
    Ok(order
        .iter()
        .copied()
        .filter(|&i| match win.raw[i] {
            Some(d) => (d >= lo && d <= hi) || d == 0.0,
            None => false,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::{AttrRef, CompareOp, Predicate};
    use visdb_query::builder::QueryBuilder;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, DataType, Value};

    fn db_with_ramp(n: usize) -> Database {
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            b = b.row(vec![Value::Float(i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        db
    }

    fn cond(op: CompareOp, v: f64) -> Weighted {
        Weighted::unit(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("x"),
            op,
            v,
        )))
    }

    #[test]
    fn exact_answers_rank_first() {
        let db = db_with_ramp(100);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 90.0);
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(50.0)).unwrap();
        assert_eq!(out.n, 100);
        assert_eq!(out.num_exact, 10); // x in 90..=99
                                       // the first 10 in order are the exact answers
        for &i in &out.order[..10] {
            assert_eq!(out.combined[i], Some(0.0));
            assert_eq!(out.relevance[i], Some(NORM_MAX));
        }
        // order is monotone in combined distance
        for w in out.order.windows(2) {
            assert!(out.combined[w[0]] <= out.combined[w[1]]);
        }
        assert_eq!(out.displayed.len(), 50);
    }

    #[test]
    fn percentage_policy_counts() {
        let db = db_with_ramp(200);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 100.0);
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(10.0)).unwrap();
        assert_eq!(out.displayed.len(), 20);
        assert!(run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(0.0)).is_err());
        assert!(run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(150.0)).is_err());
    }

    #[test]
    fn fit_screen_policy_divides_budget_among_windows() {
        let db = db_with_ramp(1000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        // two predicates -> 3 windows total (overall + 2)
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 500.0)
            .cmp("x", CompareOp::Lt, 600.0)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::FitScreen {
                pixels: 900,
                pixels_per_item: 1,
            },
        )
        .unwrap();
        // p = 900 / (1000 * 3) = 0.3 -> 300 items
        assert_eq!(out.displayed.len(), 300);
        assert_eq!(out.windows.len(), 2);
    }

    #[test]
    fn gap_policy_cuts_at_the_gap() {
        // two clusters: 50 near answers, 50 far answers
        let mut b = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..50 {
            b = b.row(vec![Value::Float(10.0 + i as f64 * 0.01)]).unwrap();
        }
        for i in 0..50 {
            b = b.row(vec![Value::Float(1000.0 + i as f64)]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Le, 10.0);
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::GapHeuristic {
                rmin: 10,
                rmax: 90,
                z: 5,
            },
        )
        .unwrap();
        // the cut should land near the cluster boundary (50)
        assert!(
            (45..=55).contains(&out.displayed.len()),
            "displayed {} items",
            out.displayed.len()
        );
    }

    #[test]
    fn no_condition_is_all_exact() {
        let db = db_with_ramp(10);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let out = run_pipeline(&db, t, &r, None, &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.num_exact, 10);
        assert_eq!(out.displayed.len(), 10);
        assert!(out.windows.is_empty());
    }

    #[test]
    fn windows_carry_signed_raw_distances() {
        let db = db_with_ramp(10);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, 5.0)
            .cmp("x", CompareOp::Lt, 7.0)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.windows.len(), 2);
        let w0 = &out.windows[0];
        assert!(w0.signed);
        assert_eq!(w0.raw[0], Some(-5.0)); // x=0 misses `>= 5` by 5
        assert_eq!(w0.raw[5], Some(0.0));
        // normalized values live in [0, 255]
        for v in w0.normalized.iter().flatten() {
            assert!((0.0..=NORM_MAX).contains(v));
        }
        // distance-exact AND answers: x in 5..=7 (distance functions do
        // not distinguish < from <=, see visdb_distance::numeric) -> 3
        assert_eq!(out.num_exact, 3);
    }

    #[test]
    fn two_sided_policy_straddles_zero() {
        // target x = 500 on a 0..999 ramp: signed distances are negative
        // below and positive above; a 20% two-sided display must keep
        // items on BOTH sides of the target
        let db = db_with_ramp(1000);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Eq, 500.0);
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(20.0),
        )
        .unwrap();
        assert!(!out.displayed.is_empty());
        let below = out.displayed.iter().filter(|&&i| i < 500).count();
        let above = out.displayed.iter().filter(|&&i| i > 500).count();
        assert!(below > 0 && above > 0, "below={below} above={above}");
        // roughly balanced for a symmetric ramp
        let ratio = below as f64 / above.max(1) as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
        // ~20% of 1000 items
        assert!(
            (150..=260).contains(&out.displayed.len()),
            "{}",
            out.displayed.len()
        );
        // invalid percentages rejected
        assert!(run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(0.0)
        )
        .is_err());
    }

    #[test]
    fn two_sided_falls_back_for_unsigned_windows() {
        // a string-distance window carries no signs -> one-sided rule
        let mut b = TableBuilder::new("S", vec![Column::new("name", DataType::Str)]);
        for i in 0..10 {
            b = b.row(vec![Value::Str(format!("name{i}"))]).unwrap();
        }
        let mut db = Database::new("d");
        db.add_table(b.build());
        let t = db.table("S").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["S"])
            .cmp("name", CompareOp::Eq, "name0")
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(
            &db,
            t,
            &r,
            Some(&c),
            &DisplayPolicy::TwoSidedPercentage(50.0),
        )
        .unwrap();
        assert_eq!(out.displayed.len(), 5);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        // above PARALLEL_THRESHOLD the windows are evaluated on threads;
        // results must be identical to the small-data sequential path
        let n = super::PARALLEL_THRESHOLD + 1_000;
        let db = db_with_ramp(n);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let q = QueryBuilder::from_tables(["T"])
            .cmp("x", CompareOp::Ge, n as f64 * 0.9)
            .cmp("x", CompareOp::Lt, n as f64 * 0.95)
            .build();
        let c = q.condition.unwrap();
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(10.0)).unwrap();
        // sequential reference: evaluate each child by hand
        let ctx = crate::eval::EvalContext {
            db: &db,
            table: t,
            resolver: &r,
            display_budget: (n as f64 * 0.1).ceil() as usize,
        };
        if let ConditionNode::And(children) = &c.node {
            for (win, child) in out.windows.iter().zip(children) {
                let seq = ctx.eval_node(&child.node).unwrap();
                assert_eq!(*win.raw, seq.distances);
            }
        } else {
            panic!("expected AND root");
        }
        assert_eq!(out.windows.len(), 2);
    }

    #[test]
    fn all_exact_stays_zero_after_normalization() {
        let db = db_with_ramp(5);
        let t = db.table("T").unwrap();
        let r = DistanceResolver::new();
        let c = cond(CompareOp::Ge, 0.0); // everything fulfils
        let out = run_pipeline(&db, t, &r, Some(&c), &DisplayPolicy::Percentage(100.0)).unwrap();
        assert_eq!(out.num_exact, 5);
        assert!(out.combined.iter().all(|d| *d == Some(0.0)));
    }
}
