//! # visdb-relevance
//!
//! The mathematical core of VisDB (§5 of the paper): turning a query and a
//! data set into per-item **relevance factors**.
//!
//! The pipeline implemented here:
//!
//! 1. **Distance evaluation** ([`eval`]) — for every selection predicate,
//!    connection and subquery, compute a signed distance per data item
//!    (0 = fulfilled), using the datatype-dependent functions of
//!    `visdb-distance`.
//! 2. **Reduction** ([`quantile`], [`reduction`]) — decide how many items
//!    can be displayed: the α-quantile rule `p = r / (n·(#sp+1))` (§5.1),
//!    its two-sided variant for signed distances, or the multi-peak *gap
//!    heuristic* `sᵢ = Σ_{j=i−z}^{i+z} |dᵢ − dⱼ|` that cuts the display at
//!    the largest density gap.
//! 3. **Normalization** ([`normalize`]) — map each predicate's distances
//!    to the fixed range `[0, 255]`, either naively over `[dmin, dmax]`
//!    or with the paper's improved weight-proportional pre-reduction that
//!    keeps single outliers from flattening a predicate's contribution.
//! 4. **Combining** ([`combine`]) — weighted arithmetic mean for `AND`
//!    parts, weighted geometric mean for `OR` parts, applied recursively
//!    over the condition tree with re-normalization between levels (§5.2).
//! 5. **Relevance** — the relevance factor is "the inverse of that
//!    distance value": exact answers get the maximum relevance and larger
//!    combined distances monotonically smaller ones.
//!
//! The end-to-end driver is [`pipeline::run_pipeline`].

pub mod cache;
pub mod chunk;
pub mod combine;
pub mod eval;
pub mod extend;
pub mod metric_combine;
pub mod normalize;
pub mod pipeline;
pub mod quantile;
pub mod reduction;
pub(crate) mod stream;

pub use cache::{key_scope, window_key, PipelineCache, WindowSource};
pub use combine::{combine_and_slices, combine_or_slices};
pub use eval::{EvalContext, ExecMode, NodeEval};
pub use extend::{extend_window, extension_recipe, WindowRecipe};
pub use normalize::{
    apply_in_place, apply_slice, fit_frame, fit_improved, fit_k, normalize_frame,
    normalize_improved, normalize_naive, NormParams, NORM_MAX,
};
pub use pipeline::{
    display_count, run_pipeline, run_pipeline_cached, run_pipeline_opts, run_pipeline_partitioned,
    run_pipeline_scalar, DisplayPolicy, DisplayedWindow, Materialization, PhaseTimings,
    PipelineOptions, PipelineOutput, PipelineTrace, PredicateWindow, SharedWindows, WindowData,
    PARALLEL_THRESHOLD, PARTITION_MIN_ROWS,
};
pub use quantile::{display_fraction, quantile, two_sided_range};
pub use reduction::{gap_cutoff, gap_cutoff_naive};
pub use visdb_distance::frame::{Bitmap, DistanceFrame, FrameStats};
