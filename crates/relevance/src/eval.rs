//! Distance evaluation of condition trees over a data context.
//!
//! For every data item (row of the base relation — possibly a
//! materialised cross product for multi-table queries, §4.4) and every
//! node of the condition tree, compute the signed distance from
//! fulfilling that node. Leaves use `visdb-distance`; inner `AND`/`OR`
//! nodes normalize their children and combine them (§5.2, see
//! [`crate::combine`]).

use visdb_distance::batch::{self, CompareKernel, NumericKernel};
use visdb_distance::frame::{DistanceFrame, FrameStats};
use visdb_distance::registry::{ColumnDistance, DistanceResolver};
use visdb_distance::{geo, numeric, string, time};
use visdb_exec::{fault::Phase, CancelToken};
use visdb_index::SortedProjection;
use visdb_query::ast::{
    AttrRef, CompareOp, ConditionNode, Predicate, PredicateTarget, Query, SubqueryLink, Weighted,
};
use visdb_query::connection::{ConnectionKind, ConnectionUse};
use visdb_storage::{ColumnData, Database, NumericSlice, Partitioning, Table};
use visdb_types::{DataType, Error, Result, TypeClass, Value};

use crate::chunk;
use crate::combine::{combine_and_frames, combine_or_frames};
use crate::normalize::normalize_frame;

/// How distances are computed.
///
/// The two modes are **bit identical** in their results (property-tested
/// across policies, column types and NULL patterns); `Scalar` is kept as
/// the reference and benchmark baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Per-tuple reference path: one [`Value`] materialisation and enum
    /// dispatch per row, sequential, full final sort in the pipeline.
    Scalar,
    /// Columnar fast path: typed batch kernels over native column
    /// slices, chunked row-parallel execution, top-k display selection.
    #[default]
    Vectorized,
}

/// Everything needed to evaluate distances.
pub struct EvalContext<'a> {
    /// The catalog (needed to evaluate subqueries over their own tables).
    pub db: &'a Database,
    /// The base relation the distances are computed over. For multi-table
    /// queries this is the (bounded) cross product materialised by the
    /// session layer.
    pub table: &'a Table,
    /// Per-column distance configuration.
    pub resolver: &'a DistanceResolver,
    /// Display budget in items (the `r` of §5.1/§5.2), used by the
    /// weight-proportional normalization inside `AND`/`OR` combining.
    pub display_budget: usize,
    /// Columnar fast path vs per-tuple reference path.
    pub mode: ExecMode,
    /// Horizontal partitioning of the base relation: when set (and the
    /// mode is vectorized), every O(n) pass is scheduled as per-partition
    /// runtime tasks whose kernel inputs come from
    /// [`ColumnData::numeric_slice_at`] — no task reads bytes outside its
    /// partition. Results are bit-identical to the unpartitioned walk.
    pub partitions: Option<&'a Partitioning>,
    /// Cooperative cancellation: when set, every chunk walk polls the
    /// token once per 16k-row chunk and fast-drains (skips chunk
    /// bodies) once it trips; the pipeline's phase checkpoints then
    /// turn the trip into [`Error::Cancelled`] /
    /// [`Error::DeadlineExceeded`] before any partial result can be
    /// cached or returned. `None` costs one branch per chunk.
    pub cancel: Option<&'a CancelToken>,
}

/// The evaluated distances of one condition node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEval {
    /// Window title (predicate label, connection label, operator name).
    pub label: String,
    /// Whether the distances carry meaningful signs.
    pub signed: bool,
    /// Per-row signed distance in packed SoA form; an undefined row
    /// (§4.4 negation rules, NULL operands) has its validity bit cleared.
    pub distances: DistanceFrame,
    /// Reduction stats accumulated during the distance walk — the fused
    /// inputs of the §5.2 normalization fit.
    pub stats: FrameStats,
}

impl<'a> EvalContext<'a> {
    /// Resolve an attribute against the context table. Qualified names try
    /// `Table.Column` first (cross products prefix colliding columns),
    /// then the bare column name.
    pub fn column(&self, attr: &AttrRef) -> Result<(&'a ColumnData, DataType, TypeClass, String)> {
        let schema = self.table.schema();
        let tried: Vec<String> = match &attr.table {
            Some(t) => vec![format!("{t}.{}", attr.column), attr.column.clone()],
            None => vec![attr.column.clone()],
        };
        for name in &tried {
            if let Some(id) = schema.index_of(name) {
                let col = schema.column(id).expect("resolved");
                return Ok((
                    self.table.column(id)?,
                    col.data_type,
                    col.type_class,
                    name.clone(),
                ));
            }
        }
        Err(Error::UnknownColumn {
            table: self.table.name().to_string(),
            column: tried.join(" / "),
        })
    }

    /// The distance behaviour the evaluator uses for `attr` — public so
    /// fast paths that must replicate the pipeline's semantics (the
    /// sorted-projection slider drag) resolve through the exact same
    /// logic instead of duplicating it.
    pub fn distance_for(&self, attr: &AttrRef, dt: DataType, class: TypeClass) -> ColumnDistance {
        let table_hint = attr.table.as_deref().unwrap_or(self.table.name());
        self.resolver.resolve(table_hint, &attr.column, dt, class)
    }

    /// Evaluate any condition node, returning per-row signed distances.
    pub fn eval_node(&self, node: &ConditionNode) -> Result<NodeEval> {
        match node {
            ConditionNode::Predicate(p) => self.eval_predicate(p, false),
            ConditionNode::Not(inner) => self.eval_not(inner),
            ConditionNode::Connection(c) => self.eval_connection(c),
            ConditionNode::Subquery { link, query } => self.eval_subquery(link, query),
            ConditionNode::And(children) => self.eval_boolean(children, true),
            ConditionNode::Or(children) => self.eval_boolean(children, false),
        }
    }

    /// Inner `AND`/`OR` combining: normalize every child frame with the
    /// weight-proportional fit (served by the child's fused stats), then
    /// combine row-wise — the combined frame's stats come out of the same
    /// combine walk, ready for the parent's re-normalization.
    fn eval_boolean(&self, children: &[Weighted], and: bool) -> Result<NodeEval> {
        let evals: Vec<NodeEval> = children
            .iter()
            .map(|w| self.eval_node(&w.node))
            .collect::<Result<_>>()?;
        let normed: Vec<DistanceFrame> = evals
            .iter()
            .zip(children.iter())
            .map(|(e, w)| normalize_frame(&e.distances, &e.stats, w.weight, self.display_budget).0)
            .collect();
        let refs: Vec<&DistanceFrame> = normed.iter().collect();
        let weights: Vec<f64> = children.iter().map(|w| w.weight).collect();
        let (distances, stats) = if and {
            combine_and_frames(&refs, &weights)?
        } else {
            combine_or_frames(&refs, &weights)?
        };
        Ok(NodeEval {
            label: if and { "AND" } else { "OR" }.to_string(),
            signed: false,
            distances,
            stats,
        })
    }

    /// Negation (§4.4): invertible comparison predicates get their
    /// operator inverted and keep graded distances. For every other node
    /// only boolean information survives: rows that *fail* the inner
    /// condition fulfil the negation (distance 0); rows that fulfil it
    /// have no meaningful distance (`None` — "no coloring is possible").
    fn eval_not(&self, inner: &ConditionNode) -> Result<NodeEval> {
        if let ConditionNode::Predicate(p) = inner {
            if let PredicateTarget::Compare { op, value } = &p.target {
                let flipped = Predicate {
                    attr: p.attr.clone(),
                    target: PredicateTarget::Compare {
                        op: op.inverted(),
                        value: value.clone(),
                    },
                };
                let mut e = self.eval_predicate(&flipped, false)?;
                e.label = format!("NOT {}", p.label());
                return Ok(e);
            }
        }
        let e = self.eval_node(inner)?;
        let mut distances = DistanceFrame::undefined(e.distances.len());
        let mut stats = FrameStats::default();
        for (i, d) in e.distances.iter().enumerate() {
            if matches!(d, Some(x) if x != 0.0) {
                distances.set(i, Some(0.0));
                stats.record(0.0);
            }
        }
        Ok(NodeEval {
            label: format!("NOT {}", e.label),
            signed: false,
            distances,
            stats,
        })
    }

    /// Whether chunk walks may fan out across threads.
    fn parallel(&self) -> bool {
        self.mode == ExecMode::Vectorized
    }

    /// The partitioning of the base relation, if any (scalar mode keeps
    /// the strictly sequential reference walk).
    fn partitioning(&self) -> Option<&'a Partitioning> {
        match self.mode {
            ExecMode::Vectorized => self.partitions,
            ExecMode::Scalar => None,
        }
    }

    /// The distance walks' per-chunk cancellation poll: `true` means
    /// "skip this chunk body" (the walk fast-drains; the frame rows it
    /// leaves behind are garbage the pipeline's next checkpoint
    /// discards). One branch when no token is attached.
    #[inline]
    pub(crate) fn poll_cancel(&self) -> bool {
        self.cancel.is_some_and(|c| c.should_stop(Phase::Distance))
    }

    /// Fill `out.set(i, f(i))` for every row, accumulating the fused
    /// [`FrameStats`]. In `Vectorized` mode the rows are walked range by
    /// range — per-partition ranges under a [`Partitioning`], plain
    /// chunks otherwise — fanned out across the shared runtime; the
    /// `Scalar` reference runs the identical loop sequentially (stats
    /// merging is min/max/count, so both produce identical stats).
    fn fill_rows(
        &self,
        out: &mut DistanceFrame,
        f: impl Fn(usize) -> Option<f64> + Sync,
    ) -> FrameStats {
        chunk::for_each_frame_range(
            out,
            self.partitioning(),
            self.parallel(),
            |offset, vals, mask| {
                if self.poll_cancel() {
                    return FrameStats::default();
                }
                let mut stats = FrameStats::default();
                for (j, (v, m)) in vals.iter_mut().zip(mask.iter_mut()).enumerate() {
                    match f(offset + j) {
                        Some(d) => {
                            *v = d;
                            *m = true;
                            stats.record(d);
                        }
                        None => {
                            *v = 0.0;
                            *m = false;
                        }
                    }
                }
                stats
            },
        )
    }

    /// Run a typed batch kernel over the column, range-parallel: every
    /// task slices the column's native buffer and validity mask for its
    /// own row range ([`ColumnData::numeric_slice_at`]) and writes the
    /// packed frame buffers directly, stats fused. Returns `None` when
    /// the column has no native numeric buffer (the caller falls back to
    /// the per-tuple path).
    fn run_kernel(
        &self,
        col: &ColumnData,
        kernel: NumericKernel,
        out: &mut DistanceFrame,
    ) -> Option<FrameStats> {
        col.numeric_slice()?;
        Some(chunk::for_each_frame_range(
            out,
            self.partitioning(),
            self.parallel(),
            |offset, vals, mask| {
                if self.poll_cancel() {
                    return FrameStats::default();
                }
                let (slice, col_mask) = col
                    .numeric_slice_at(offset, vals.len())
                    .expect("numeric buffer checked above");
                match slice {
                    NumericSlice::F64(xs) => batch::run_frame(xs, col_mask, kernel, vals, mask),
                    NumericSlice::I64(xs) => batch::run_frame(xs, col_mask, kernel, vals, mask),
                }
            },
        ))
    }

    /// The batch kernel equivalent to a predicate target, when one exists
    /// under the column's distance behaviour. `None` falls back to the
    /// generic per-tuple path (strings, matrices, geo, bool columns, and
    /// any application-supplied distance override).
    pub(crate) fn kernel_for(
        cd: &ColumnDistance,
        target: &PredicateTarget,
    ) -> Option<NumericKernel> {
        if !matches!(cd, ColumnDistance::Numeric) {
            return None;
        }
        match target {
            PredicateTarget::Compare { op, value } => {
                let kind = match op {
                    CompareOp::Gt | CompareOp::Ge => CompareKernel::Greater,
                    CompareOp::Lt | CompareOp::Le => CompareKernel::Less,
                    CompareOp::Eq => CompareKernel::Equal,
                    CompareOp::Ne => CompareKernel::NotEqual,
                };
                // a NULL or non-numeric literal makes every distance
                // undefined — same as the scalar path's `as_f64()?`
                Some(NumericKernel::Compare(kind, value.as_f64()))
            }
            PredicateTarget::Range { low, high } => match (low.as_f64(), high.as_f64()) {
                (Some(l), Some(h)) => Some(NumericKernel::InRange(l, h)),
                // non-numeric bounds take the generalised ordering path
                _ => None,
            },
            // `Around` is handled by the caller (it must error on a
            // non-numeric center before any distances are computed)
            PredicateTarget::Around { .. } => None,
        }
    }

    /// Dictionary-gather fast path for string-backed columns under a
    /// `String` or `Matrix` distance: the predicate is evaluated once per
    /// *distinct* column value — through the exact same
    /// [`compare_value_distance`]/[`range_value_distance`] the per-tuple
    /// reference runs — and every row is then served by one indexed load
    /// into that table. No per-row [`Value`] clone. Returns `None` when
    /// inapplicable (scalar mode, non-string column, numeric/geo
    /// distances, `Around` targets — which must keep their error path).
    fn gathered_predicate_stats(
        &self,
        col: &ColumnData,
        cd: &ColumnDistance,
        target: &PredicateTarget,
        out: &mut DistanceFrame,
    ) -> Option<FrameStats> {
        if self.mode != ExecMode::Vectorized
            || !matches!(cd, ColumnDistance::String(_) | ColumnDistance::Matrix(_))
            || matches!(target, PredicateTarget::Around { .. })
        {
            return None;
        }
        let (sc, col_mask) = col.str_column()?;
        let dict = sc.dict();
        let (tvals, tdef) = string::code_table(dict.values().iter().map(String::as_str), |u| {
            let v = Value::Str(u.to_owned());
            match target {
                PredicateTarget::Compare { op, value } => {
                    compare_value_distance(&v, *op, value, cd)
                }
                PredicateTarget::Range { low, high } => range_value_distance(&v, low, high, cd),
                PredicateTarget::Around { .. } => unreachable!("filtered above"),
            }
        });
        let codes = dict.codes();
        Some(chunk::for_each_frame_range(
            out,
            self.partitioning(),
            self.parallel(),
            |offset, vals, mask| {
                if self.poll_cancel() {
                    return FrameStats::default();
                }
                let c = &codes[offset..offset + vals.len()];
                let m = col_mask.map(|mm| &mm[offset..offset + vals.len()]);
                string::gather_table(c, m, &tvals, &tdef, vals, mask);
                FrameStats::of_slice(vals, mask)
            },
        ))
    }

    fn eval_predicate(&self, p: &Predicate, negated_label: bool) -> Result<NodeEval> {
        let (col, dt, class, _) = self.column(&p.attr)?;
        let cd = self.distance_for(&p.attr, dt, class);
        let n = self.table.len();
        let mut out = DistanceFrame::undefined(n);
        let kernel_stats = if self.mode == ExecMode::Vectorized {
            Self::kernel_for(&cd, &p.target)
                .and_then(|kernel| self.run_kernel(col, kernel, &mut out))
        } else {
            None
        };
        let stats = match kernel_stats {
            Some(stats) => stats,
            None => match self.gathered_predicate_stats(col, &cd, &p.target, &mut out) {
                Some(stats) => stats,
                None => match &p.target {
                    PredicateTarget::Compare { op, value } => {
                        self.fill_rows(&mut out, |i| compare_distance(col, i, *op, value, &cd))
                    }
                    PredicateTarget::Range { low, high } => {
                        self.fill_rows(&mut out, |i| range_distance(col, i, low, high, &cd))
                    }
                    PredicateTarget::Around { center, deviation } => {
                        let c = center.expect_f64()?;
                        let d = *deviation;
                        let around_stats = (self.mode == ExecMode::Vectorized)
                            .then(|| self.run_kernel(col, NumericKernel::Around(c, d), &mut out))
                            .flatten();
                        match around_stats {
                            Some(stats) => stats,
                            None => self.fill_rows(&mut out, |i| {
                                col.get_f64(i).and_then(|v| numeric::around(v, c, d))
                            }),
                        }
                    }
                },
            },
        };
        let label = if negated_label {
            format!("NOT {}", p.label())
        } else {
            p.label()
        };
        Ok(NodeEval {
            label,
            signed: cd.is_signed(),
            distances: out,
            stats,
        })
    }

    fn eval_connection(&self, c: &ConnectionUse) -> Result<NodeEval> {
        let n = self.table.len();
        let (left_attr, right_attr) = c.def.kind.attrs();
        let mut out = DistanceFrame::undefined(n);
        match &c.def.kind {
            ConnectionKind::Equi { .. } => {
                let (lc, ldt, lcl, _) = self.column(left_attr)?;
                let (rc, ..) = self.column(right_attr)?;
                let cd = self.distance_for(left_attr, ldt, lcl);
                let stats = self.fill_rows(&mut out, |i| cd.value_distance(&lc.get(i), &rc.get(i)));
                Ok(NodeEval {
                    label: c.label(),
                    signed: cd.is_signed(),
                    distances: out,
                    stats,
                })
            }
            ConnectionKind::NonEqui { op, .. } => {
                let (lc, ldt, lcl, _) = self.column(left_attr)?;
                let (rc, ..) = self.column(right_attr)?;
                let cd = self.distance_for(left_attr, ldt, lcl);
                let stats = self.fill_rows(&mut out, |i| {
                    let (a, b) = (lc.get(i), rc.get(i));
                    match a.partial_cmp_value(&b) {
                        None => None,
                        Some(ord) if op.eval(ord) => Some(0.0),
                        Some(_) => cd.value_distance(&a, &b),
                    }
                });
                Ok(NodeEval {
                    label: c.label(),
                    signed: cd.is_signed(),
                    distances: out,
                    stats,
                })
            }
            ConnectionKind::TimeDiff { .. } => {
                let expected = *c.params.first().unwrap_or(&0.0);
                let (lc, ..) = self.column(left_attr)?;
                let (rc, ..) = self.column(right_attr)?;
                let stats = self.fill_rows(&mut out, |i| match (lc.get_f64(i), rc.get_f64(i)) {
                    (Some(a), Some(b)) => time::time_diff(a as i64, b as i64, expected),
                    _ => None,
                });
                Ok(NodeEval {
                    label: c.label(),
                    signed: true,
                    distances: out,
                    stats,
                })
            }
            ConnectionKind::SpatialWithin { .. } => {
                let radius = *c.params.first().unwrap_or(&0.0);
                let (lc, ..) = self.column(left_attr)?;
                let (rc, ..) = self.column(right_attr)?;
                let stats = self.fill_rows(&mut out, |i| {
                    match (lc.get_location(i), rc.get_location(i)) {
                        (Some(a), Some(b)) => geo::within_m(a, b, radius),
                        _ => None,
                    }
                });
                Ok(NodeEval {
                    label: c.label(),
                    signed: false,
                    distances: out,
                    stats,
                })
            }
            ConnectionKind::ForeignKey { .. } => {
                // Exact matching only; "no visualization for the join
                // condition needs to be generated" (§4.4) — fulfilled rows
                // get 0, everything else is undefined.
                let (lc, ..) = self.column(left_attr)?;
                let (rc, ..) = self.column(right_attr)?;
                let stats = self.fill_rows(&mut out, |i| {
                    if lc.get(i) == rc.get(i) && !lc.get(i).is_null() {
                        Some(0.0)
                    } else {
                        None
                    }
                });
                Ok(NodeEval {
                    label: c.label(),
                    signed: false,
                    distances: out,
                    stats,
                })
            }
        }
    }

    /// Subquery distance (§4.4): "the color corresponding to the distance
    /// of the data item most closely fulfilling the subquery condition ...
    /// determined by the minimum distance in performing an approximate
    /// join of the inner and the outer relation(s)".
    fn eval_subquery(&self, link: &SubqueryLink, query: &Query) -> Result<NodeEval> {
        let inner_table_name = query
            .tables
            .first()
            .ok_or_else(|| Error::invalid_query("subquery must reference at least one table"))?;
        let inner_table = self.db.table(inner_table_name)?;
        let inner_ctx = EvalContext {
            db: self.db,
            table: inner_table,
            resolver: self.resolver,
            display_budget: self.display_budget,
            mode: self.mode,
            // the partitioning covers the *outer* base relation; the
            // inner table has its own row count
            partitions: None,
            cancel: self.cancel,
        };
        // combined (normalized) distance of the inner condition per inner row
        let inner_cond: DistanceFrame = match &query.condition {
            Some(w) => {
                let e = inner_ctx.eval_node(&w.node)?;
                normalize_frame(&e.distances, &e.stats, w.weight, self.display_budget).0
            }
            None => DistanceFrame::constant(inner_table.len(), 0.0).0,
        };
        let n = self.table.len();
        match link {
            SubqueryLink::Exists => {
                // Uncorrelated EXISTS: the best inner distance is the same
                // for every outer row — one constant fill, not n sets.
                let best = inner_cond
                    .iter()
                    .flatten()
                    .fold(None::<f64>, |acc, d| Some(acc.map_or(d, |a| a.min(d))));
                let (distances, stats) = match best {
                    Some(b) => DistanceFrame::constant(n, b),
                    None => (DistanceFrame::undefined(n), FrameStats::default()),
                };
                Ok(NodeEval {
                    label: "EXISTS(...)".to_string(),
                    signed: false,
                    distances,
                    stats,
                })
            }
            SubqueryLink::In { outer, inner } => {
                let (oc, odt, ocl, _) = self.column(outer)?;
                let (ic, ..) = inner_ctx.column(inner)?;
                let cd = self.distance_for(outer, odt, ocl);
                let mut out = DistanceFrame::undefined(n);
                let stats = self.min_distance_join(oc, ic, &cd, &inner_cond, &mut out);
                Ok(NodeEval {
                    label: format!("{outer} IN (...)"),
                    signed: false,
                    distances: out,
                    stats,
                })
            }
        }
    }

    /// The §4.4 approximate join: per outer row, the minimum of
    /// `|join_distance| + inner_condition` over every inner row.
    ///
    /// In vectorized mode, numeric join columns take the **banded
    /// sort-merge** path and string-backed columns the per-distinct-value
    /// path; everything else — and the scalar reference — runs the
    /// exhaustive O(n·m) sweep (with typed accessors hoisted out of the
    /// pair loop where the columns allow it). All paths are bit-identical;
    /// the property tests pin them against each other.
    fn min_distance_join(
        &self,
        oc: &ColumnData,
        ic: &ColumnData,
        cd: &ColumnDistance,
        inner_cond: &DistanceFrame,
        out: &mut DistanceFrame,
    ) -> FrameStats {
        if self.mode == ExecMode::Vectorized {
            if let Some(stats) = self.banded_join(oc, ic, cd, inner_cond, out) {
                return stats;
            }
            if let Some(stats) = self.gathered_join(oc, ic, cd, inner_cond, out) {
                return stats;
            }
        }
        self.exhaustive_join(oc, ic, cd, inner_cond, out)
    }

    /// Banded sort-merge join over numeric join columns.
    ///
    /// The inner join column is sorted once (`SortedProjection`, NULL and
    /// NaN rows excluded — exactly the rows the exhaustive sweep skips).
    /// Each outer row starts at its binary-searched insertion point and
    /// sweeps outward **nearest first** ([`SortedProjection::sweep_from`]
    /// yields non-decreasing join gaps), stopping as soon as
    /// `gap + cond_lb >= best`, where `cond_lb` is the global minimum
    /// defined inner-condition distance: every unvisited pair's total is
    /// at least that bound, so excluding it cannot change the minimum.
    /// The min-fold over f64 totals (no NaN can occur: both operands are
    /// non-NaN and the inner column is fully finite) is
    /// order-independent, so the result is bit-identical to the
    /// exhaustive sweep.
    ///
    /// Returns `None` — fall back to the exhaustive sweep — for
    /// non-`Numeric` distances, columns without native numeric buffers,
    /// and inner columns carrying ±inf (where `inf - inf` could make the
    /// reference fold over NaN totals, which is order-sensitive).
    fn banded_join(
        &self,
        oc: &ColumnData,
        ic: &ColumnData,
        cd: &ColumnDistance,
        inner_cond: &DistanceFrame,
        out: &mut DistanceFrame,
    ) -> Option<FrameStats> {
        if !matches!(cd, ColumnDistance::Numeric) {
            return None;
        }
        oc.numeric_slice()?;
        ic.numeric_slice()?;
        let m = ic.len();
        let proj = SortedProjection::build(m, |j| ic.get_f64(j));
        if !proj.is_fully_finite() {
            return None;
        }
        let inner_vals = inner_cond.values();
        let inner_mask = inner_cond.validity();
        // Global lower bound on any defined inner-condition distance
        // (normalized, hence finite and >= 0). +inf means no inner row
        // has a defined condition — every outer row is undefined.
        let cond_lb = inner_cond.iter().flatten().fold(f64::INFINITY, f64::min);
        if cond_lb == f64::INFINITY {
            return Some(FrameStats::default());
        }
        Some(self.fill_rows(out, |i| {
            let ov = oc.get_f64(i)?;
            if !ov.is_finite() {
                // NaN: every join distance is undefined (None). ±inf:
                // totals may all be +inf — reproduce the reference sweep
                // for this row rather than reason about inf arithmetic.
                return exhaustive_row(ov, ic, inner_vals, inner_mask);
            }
            let mut best: Option<f64> = None;
            for (p, gap) in proj.sweep_from(ov) {
                if let Some(b) = best {
                    if gap + cond_lb >= b {
                        break;
                    }
                }
                let j = proj.row_at(p);
                if !inner_mask.get(j) {
                    continue;
                }
                // `gap` is |ov - inner| with the same float ops the
                // reference's `equal_to(..).abs()` performs
                let t = gap + inner_vals[j];
                best = Some(best.map_or(t, |b: f64| b.min(t)));
                if t == 0.0 {
                    break;
                }
            }
            best
        }))
    }

    /// Per-distinct-value join for string-backed columns under `String`
    /// or `Matrix` distances: the whole row result is a pure function of
    /// the outer join value, so the minimum is computed once per distinct
    /// outer value (over a per-distinct-inner-value distance table) and
    /// every outer row is served by one indexed load. No per-pair
    /// [`Value`] clone anywhere.
    fn gathered_join(
        &self,
        oc: &ColumnData,
        ic: &ColumnData,
        cd: &ColumnDistance,
        inner_cond: &DistanceFrame,
        out: &mut DistanceFrame,
    ) -> Option<FrameStats> {
        if !matches!(cd, ColumnDistance::String(_) | ColumnDistance::Matrix(_)) {
            return None;
        }
        let (osc, omask) = oc.str_column()?;
        let (isc, imask) = ic.str_column()?;
        let m = ic.len();
        let inner_vals = inner_cond.values();
        let inner_mask = inner_cond.validity();
        let odict = osc.dict();
        let idict = isc.dict();
        let ivalues = idict.values();
        let icodes = idict.codes();
        let (tvals, tdef) = string::code_table(odict.values().iter().map(String::as_str), |a| {
            // join distance to each distinct inner value, computed once
            let jd: Vec<Option<f64>> = ivalues
                .iter()
                .map(|b| match cd {
                    ColumnDistance::String(kind) => Some(kind.distance(a, b)),
                    ColumnDistance::Matrix(mx) => mx.distance(a, b),
                    _ => unreachable!("gated above"),
                })
                .collect();
            let mut best: Option<f64> = None;
            for j in 0..m {
                if !inner_mask.get(j) || !imask.is_none_or(|mm| mm[j]) {
                    continue;
                }
                if let Some(d) = jd[icodes[j] as usize] {
                    let t = d.abs() + inner_vals[j];
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                    if t == 0.0 {
                        break;
                    }
                }
            }
            best
        });
        let ocodes = odict.codes();
        Some(chunk::for_each_frame_range(
            out,
            self.partitioning(),
            self.parallel(),
            |offset, vals, mask| {
                if self.poll_cancel() {
                    return FrameStats::default();
                }
                let c = &ocodes[offset..offset + vals.len()];
                let mm = omask.map(|w| &w[offset..offset + vals.len()]);
                string::gather_table(c, mm, &tvals, &tdef, vals, mask);
                FrameStats::of_slice(vals, mask)
            },
        ))
    }

    /// The exhaustive O(n·m) sweep — the scalar reference, and the
    /// vectorized fallback for join shapes with no faster structure
    /// (geo/bool/override distances, mixed column types, ±inf inner
    /// columns). Numeric column pairs hoist a flat `f64` copy of the
    /// inner column out of the pair loop; the fully generic loop
    /// materialises a [`Value`] per pair, but no longer walks a
    /// redundant `.take(m)` adaptor.
    fn exhaustive_join(
        &self,
        oc: &ColumnData,
        ic: &ColumnData,
        cd: &ColumnDistance,
        inner_cond: &DistanceFrame,
        out: &mut DistanceFrame,
    ) -> FrameStats {
        let inner_vals = inner_cond.values();
        let inner_mask = inner_cond.validity();
        if matches!(cd, ColumnDistance::Numeric)
            && oc.numeric_slice().is_some()
            && ic.numeric_slice().is_some()
        {
            return self.fill_rows(out, |i| {
                let ov = oc.get_f64(i)?;
                exhaustive_row(ov, ic, inner_vals, inner_mask)
            });
        }
        self.fill_rows(out, |i| {
            let ov = oc.get(i);
            if ov.is_null() {
                return None;
            }
            let mut best: Option<f64> = None;
            for (j, &cond_j) in inner_vals.iter().enumerate() {
                if !inner_mask.get(j) {
                    continue;
                }
                let join_d = cd.value_distance(&ov, &ic.get(j));
                if let Some(t) = join_d.map(|jd| jd.abs() + cond_j) {
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                    if t == 0.0 {
                        break;
                    }
                }
            }
            best
        })
    }
}

/// One outer row of the numeric exhaustive sweep, in reference order:
/// the same `equal_to(..).abs() + cond` fold the generic loop performs,
/// minus the per-pair [`Value`] materialisation.
fn exhaustive_row(
    ov: f64,
    ic: &ColumnData,
    inner_vals: &[f64],
    inner_mask: &visdb_distance::frame::Bitmap,
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for (j, &cond_j) in inner_vals.iter().enumerate() {
        if !inner_mask.get(j) {
            continue;
        }
        let Some(iv) = ic.get_f64(j) else { continue };
        let Some(jd) = numeric::equal_to(ov, iv) else {
            continue;
        };
        let t = jd.abs() + cond_j;
        best = Some(best.map_or(t, |b: f64| b.min(t)));
        if t == 0.0 {
            break;
        }
    }
    best
}

/// Distance of row `i` of `col` from fulfilling `col op value`.
pub(crate) fn compare_distance(
    col: &ColumnData,
    i: usize,
    op: CompareOp,
    value: &Value,
    cd: &ColumnDistance,
) -> Option<f64> {
    compare_value_distance(&col.get(i), op, value, cd)
}

/// [`compare_distance`] of an already-materialised value. The
/// dictionary-gather fast path runs this once per *distinct* column value
/// instead of once per row — same function, so bit-identity is by
/// construction.
pub(crate) fn compare_value_distance(
    v: &Value,
    op: CompareOp,
    value: &Value,
    cd: &ColumnDistance,
) -> Option<f64> {
    if v.is_null() || value.is_null() {
        return None;
    }
    match cd {
        ColumnDistance::Numeric => {
            let (x, t) = (v.as_f64()?, value.as_f64()?);
            match op {
                CompareOp::Gt | CompareOp::Ge => numeric::greater_than(x, t),
                CompareOp::Lt | CompareOp::Le => numeric::less_than(x, t),
                CompareOp::Eq => numeric::equal_to(x, t),
                CompareOp::Ne => numeric::not_equal_to(x, t),
            }
        }
        ColumnDistance::Geo => match op {
            CompareOp::Eq => cd.value_distance(v, value),
            CompareOp::Ne => {
                let d = cd.value_distance(v, value)?;
                Some(if d != 0.0 { 0.0 } else { 1.0 })
            }
            _ => None,
        },
        ColumnDistance::Matrix(m) => {
            let (a, b) = (v.as_str()?, value.as_str()?);
            let (ra, rb) = (m.rank(a)?, m.rank(b)?);
            let raw = m.distance(a, b)?;
            match op {
                CompareOp::Eq => Some(raw),
                CompareOp::Ne => Some(if ra != rb { 0.0 } else { 1.0 }),
                _ if !m.is_ordinal() => None, // order undefined on nominal
                CompareOp::Gt | CompareOp::Ge => Some(if ra >= rb { 0.0 } else { raw }),
                CompareOp::Lt | CompareOp::Le => Some(if ra <= rb { 0.0 } else { raw }),
            }
        }
        ColumnDistance::String(kind) => {
            let (a, b) = (v.as_str()?, value.as_str()?);
            match op {
                CompareOp::Eq => Some(kind.distance(a, b)),
                CompareOp::Ne => Some(if a != b { 0.0 } else { 1.0 }),
                CompareOp::Gt | CompareOp::Ge => {
                    Some(if a >= b { 0.0 } else { kind.distance(a, b) })
                }
                CompareOp::Lt | CompareOp::Le => {
                    Some(if a <= b { 0.0 } else { kind.distance(a, b) })
                }
            }
        }
    }
}

/// Distance of row `i` from the inclusive range `[low, high]`, generalised
/// beyond numerics: inside → 0, outside → signed distance to the violated
/// bound under the column's distance behaviour.
pub(crate) fn range_distance(
    col: &ColumnData,
    i: usize,
    low: &Value,
    high: &Value,
    cd: &ColumnDistance,
) -> Option<f64> {
    range_value_distance(&col.get(i), low, high, cd)
}

/// [`range_distance`] of an already-materialised value (see
/// [`compare_value_distance`] for why the split exists).
pub(crate) fn range_value_distance(
    v: &Value,
    low: &Value,
    high: &Value,
    cd: &ColumnDistance,
) -> Option<f64> {
    if v.is_null() || low.is_null() || high.is_null() {
        return None;
    }
    if let (ColumnDistance::Numeric, Some(x), Some(l), Some(h)) =
        (cd, v.as_f64(), low.as_f64(), high.as_f64())
    {
        return numeric::in_range(x, l, h);
    }
    use std::cmp::Ordering::*;
    let below = matches!(v.partial_cmp_value(low), Some(Less));
    let above = matches!(v.partial_cmp_value(high), Some(Greater));
    if below {
        Some(-cd.value_distance(v, low)?.abs())
    } else if above {
        Some(cd.value_distance(v, high)?.abs())
    } else {
        // inside or incomparable: incomparable is undefined
        match (v.partial_cmp_value(low), v.partial_cmp_value(high)) {
            (Some(_), Some(_)) => Some(0.0),
            _ => None,
        }
    }
}

/// Convenience used by tests and the baseline crate: edit distance of two
/// strings as f64 (re-exported to avoid a dependency cycle).
pub fn edit_distance(a: &str, b: &str) -> f64 {
    string::levenshtein(a, b) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_query::ast::Weighted;
    use visdb_query::builder::QueryBuilder;
    use visdb_query::connection::ConnectionDef;
    use visdb_storage::TableBuilder;
    use visdb_types::{Column, Location};

    fn weather_db() -> Database {
        let mut db = Database::new("env");
        db.add_table(
            TableBuilder::new(
                "Weather",
                vec![
                    Column::new("DateTime", DataType::Timestamp),
                    Column::new("Temperature", DataType::Float),
                    Column::new("Humidity", DataType::Float),
                    Column::new("Station", DataType::Str),
                    Column::new("Loc", DataType::Location),
                ],
            )
            .row(vec![
                Value::Timestamp(0),
                Value::Float(20.0),
                Value::Float(50.0),
                Value::from("munich"),
                Value::Location(Location::new(48.1, 11.6)),
            ])
            .unwrap()
            .row(vec![
                Value::Timestamp(3600),
                Value::Float(10.0),
                Value::Float(80.0),
                Value::from("berlin"),
                Value::Location(Location::new(52.5, 13.4)),
            ])
            .unwrap()
            .row(vec![
                Value::Timestamp(7200),
                Value::Null,
                Value::Float(65.0),
                Value::from("hamburg"),
                Value::Location(Location::new(53.6, 10.0)),
            ])
            .unwrap()
            .build(),
        );
        db
    }

    fn ctx<'a>(db: &'a Database, resolver: &'a DistanceResolver) -> EvalContext<'a> {
        EvalContext {
            db,
            table: db.table("Weather").unwrap(),
            resolver,
            display_budget: 100,
            mode: ExecMode::Vectorized,
            partitions: None,
            cancel: None,
        }
    }

    /// Every eval test asserts on the vectorized path; this helper
    /// re-checks any node against the scalar reference.
    fn assert_modes_agree(db: &Database, node: &ConditionNode) {
        let r = DistanceResolver::new();
        let mut c = ctx(db, &r);
        let vec_eval = c.eval_node(node).unwrap();
        c.mode = ExecMode::Scalar;
        let scalar_eval = c.eval_node(node).unwrap();
        assert_eq!(vec_eval, scalar_eval);
    }

    #[test]
    fn vectorized_and_scalar_modes_agree_on_every_node_kind() {
        let db = weather_db();
        for node in [
            ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Temperature"),
                CompareOp::Gt,
                15.0,
            )),
            ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Station"),
                CompareOp::Eq,
                "munich",
            )),
            ConditionNode::Predicate(Predicate::range(AttrRef::new("Humidity"), 55.0, 70.0)),
            ConditionNode::Not(Box::new(ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Temperature"),
                CompareOp::Le,
                12.0,
            )))),
            ConditionNode::And(vec![
                Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                    AttrRef::new("Temperature"),
                    CompareOp::Gt,
                    15.0,
                ))),
                Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                    AttrRef::new("Humidity"),
                    CompareOp::Lt,
                    60.0,
                ))),
            ]),
        ] {
            assert_modes_agree(&db, &node);
        }
    }

    #[test]
    fn predicate_distances_signed() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let p = ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("Temperature"),
            CompareOp::Gt,
            15.0,
        ));
        let e = c.eval_node(&p).unwrap();
        assert_eq!(e.distances.to_options(), vec![Some(0.0), Some(-5.0), None]);
        assert!(e.signed);
    }

    #[test]
    fn and_combines_with_normalization() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::And(vec![
            Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Temperature"),
                CompareOp::Gt,
                15.0,
            ))),
            Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Humidity"),
                CompareOp::Lt,
                60.0,
            ))),
        ]);
        let e = c.eval_node(&node).unwrap();
        // row 0 fulfils both -> 0; row 1 fails both; row 2 has NULL temp -> None
        assert_eq!(e.distances.get(0), Some(0.0));
        assert!(e.distances.get(1).unwrap() > 0.0);
        assert_eq!(e.distances.get(2), None);
    }

    #[test]
    fn or_fulfilled_when_any_child_is() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::Or(vec![
            Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Temperature"),
                CompareOp::Gt,
                100.0, // nobody fulfils
            ))),
            Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Humidity"),
                CompareOp::Lt,
                60.0, // row 0 fulfils
            ))),
        ]);
        let e = c.eval_node(&node).unwrap();
        assert_eq!(e.distances.get(0), Some(0.0));
        assert!(e.distances.get(1).unwrap() > 0.0);
    }

    #[test]
    fn not_inverts_comparison_predicates() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::Not(Box::new(ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("Temperature"),
            CompareOp::Gt,
            15.0,
        ))));
        let e = c.eval_node(&node).unwrap();
        // NOT (T > 15) == T <= 15: row 0 (20.0) fails by 5, row 1 fulfils
        assert_eq!(e.distances.get(0), Some(5.0));
        assert_eq!(e.distances.get(1), Some(0.0));
        assert!(e.label.starts_with("NOT"));
    }

    #[test]
    fn not_of_complex_node_is_boolean_only() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::Not(Box::new(ConditionNode::Or(vec![Weighted::unit(
            ConditionNode::Predicate(Predicate::compare(
                AttrRef::new("Humidity"),
                CompareOp::Lt,
                60.0,
            )),
        )])));
        let e = c.eval_node(&node).unwrap();
        // row 0 fulfils the inner OR -> negation undefined; rows 1,2 fail
        // the inner -> negation fulfilled
        assert_eq!(e.distances.get(0), None);
        assert_eq!(e.distances.get(1), Some(0.0));
        assert_eq!(e.distances.get(2), Some(0.0));
    }

    #[test]
    fn string_predicate_uses_edit_distance() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::Predicate(Predicate::compare(
            AttrRef::new("Station"),
            CompareOp::Eq,
            "munich",
        ));
        let e = c.eval_node(&node).unwrap();
        assert_eq!(e.distances.get(0), Some(0.0));
        assert!(e.distances.get(1).unwrap() > 0.0);
        assert!(!e.signed);
    }

    #[test]
    fn range_distance_generalises() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let node = ConditionNode::Predicate(Predicate::range(AttrRef::new("Humidity"), 55.0, 70.0));
        let e = c.eval_node(&node).unwrap();
        assert_eq!(e.distances.get(0), Some(-5.0)); // 50 below 55
        assert_eq!(e.distances.get(1), Some(10.0)); // 80 above 70
        assert_eq!(e.distances.get(2), Some(0.0)); // 65 inside
    }

    #[test]
    fn in_subquery_min_distance() {
        let mut db = weather_db();
        db.add_table(
            TableBuilder::new("Alerts", vec![Column::new("AlertTemp", DataType::Float)])
                .row(vec![Value::Float(9.0)])
                .unwrap()
                .row(vec![Value::Float(19.0)])
                .unwrap()
                .build(),
        );
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let sub = QueryBuilder::from_tables(["Alerts"])
            .select(["AlertTemp"])
            .build();
        let node = ConditionNode::Subquery {
            link: SubqueryLink::In {
                outer: AttrRef::new("Temperature"),
                inner: AttrRef::new("AlertTemp"),
            },
            query: Box::new(sub),
        };
        let e = c.eval_node(&node).unwrap();
        // row 0: T=20, nearest alert 19 -> 1; row 1: T=10, nearest 9 -> 1
        assert_eq!(e.distances.get(0), Some(1.0));
        assert_eq!(e.distances.get(1), Some(1.0));
        assert_eq!(e.distances.get(2), None); // NULL temperature
    }

    #[test]
    fn exists_subquery_best_inner() {
        let db = weather_db();
        let r = DistanceResolver::new();
        let c = ctx(&db, &r);
        let sub = QueryBuilder::from_tables(["Weather"])
            .cmp("Temperature", CompareOp::Gt, 25.0)
            .build();
        let node = ConditionNode::Subquery {
            link: SubqueryLink::Exists,
            query: Box::new(sub),
        };
        let e = c.eval_node(&node).unwrap();
        // nobody has T > 25; best shortfall is 20 -> normalized minimum > 0,
        // identical for all outer rows
        assert!(e.distances.get(0).unwrap() >= 0.0);
        assert_eq!(e.distances.get(0), e.distances.get(1));
    }

    #[test]
    fn connection_eval_over_cross_product() {
        let db = weather_db();
        let weather = db.table("Weather").unwrap();
        let cross = weather.cross_product(weather, "WxW");
        let r = DistanceResolver::new();
        let c = EvalContext {
            db: &db,
            table: &cross,
            resolver: &r,
            display_budget: 100,
            mode: ExecMode::Vectorized,
            partitions: None,
            cancel: None,
        };
        let def = ConnectionDef {
            name: "with-time-diff".into(),
            left_table: "Weather".into(),
            right_table: "Weather".into(),
            kind: ConnectionKind::TimeDiff {
                left: AttrRef::new("DateTime"),
                right: AttrRef::qualified("Weather", "DateTime"),
            },
        };
        let u = def.instantiate(vec![3600.0]).unwrap();
        let e = c.eval_node(&ConditionNode::Connection(u)).unwrap();
        assert_eq!(e.distances.len(), 9);
        // pair (row1, row0): 3600 - 0 - 3600 = 0 -> fulfilled
        assert_eq!(e.distances.get(3), Some(0.0));
        // pair (row0, row0): 0 - 0 - 3600 = -3600
        assert_eq!(e.distances.get(0), Some(-3600.0));
    }
}
