//! Distance normalization (§5.2).
//!
//! Distances from different predicates live on incommensurable scales
//! ("a distance of 1g/dl for Haemoglobin may be very large and a distance
//! of 1,000 per dl for Erythrocyte may be very small"). Before combining,
//! each predicate's distances are mapped to the fixed range `[0, 255]`.
//!
//! * [`normalize_naive`] — linear transform of `[dmin, dmax]`. Sensitive
//!   to outliers: "a single data item with an exceptionally high or low
//!   value may cause a completely different transformation".
//! * [`normalize_improved`] — the paper's fix: first reduce the items
//!   considered for the predicate to a count proportional to `r / wⱼ`
//!   ("proportional to r/(n·wⱼ)" as a fraction of n), *then* normalize
//!   over the remaining range. Lightly-weighted predicates keep more
//!   far-away items (they matter less, so a coarser scale is fine);
//!   heavily-weighted predicates get their resolution concentrated near
//!   the query.

use visdb_distance::frame::{DistanceFrame, FrameStats};

/// The fixed upper bound of normalized distances.
pub const NORM_MAX: f64 = 255.0;

/// Parameters of a fitted normalization, so sliders can map colors back
/// to attribute values ("the possibility to get the specific values
/// corresponding to the different colors", §4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormParams {
    /// Smallest absolute distance in the fitted set.
    pub dmin: f64,
    /// Largest absolute distance in the fitted set (values beyond clamp).
    pub dmax: f64,
}

impl NormParams {
    /// Map an absolute distance to `[0, NORM_MAX]` (clamping overshoot).
    #[inline]
    pub fn apply(&self, d: f64) -> f64 {
        if !d.is_finite() {
            return NORM_MAX;
        }
        let range = self.dmax - self.dmin;
        if range <= 0.0 {
            // degenerate: all fitted distances equal; they normalize to 0
            return if d <= self.dmax { 0.0 } else { NORM_MAX };
        }
        (((d - self.dmin) / range) * NORM_MAX).clamp(0.0, NORM_MAX)
    }

    /// Inverse map from a normalized value back to an absolute distance.
    #[inline]
    pub fn invert(&self, norm: f64) -> f64 {
        self.dmin + (norm / NORM_MAX) * (self.dmax - self.dmin)
    }
}

// NOTE on `dmin`: the paper describes "a linear transformation of the
// range [dmin, dmax]". We anchor the transform at 0 instead of the
// observed minimum — otherwise a query with *no* exact answers would map
// its closest approximate answer to normalized distance 0, making it
// indistinguishable from an exact answer (wrong yellow region, wrong
// `# results`). Anchoring at zero preserves the invariant
// `normalized == 0 ⇔ raw == 0` that the whole display semantics rest on.
pub(crate) fn params_from_max(dmax: f64) -> NormParams {
    if dmax.is_finite() {
        NormParams { dmin: 0.0, dmax }
    } else {
        NormParams {
            dmin: 0.0,
            dmax: 0.0,
        }
    }
}

fn fit(values: &[Option<f64>]) -> NormParams {
    let dmax = values
        .iter()
        .flatten()
        .map(|d| d.abs())
        .filter(|d| d.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    params_from_max(dmax)
}

/// The improved (§5.2) fit count: how many of the smallest absolute
/// distances the transform range is fitted over, `k = r / max(w, ε)`
/// clamped to `[1, n]`. Returns `None` when the fit covers *everything*
/// (zero/invalid weight, or `k >= n`) — the single source of truth for
/// every fit implementation (Option-vector, packed-frame, and the
/// sorted-projection O(log n) fast path), which is what keeps them
/// bit-identical.
pub fn fit_k(n: usize, weight: f64, display_budget: usize) -> Option<usize> {
    if !(weight.is_finite() && weight > 0.0) {
        // zero/invalid weight: keep everything (the predicate hardly
        // matters, so the coarsest scale is acceptable)
        return None;
    }
    let w = weight.min(1.0);
    let k = ((display_budget as f64 / w).ceil() as usize).clamp(1, n.max(1));
    (k < n).then_some(k)
}

/// `dmax` of a selected prefix: the largest *finite* absolute distance
/// among the `k` smallest (non-finite candidates sort last under
/// `total_cmp`, so they only enter when nothing nearer is left, and the
/// finite filter keeps them out of the transform range either way).
pub(crate) fn dmax_of_prefix(abs: &[f64]) -> f64 {
    abs.iter()
        .copied()
        .filter(|d| d.is_finite())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Fit the improved (§5.2) normalization *without* applying it: the
/// transform range is `[0, k-th smallest absolute distance]` with
/// `k = min(n, r / max(w, ε))` ([`fit_k`]). Runs in O(n) expected time
/// via `select_nth_unstable_by` — the pipeline calls this per window, so
/// a full sort here would silently re-introduce the O(n log n) term the
/// top-k display selection removes.
///
/// NaN policy: candidates are ordered by [`f64::total_cmp`], under which
/// NaN absolute distances sort *after* `+inf` — a NaN distance is
/// treated as farthest-possible, never as interchangeable with its
/// neighbours (the old `partial_cmp(..).unwrap_or(Equal)` comparator
/// made the selection order — and therefore `dmax` — depend on pivot
/// luck when NaNs were present).
pub fn fit_improved(values: &[Option<f64>], weight: f64, display_budget: usize) -> NormParams {
    let Some(k) = fit_k(values.len(), weight, display_budget) else {
        return fit(values);
    };
    let mut abs: Vec<f64> = values.iter().flatten().map(|d| d.abs()).collect();
    if abs.is_empty() {
        return params_from_max(f64::NEG_INFINITY);
    }
    let k = k.min(abs.len());
    if k < abs.len() {
        abs.select_nth_unstable_by(k - 1, f64::total_cmp);
    }
    params_from_max(dmax_of_prefix(&abs[..k]))
}

/// [`fit_improved`] over a packed [`DistanceFrame`] whose reduction
/// stats were accumulated during the distance walk: whenever the fit
/// covers every defined item (small relations, light weights, NULL-heavy
/// columns) the answer comes straight from the fused stats — **zero**
/// extra passes — and otherwise the selection runs over a gather of
/// 8-byte absolute values instead of re-collecting a 16-byte `Option`
/// vector. Bit-identical to [`fit_improved`] on the `Option` view of the
/// same frame (shared [`fit_k`] and `total_cmp` selection).
pub fn fit_frame(
    frame: &DistanceFrame,
    stats: &FrameStats,
    weight: f64,
    display_budget: usize,
) -> NormParams {
    debug_assert_eq!(stats.defined, FrameStats::of_frame(frame).defined);
    let Some(k) = fit_k(frame.len(), weight, display_budget) else {
        return params_from_max(stats.max_abs);
    };
    if stats.defined == 0 {
        return params_from_max(f64::NEG_INFINITY);
    }
    let k = k.min(stats.defined);
    if k == stats.defined {
        return params_from_max(stats.max_abs);
    }
    if stats.non_finite == 0 && stats.min_abs == stats.max_abs {
        // all defined distances share one finite magnitude: any k of
        // them fit the same range
        return params_from_max(stats.max_abs);
    }
    let mut abs: Vec<f64> = frame
        .values()
        .iter()
        .zip(frame.validity().as_slice())
        .filter(|&(_, &ok)| ok)
        .map(|(&v, _)| v.abs())
        .collect();
    abs.select_nth_unstable_by(k - 1, f64::total_cmp);
    params_from_max(dmax_of_prefix(&abs[..k]))
}

/// [`fit_frame`] of an appended frame *without the frame*: refit
/// `old ++ delta` from the old fit, the old/merged fused stats, and the
/// delta rows alone — O(Δ) instead of the O(n + Δ) selection.
///
/// The stats-only branches of [`fit_frame`] are replicated verbatim
/// against the merged stats. The selection branch reuses the old
/// result: when the same `k` governed the old fit, the old prefix was
/// all-finite (so `old_params.dmax` *is* the k-th smallest absolute
/// distance under `total_cmp`), and no appended defined `|d|` sorts
/// strictly below it, the k smallest of the union are value-identical
/// to the old prefix and the fit is unchanged. Returns `None` when the
/// answer would depend on an order statistic the delta may have
/// displaced — the caller must fall back to [`fit_frame`] over the
/// concatenated frame (which stays bit-identical either way).
pub fn fit_frame_extended(
    old_len: usize,
    old_stats: &FrameStats,
    old_params: NormParams,
    delta: &DistanceFrame,
    merged: &FrameStats,
    weight: f64,
    display_budget: usize,
) -> Option<NormParams> {
    let new_len = old_len + delta.len();
    let Some(k) = fit_k(new_len, weight, display_budget) else {
        return Some(params_from_max(merged.max_abs));
    };
    if merged.defined == 0 {
        return Some(params_from_max(f64::NEG_INFINITY));
    }
    let keff = k.min(merged.defined);
    if keff == merged.defined {
        return Some(params_from_max(merged.max_abs));
    }
    if merged.non_finite == 0 && merged.min_abs == merged.max_abs {
        return Some(params_from_max(merged.max_abs));
    }
    // selection branch: reuse the old k-th order statistic iff it is
    // provably still the k-th of the union
    if fit_k(old_len, weight, display_budget) != Some(k) {
        return None; // a different k governed the old fit
    }
    if k >= old_stats.defined || old_stats.defined - old_stats.non_finite < k {
        // the old fit either covered every defined row (stats branch)
        // or its prefix reached into non-finite values — in both cases
        // old_params.dmax is not the k-th smallest
        return None;
    }
    let kth = old_params.dmax;
    if !kth.is_finite() {
        return None;
    }
    let displaced = delta
        .values()
        .iter()
        .zip(delta.validity().as_slice())
        .any(|(&v, &ok)| ok && v.abs().total_cmp(&kth) == std::cmp::Ordering::Less);
    if displaced {
        None // a nearer appended row enters the prefix: fit shifts
    } else {
        Some(old_params)
    }
}

/// [`normalize_improved`] over a packed frame: fit via [`fit_frame`],
/// then apply in one walk over the 8-byte buffers. Undefined stays
/// undefined.
pub fn normalize_frame(
    frame: &DistanceFrame,
    stats: &FrameStats,
    weight: f64,
    display_budget: usize,
) -> (DistanceFrame, NormParams) {
    let params = fit_frame(frame, stats, weight, display_budget);
    (apply_frame(frame, params), params)
}

/// Apply fitted params to every defined row of a frame.
pub fn apply_frame(frame: &DistanceFrame, params: NormParams) -> DistanceFrame {
    let mut out = DistanceFrame::undefined(frame.len());
    {
        let (vals, mask) = out.parts_mut();
        apply_slice(
            params,
            frame.values(),
            frame.validity().as_slice(),
            vals,
            mask,
        );
    }
    out
}

/// One row of the branchless apply: exactly `params.apply(x.abs())`
/// restructured as unconditional arithmetic plus [`select`] moves, so a
/// slice walk built from it has no data-dependent branch. Both the
/// degenerate and the linear arm are always evaluated (a `range <= 0`
/// division yields ±inf/NaN, which the select discards), and the
/// non-finite guard comes last just as in [`NormParams::apply`] — the
/// result is bit-identical for every input and parameter combination,
/// including NaN/±inf distances and degenerate or hand-built params.
#[inline(always)]
fn apply_one(params: &NormParams, x: f64) -> f64 {
    use visdb_distance::lanes::select;
    let a = x.abs();
    let range = params.dmax - params.dmin;
    let degenerate_v = select(a <= params.dmax, 0.0, NORM_MAX);
    let linear_v = (((a - params.dmin) / range) * NORM_MAX).clamp(0.0, NORM_MAX);
    let v = select(range <= 0.0, degenerate_v, linear_v);
    select(a.is_finite(), v, NORM_MAX)
}

/// Branchless slice form of the normalize apply walk: writes
/// `params.apply(vals[i].abs())` for defined rows and the canonical
/// `(0.0, false)` for undefined rows into the packed output buffers.
/// Validity-bitmap words drive the lane masks — each 8-row block is
/// classified with one `u64` compare, fully-defined blocks run a pure
/// value loop the autovectorizer turns into `f64x4` arithmetic, and
/// mixed blocks keep per-lane [`select`] moves instead of per-row
/// branches. Bit-identical to the branchy per-row reference across lane
/// remainders and NULL/NaN/±inf-dense inputs (property-tested).
pub fn apply_slice(
    params: NormParams,
    vals: &[f64],
    mask: &[bool],
    out_vals: &mut [f64],
    out_mask: &mut [bool],
) {
    use visdb_distance::lanes::{mask_word, select, ALL_VALID_WORD, WORD_ROWS};
    debug_assert_eq!(vals.len(), mask.len());
    debug_assert_eq!(vals.len(), out_vals.len());
    debug_assert_eq!(vals.len(), out_mask.len());
    out_mask.copy_from_slice(mask);
    let blocks = vals.len() / WORD_ROWS * WORD_ROWS;
    let (vh, vt) = vals.split_at(blocks);
    let (mh, mt) = mask.split_at(blocks);
    let (oh, ot) = out_vals.split_at_mut(blocks);
    for ((v8, m8), o8) in vh
        .chunks_exact(WORD_ROWS)
        .zip(mh.chunks_exact(WORD_ROWS))
        .zip(oh.chunks_exact_mut(WORD_ROWS))
    {
        if mask_word(m8) == ALL_VALID_WORD {
            for l in 0..WORD_ROWS {
                o8[l] = apply_one(&params, v8[l]);
            }
        } else {
            for l in 0..WORD_ROWS {
                o8[l] = select(m8[l], apply_one(&params, v8[l]), 0.0);
            }
        }
    }
    for ((&v, &m), o) in vt.iter().zip(mt).zip(ot) {
        *o = select(m, apply_one(&params, v), 0.0);
    }
}

/// In-place [`apply_slice`]: normalize a chunk's value buffer against
/// its validity mask without a second buffer (the streaming pass-2
/// register loop). Undefined rows are rewritten to the canonical `0.0`
/// they already carry.
pub fn apply_in_place(params: NormParams, vals: &mut [f64], mask: &[bool]) {
    use visdb_distance::lanes::{mask_word, select, ALL_VALID_WORD, WORD_ROWS};
    debug_assert_eq!(vals.len(), mask.len());
    let blocks = vals.len() / WORD_ROWS * WORD_ROWS;
    let (vh, vt) = vals.split_at_mut(blocks);
    let (mh, mt) = mask.split_at(blocks);
    for (v8, m8) in vh
        .chunks_exact_mut(WORD_ROWS)
        .zip(mh.chunks_exact(WORD_ROWS))
    {
        if mask_word(m8) == ALL_VALID_WORD {
            for v in v8.iter_mut() {
                *v = apply_one(&params, *v);
            }
        } else {
            for (v, &m) in v8.iter_mut().zip(m8) {
                *v = select(m, apply_one(&params, *v), 0.0);
            }
        }
    }
    for (v, &m) in vt.iter_mut().zip(mt) {
        *v = select(m, apply_one(&params, *v), 0.0);
    }
}

/// Naive normalization: fit `[dmin, dmax]` over *all* defined distances
/// and map absolute values to `[0, NORM_MAX]`. Undefined stays undefined.
pub fn normalize_naive(values: &[Option<f64>]) -> (Vec<Option<f64>>, NormParams) {
    let params = fit(values);
    let out = values
        .iter()
        .map(|v| v.map(|d| params.apply(d.abs())))
        .collect();
    (out, params)
}

/// Improved normalization (§5.2): fit the transform only over the
/// `k = min(n, r / max(w, ε))` smallest absolute distances, where `r` is
/// the display budget (items) and `w ∈ (0, 1]` the predicate weight; then
/// apply it to all values, clamping beyond-range items to `NORM_MAX`.
///
/// This realises the paper's intent: an exceptional outlier no longer
/// stretches the scale, and the predicate retains its "impact on the
/// overall answer".
pub fn normalize_improved(
    values: &[Option<f64>],
    weight: f64,
    display_budget: usize,
) -> (Vec<Option<f64>>, NormParams) {
    let params = fit_improved(values, weight, display_budget);
    let out = values
        .iter()
        .map(|v| v.map(|d| params.apply(d.abs())))
        .collect();
    (out, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive cross of messy old/delta shapes: whenever the O(Δ)
    /// incremental refit answers, it must agree bit-for-bit with
    /// [`fit_frame`] over the concatenated frame — and it must actually
    /// fire (not hide behind `None`) for the far-delta shape the append
    /// fast path exists for.
    #[test]
    fn incremental_refit_matches_full_refit_when_it_answers() {
        let olds: Vec<Vec<Option<f64>>> = vec![
            (0..40).map(|i| Some(i as f64)).collect(),
            (0..40)
                .map(|i| match i % 5 {
                    0 => None,
                    1 => Some(f64::NAN),
                    2 => Some(f64::INFINITY),
                    _ => Some(i as f64 - 20.0),
                })
                .collect(),
            vec![None; 10],
            vec![Some(3.0); 12],
            vec![Some(0.0); 12],
            (0..6).map(|i| Some(i as f64)).collect(),
        ];
        let deltas: Vec<Vec<Option<f64>>> = vec![
            vec![Some(1000.0), Some(-2000.0)],
            vec![Some(0.5), None],
            vec![Some(0.0)],
            vec![Some(f64::NAN), Some(f64::NEG_INFINITY)],
            vec![None, None, None],
            (0..30).map(|i| Some(i as f64 / 7.0)).collect(),
        ];
        let mut fired = 0usize;
        for old_vals in &olds {
            for delta_vals in &deltas {
                for budget in [1usize, 4, 16, 64] {
                    for weight in [1.0f64, 0.3] {
                        let old = DistanceFrame::from_options(old_vals);
                        let old_stats = FrameStats::of_frame(&old);
                        let old_params = fit_frame(&old, &old_stats, weight, budget);
                        let delta = DistanceFrame::from_options(delta_vals);
                        let mut merged = old_stats;
                        merged.merge(&FrameStats::of_frame(&delta));
                        let ext = old.concat(&delta);
                        let full = fit_frame(&ext, &merged, weight, budget);
                        if let Some(fast) = fit_frame_extended(
                            old.len(),
                            &old_stats,
                            old_params,
                            &delta,
                            &merged,
                            weight,
                            budget,
                        ) {
                            fired += 1;
                            assert_eq!(
                                fast, full,
                                "incremental refit diverged (old {old_vals:?}, \
                                 delta {delta_vals:?}, budget {budget}, weight {weight})"
                            );
                        }
                    }
                }
            }
        }
        assert!(fired > 0, "the incremental refit never answered");
        // the canonical append shape — a dense old frame and a delta of
        // strictly farther rows — must take the O(Δ) path
        let old: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let old = DistanceFrame::from_options(&old);
        let old_stats = FrameStats::of_frame(&old);
        let old_params = fit_frame(&old, &old_stats, 1.0, 10);
        let delta = DistanceFrame::from_options(&[Some(500.0), Some(-700.0)]);
        let mut merged = old_stats;
        merged.merge(&FrameStats::of_frame(&delta));
        let fast = fit_frame_extended(old.len(), &old_stats, old_params, &delta, &merged, 1.0, 10)
            .expect("far delta must refit incrementally");
        assert_eq!(fast, old_params);
    }

    #[test]
    fn naive_maps_to_fixed_range() {
        let v = vec![Some(0.0), Some(5.0), Some(10.0), None];
        let (out, p) = normalize_naive(&v);
        assert_eq!(out[0], Some(0.0));
        assert_eq!(out[1], Some(127.5));
        assert_eq!(out[2], Some(255.0));
        assert_eq!(out[3], None);
        assert_eq!(p.dmin, 0.0);
        assert_eq!(p.dmax, 10.0);
    }

    #[test]
    fn naive_uses_absolute_values() {
        let v = vec![Some(-10.0), Some(0.0), Some(5.0)];
        let (out, _) = normalize_naive(&v);
        assert_eq!(out[0], Some(255.0));
        assert_eq!(out[1], Some(0.0));
        assert_eq!(out[2], Some(127.5));
    }

    #[test]
    fn degenerate_all_equal_normalizes_to_max() {
        // equal nonzero distances are all equally (maximally) far — the
        // zero anchor keeps them distinct from exact answers
        let v = vec![Some(3.0), Some(3.0)];
        let (out, _) = normalize_naive(&v);
        assert_eq!(out, vec![Some(255.0), Some(255.0)]);
        // while equal *zero* distances stay exact
        let v = vec![Some(0.0), Some(0.0)];
        let (out, _) = normalize_naive(&v);
        assert_eq!(out, vec![Some(0.0), Some(0.0)]);
    }

    #[test]
    fn outlier_flattens_naive_but_not_improved() {
        // 99 distances in [0,1], one outlier at 1000
        let mut v: Vec<Option<f64>> = (0..99).map(|i| Some(i as f64 / 99.0)).collect();
        v.push(Some(1000.0));
        let (naive, _) = normalize_naive(&v);
        // under naive normalization the regular values are crushed to ~0
        assert!(naive[98].unwrap() < 1.0);
        // improved with budget 50, weight 1: fit over the 50 smallest
        let (better, p) = normalize_improved(&v, 1.0, 50);
        assert!(better[49].unwrap() > 200.0, "{:?}", better[49]);
        // outlier clamps to the max
        assert_eq!(better[99], Some(NORM_MAX));
        assert!(p.dmax < 2.0);
    }

    #[test]
    fn lower_weight_keeps_more_items() {
        let v: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let (_, p_heavy) = normalize_improved(&v, 1.0, 20); // keeps 20
        let (_, p_light) = normalize_improved(&v, 0.25, 20); // keeps 80
        assert!(p_light.dmax > p_heavy.dmax);
    }

    #[test]
    fn fit_improved_matches_a_sort_based_reference() {
        // the O(n) selection must agree with the obvious "sort every
        // absolute distance, take the max of the k smallest" definition
        let values: Vec<Option<f64>> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some(((i * 37) % 113) as f64 - 50.0)
                }
            })
            .collect();
        for (weight, budget) in [(1.0, 20), (0.5, 20), (0.1, 3), (1.0, 500), (0.0, 10)] {
            let got = fit_improved(&values, weight, budget);
            let mut abs: Vec<f64> = values.iter().flatten().map(|d| d.abs()).collect();
            abs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let k = if weight > 0.0 {
                ((budget as f64 / weight.min(1.0)).ceil() as usize)
                    .clamp(1, values.len())
                    .min(abs.len())
            } else {
                abs.len()
            };
            let expect = if k >= values.len() || weight <= 0.0 {
                abs.last().copied().unwrap()
            } else {
                abs[k - 1]
            };
            assert_eq!(got.dmax, expect, "weight={weight} budget={budget}");
            assert_eq!(got.dmin, 0.0);
        }
    }

    #[test]
    fn nan_distances_sort_last_and_never_destabilise_the_fit() {
        // regression: the selection used to compare with
        // `partial_cmp(..).unwrap_or(Equal)`, so a NaN candidate made the
        // k-smallest prefix depend on pivot order. Under `total_cmp` the
        // NaN policy is explicit: NaN = farthest, dmax stays finite.
        let mut values: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        for i in (0..100).step_by(7) {
            values[i] = Some(f64::NAN);
        }
        let got = fit_improved(&values, 1.0, 20);
        // the 20 smallest non-NaN magnitudes are 1..=23 minus NaN slots;
        // the fit must equal the sort-based reference exactly
        let mut abs: Vec<f64> = values.iter().flatten().map(|d| d.abs()).collect();
        abs.sort_by(f64::total_cmp);
        let expect = abs[..20]
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(got.dmax, expect);
        assert!(got.dmax.is_finite());
        // all-NaN distances: nothing finite to fit, degenerate params
        let all_nan: Vec<Option<f64>> = (0..10).map(|_| Some(f64::NAN)).collect();
        let p = fit_improved(&all_nan, 1.0, 3);
        assert_eq!((p.dmin, p.dmax), (0.0, 0.0));
    }

    #[test]
    fn frame_fit_matches_option_fit_with_fused_stats() {
        use visdb_distance::frame::{DistanceFrame, FrameStats};
        let cases: Vec<Vec<Option<f64>>> = vec![
            (0..200)
                .map(|i| {
                    if i % 7 == 0 {
                        None
                    } else {
                        Some(((i * 37) % 113) as f64 - 50.0)
                    }
                })
                .collect(),
            vec![None; 50],                                  // all NULL
            Vec::new(),                                      // zero rows
            (0..40).map(|_| Some(f64::NAN)).collect(),       // all NaN
            (0..40).map(|_| Some(3.0)).collect(),            // all equal
            vec![Some(f64::INFINITY), Some(1.0), Some(0.0)], // infinities
        ];
        for values in cases {
            let frame = DistanceFrame::from_options(&values);
            let mut stats = FrameStats::default();
            for d in values.iter().flatten() {
                stats.record(*d);
            }
            for (weight, budget) in [(1.0, 20), (0.5, 20), (0.1, 3), (1.0, 500), (0.0, 10)] {
                let a = fit_improved(&values, weight, budget);
                let b = fit_frame(&frame, &stats, weight, budget);
                assert_eq!(a, b, "weight={weight} budget={budget} {values:?}");
                let (normed, p) = normalize_frame(&frame, &stats, weight, budget);
                let (normed_ref, p_ref) = normalize_improved(&values, weight, budget);
                assert_eq!(p, p_ref);
                assert_eq!(normed.to_options(), normed_ref);
            }
        }
    }

    #[test]
    fn invalid_weight_falls_back_to_naive() {
        let v = vec![Some(1.0), Some(2.0)];
        let (out, _) = normalize_improved(&v, 0.0, 1);
        let (naive, _) = normalize_naive(&v);
        assert_eq!(out, naive);
    }

    #[test]
    fn params_round_trip() {
        let p = NormParams {
            dmin: 2.0,
            dmax: 12.0,
        };
        for d in [2.0, 5.0, 12.0] {
            let n = p.apply(d);
            assert!((p.invert(n) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn infinite_distance_clamps() {
        let p = NormParams {
            dmin: 0.0,
            dmax: 1.0,
        };
        assert_eq!(p.apply(f64::INFINITY), NORM_MAX);
    }
}
