//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace resolves the `rand` dependency name to this
//! shim (see the root `Cargo.toml`). It covers the API surface
//! `visdb-data` uses — [`Rng::gen_range`] over half-open ranges of
//! `f64` / `usize` / `u8` / `i32` / `u32` / `u64`, plus a seedable
//! [`rngs::StdRng`] — backed by the SplitMix64 generator. Streams are
//! deterministic per seed but differ from real `rand`'s ChaCha-based
//! `StdRng`; the synthetic data generators only rely on seed-stable
//! output, not on a particular stream.

use std::ops::Range;

/// Raw 64-bit generator.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for any [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        // 53 uniform mantissa bits in [0, 1)
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo reduction; the tiny bias is irrelevant for the
                // synthetic-data spans (all far below 2^32) used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 — tiny, fast, and
    /// seed-stable, which is all the synthetic workloads need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(7);
                a.gen_range(0..1000u64) == c.gen_range(0..1000u64)
            })
            .count();
        assert!(same < 20, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let u = r.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let b = r.gen_range(0..26u8);
            assert!(b < 26);
            let i = r.gen_range(0..3);
            assert!((0..3i32).contains(&i));
        }
    }

    #[test]
    fn f64_unit_interval_covers_both_halves() {
        let mut r = StdRng::seed_from_u64(1);
        let draws: Vec<f64> = (0..1000).map(|_| r.gen_range(0.0..1.0)).collect();
        assert!(draws.iter().any(|&x| x < 0.5));
        assert!(draws.iter().any(|&x| x > 0.5));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.4..0.6).contains(&mean), "mean {mean}");
    }
}
