//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace resolves the `criterion` dependency name to
//! this shim (see the root `Cargo.toml`). It keeps the subset of the
//! criterion 0.5 API the benches in `crates/bench` use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `sample_size`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box` — and measures with plain
//! `std::time::Instant` sampling instead of criterion's statistical
//! machinery.
//!
//! Each benchmark runs one warm-up iteration, then up to `sample_size`
//! timed iterations bounded by a per-benchmark wall-clock budget, and
//! prints `min / mean / max` per iteration plus throughput when declared
//! via [`Throughput`]. A positional command-line argument acts as a
//! substring filter on benchmark ids, like the real harness.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Wall-clock budget per benchmark; sampling stops early past this.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Parameter only (for groups benching one function at many sizes).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Time `routine`: one warm-up call, then timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Top-level harness state: output plus the benchmark id filter.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Harness configured from command-line arguments: flags are ignored,
    /// the first positional argument becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        run_benchmark(self, None, &id.id, 10, None, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Run a benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        run_benchmark(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// End the group (output flushes per benchmark; nothing to do).
    pub fn finish(self) {}
}

fn run_benchmark<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher<'_>),
{
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if !criterion.matches(&full_id) {
        return;
    }
    let mut samples = Vec::with_capacity(sample_size);
    f(&mut Bencher {
        samples: &mut samples,
        sample_size,
    });
    if samples.is_empty() {
        println!("{full_id:<52} no samples");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
        match t {
            Throughput::Elements(n) => format!("  thrpt: {}/s", si(per_sec(n))),
            Throughput::Bytes(n) => format!("  thrpt: {}B/s", si(per_sec(n))),
        }
    });
    println!(
        "{full_id:<52} time: [{} {} {}]{}  ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        rate.unwrap_or_default(),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Generate `main` running the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x * 2)
            })
        });
        group.finish();
        assert_eq!(runs, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut ran = false;
        c.bench_function("this_one", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
