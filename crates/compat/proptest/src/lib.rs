//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace resolves the `proptest` dependency name to
//! this shim (see the root `Cargo.toml`). It supports the subset used by
//! `tests/properties.rs`: the [`proptest!`] function wrapper with an
//! optional `#![proptest_config(...)]` attribute, [`prop_assert!`] /
//! [`prop_assert_eq!`], half-open range strategies over `f64` / integer
//! types, and `prop::collection::vec`.
//!
//! Failing cases are reported with their sampled case index but are
//! **not shrunk** — rerunning reproduces them exactly, because every test
//! derives its RNG seed deterministically from the test name.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates values of an output type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Element-count specification for collection strategies: an exact
    /// count or a half-open range.
    pub struct SizeRange(pub(crate) Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// A strategy producing `Vec`s with length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let r = &self.len.0;
            let n = if r.start + 1 == r.end {
                r.start
            } else {
                rng.gen_range(r.start..r.end)
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Per-test configuration and failure plumbing.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases.
        pub cases: u32,
    }

    impl Config {
        /// Config running `n` cases.
        pub fn with_cases(n: u32) -> Self {
            Config { cases: n }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A failed property case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for a named test: same name, same stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `Vec` strategy: length from `len` (exact count or range), elements
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

pub mod prelude {
    //! The names a proptest-based test file imports.

    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `if cond {} else { fail }` rather than `if !cond` so partially
        // ordered comparisons don't trip clippy::neg_cmp_op_on_partial_ord
        // at every expansion site
        if $cond {
        } else {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// Skip the current case when `cond` does not hold. Real proptest
/// resamples; this shim treats the case as vacuously passing, which only
/// reduces the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Define property tests: each function's arguments are drawn from the
/// given strategies for `config.cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::rng_for(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0f64..1.0, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "out of range: {x}");
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::rng_for("t");
        let mut b = crate::test_runner::rng_for("t");
        let s = 0f64..1.0;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        // no #[test] on the inner fn: it runs by direct call below
        proptest! {
            fn inner(x in 0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
