//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace resolves the `crossbeam` dependency name to
//! this shim (see the root `Cargo.toml`). It implements exactly the API
//! surface the workspace uses, on top of `std`:
//!
//! * [`thread::scope`] / [`thread::Scope::spawn`] — scoped threads,
//!   backed by `std::thread::scope` (stable since Rust 1.63).
//! * [`channel`] — multi-producer **multi-consumer** channels (the
//!   property `std::sync::mpsc` lacks), backed by a `Mutex<VecDeque>`
//!   plus a `Condvar`. Both ends are cloneable; `recv` blocks until a
//!   message arrives or every sender is dropped.
//!
//! Known divergences from real crossbeam, acceptable for this workspace:
//! the closure passed to [`thread::Scope::spawn`] receives a zero-sized
//! placeholder instead of a re-spawnable scope handle (no nested spawns),
//! and a panic in an unjoined scoped thread propagates as a panic instead
//! of an `Err` from [`thread::scope`] (all call sites join every handle).

pub mod thread {
    //! Scoped threads: spawn borrowing threads that are joined before the
    //! scope returns.

    /// Result of joining a thread (`Err` carries the panic payload).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; `spawn` borrows from the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Placeholder passed to spawned closures where real crossbeam passes
    /// a nested scope handle. Nested spawning is not supported.
    pub struct NestedScope {
        _priv: (),
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&NestedScope { _priv: () })),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined (by the caller or implicitly) before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (messages are distributed, not broadcast).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected (no receivers); returns the message.
    pub struct SendError<T>(pub T);

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// No message queued and every sender is gone.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message.
        Timeout,
        /// No message queued and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                // wake blocked receivers so they observe disconnection
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Queue a message; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.available.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .available
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Drain messages until every sender is dropped.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn channel_is_fifo_and_multi_consumer() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        drop(tx);
        let rest: Vec<i32> = rx.iter().collect();
        assert_eq!(rest, vec![3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(rx2.recv(), Err(channel::RecvError));
    }

    #[test]
    fn disconnection_is_observed_on_both_ends() {
        let (tx, rx) = channel::unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = channel::unbounded::<i32>();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn workers_share_one_receiver() {
        let (tx, rx) = channel::unbounded();
        let total = std::sync::atomic::AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move |_| {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            for i in 1..=100usize {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .expect("scope");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 5050);
    }
}
