//! Slider color-spectrum strips.
//!
//! "The color spectrum of each slider is just a different arrangement of
//! the colored distances and corresponds to the distribution of distances
//! for the corresponding attribute" (§4.3): a horizontal strip where the
//! x-axis walks the *sorted* distances, so the width of each color band
//! shows how many items carry that distance.

use visdb_color::{Colormap, BACKGROUND};

use crate::framebuffer::Framebuffer;

/// Render the spectrum strip of one predicate: `normalized` are the
/// `[0, 255]` distances (undefined skipped), drawn sorted ascending over
/// a `width × height` strip.
pub fn render_spectrum(
    normalized: &[Option<f64>],
    map: &Colormap,
    width: usize,
    height: usize,
) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height, BACKGROUND);
    let mut vals: Vec<f64> = normalized.iter().flatten().copied().collect();
    if vals.is_empty() || width == 0 {
        return fb;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    for x in 0..width {
        // nearest-rank mapping of the strip position into the sorted data
        let idx = (x * vals.len()) / width;
        let d = vals[idx.min(vals.len() - 1)].clamp(0.0, 255.0);
        let c = map.color_for_distance(d).unwrap_or(BACKGROUND);
        for y in 0..height {
            fb.set(x, y, c);
        }
    }
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_color::ColormapKind;

    #[test]
    fn spectrum_is_sorted_left_to_right() {
        let map = Colormap::new(ColormapKind::Grayscale);
        // unsorted input with half exact answers
        let vals: Vec<Option<f64>> = vec![Some(255.0), Some(0.0), Some(0.0), Some(128.0)];
        let fb = render_spectrum(&vals, &map, 8, 2);
        // grayscale: brightness decreases with distance, so luma must be
        // non-increasing left to right
        let mut prev = f64::INFINITY;
        for x in 0..8 {
            let l = fb.get(x, 0).unwrap().luma();
            assert!(l <= prev + 1e-9, "x={x}");
            prev = l;
        }
    }

    #[test]
    fn exact_heavy_data_is_mostly_bright() {
        let map = Colormap::new(ColormapKind::Grayscale);
        let mut vals = vec![Some(0.0); 90];
        vals.extend(vec![Some(255.0); 10]);
        let fb = render_spectrum(&vals, &map, 100, 1);
        let white = fb.count_color(visdb_color::Rgb::new(255, 255, 255));
        assert!((85..=95).contains(&white), "white={white}");
    }

    #[test]
    fn empty_and_undefined_inputs() {
        let map = Colormap::default();
        let fb = render_spectrum(&[], &map, 10, 2);
        assert_eq!(fb.count_color(BACKGROUND), 20);
        let fb = render_spectrum(&[None, None], &map, 10, 2);
        assert_eq!(fb.count_color(BACKGROUND), 20);
    }
}
