//! ASCII preview of a framebuffer for terminal-only environments.
//!
//! Maps pixel luma to a density ramp so examples can show their output
//! inline. Downsamples by simple box averaging; each output character
//! covers `scale × (2·scale)` pixels (characters are ~twice as tall as
//! wide).

use crate::framebuffer::Framebuffer;

/// Dark-to-bright character ramp.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render the framebuffer as ASCII art, at most `max_cols` characters
/// wide.
pub fn to_ascii(fb: &Framebuffer, max_cols: usize) -> String {
    if fb.width() == 0 || fb.height() == 0 || max_cols == 0 {
        return String::new();
    }
    let scale = fb.width().div_ceil(max_cols).max(1);
    let cols = fb.width().div_ceil(scale);
    let rows = fb.height().div_ceil(scale * 2);
    let mut out = String::with_capacity(rows * (cols + 1));
    for row in 0..rows {
        for col in 0..cols {
            let mut sum = 0.0;
            let mut n = 0usize;
            for dy in 0..scale * 2 {
                for dx in 0..scale {
                    if let Some(p) = fb.get(col * scale + dx, row * scale * 2 + dy) {
                        sum += p.luma();
                        n += 1;
                    }
                }
            }
            let luma = if n == 0 { 0.0 } else { sum / n as f64 };
            let idx = ((luma / 255.0) * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_color::Rgb;

    #[test]
    fn bright_maps_to_dense_chars() {
        let fb = Framebuffer::new(4, 4, Rgb::new(255, 255, 255));
        let s = to_ascii(&fb, 10);
        assert!(s.contains('@'));
        assert!(!s.contains(' ') || s.trim_end().contains('@'));
    }

    #[test]
    fn dark_maps_to_sparse_chars() {
        let fb = Framebuffer::new(4, 4, Rgb::new(0, 0, 0));
        let s = to_ascii(&fb, 10);
        assert!(s.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn width_is_bounded() {
        let fb = Framebuffer::new(200, 20, Rgb::new(128, 128, 128));
        let s = to_ascii(&fb, 40);
        for line in s.lines() {
            assert!(line.len() <= 40);
        }
    }

    #[test]
    fn empty_inputs() {
        let fb = Framebuffer::new(0, 0, Rgb::default());
        assert_eq!(to_ascii(&fb, 10), "");
    }
}
