//! A plain RGB framebuffer.

use visdb_color::Rgb;

/// A `width × height` RGB pixel buffer, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Framebuffer {
    /// New framebuffer filled with a background color.
    pub fn new(width: usize, height: usize, fill: Rgb) -> Self {
        Framebuffer {
            width,
            height,
            pixels: vec![fill; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`; out of range returns `None`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<Rgb> {
        if x < self.width && y < self.height {
            Some(self.pixels[y * self.width + x])
        } else {
            None
        }
    }

    /// Set a pixel (silently ignores out-of-range writes — clipping).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = c;
        }
    }

    /// Fill an axis-aligned rectangle (clipped).
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, c: Rgb) {
        for yy in y..(y + h).min(self.height) {
            for xx in x..(x + w).min(self.width) {
                self.pixels[yy * self.width + xx] = c;
            }
        }
    }

    /// Draw a 1-pixel rectangle border (clipped).
    pub fn stroke_rect(&mut self, x: usize, y: usize, w: usize, h: usize, c: Rgb) {
        if w == 0 || h == 0 {
            return;
        }
        for xx in x..(x + w).min(self.width) {
            self.set(xx, y, c);
            self.set(xx, y + h - 1, c);
        }
        for yy in y..(y + h).min(self.height) {
            self.set(x, yy, c);
            self.set(x + w - 1, yy, c);
        }
    }

    /// Copy another framebuffer into this one at `(x, y)` (clipped).
    pub fn blit(&mut self, src: &Framebuffer, x: usize, y: usize) {
        for sy in 0..src.height {
            let dy = y + sy;
            if dy >= self.height {
                break;
            }
            for sx in 0..src.width {
                let dx = x + sx;
                if dx >= self.width {
                    break;
                }
                self.pixels[dy * self.width + dx] = src.pixels[sy * src.width + sx];
            }
        }
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Count pixels equal to a color (test/diagnostic helper).
    pub fn count_color(&self, c: Rgb) -> usize {
        self.pixels.iter().filter(|p| **p == c).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RED: Rgb = Rgb::new(255, 0, 0);
    const BLACK: Rgb = Rgb::new(0, 0, 0);

    #[test]
    fn new_is_filled() {
        let fb = Framebuffer::new(4, 3, RED);
        assert_eq!(fb.count_color(RED), 12);
        assert_eq!(fb.get(3, 2), Some(RED));
        assert_eq!(fb.get(4, 0), None);
    }

    #[test]
    fn set_and_clip() {
        let mut fb = Framebuffer::new(2, 2, BLACK);
        fb.set(1, 1, RED);
        fb.set(5, 5, RED); // clipped, no panic
        assert_eq!(fb.count_color(RED), 1);
    }

    #[test]
    fn fill_rect_clips() {
        let mut fb = Framebuffer::new(4, 4, BLACK);
        fb.fill_rect(2, 2, 10, 10, RED);
        assert_eq!(fb.count_color(RED), 4);
    }

    #[test]
    fn stroke_rect_draws_border_only() {
        let mut fb = Framebuffer::new(5, 5, BLACK);
        fb.stroke_rect(0, 0, 5, 5, RED);
        assert_eq!(fb.count_color(RED), 16);
        assert_eq!(fb.get(2, 2), Some(BLACK));
    }

    #[test]
    fn blit_copies_with_clipping() {
        let mut dst = Framebuffer::new(4, 4, BLACK);
        let src = Framebuffer::new(3, 3, RED);
        dst.blit(&src, 2, 2);
        assert_eq!(dst.count_color(RED), 4); // 2x2 visible
    }
}
