//! Multi-window layout: the fig 4/5 "Visualization" panel.
//!
//! "In the 'Visualization' part, the user receives a visual
//! representation for the overall result and for each selection
//! predicate" (§4.3) — windows of equal size tiled in a grid with thin
//! borders, the overall result in the upper left.

use visdb_arrange::{ItemGrid, PixelsPerItem};
use visdb_color::{Rgb, BACKGROUND, HIGHLIGHT};

use crate::framebuffer::Framebuffer;

/// Border color between windows.
const BORDER: Rgb = Rgb::new(90, 90, 90);

/// One window to compose: an item grid plus a per-item color lookup.
pub struct WindowSpec<'a> {
    /// The item placement.
    pub grid: &'a ItemGrid,
    /// Color of each data item (indexed by item id); `None` renders as
    /// background (undefined distance).
    pub colors: &'a dyn Fn(u32) -> Option<Rgb>,
    /// Items to highlight (drawn in [`HIGHLIGHT`]).
    pub highlighted: &'a [u32],
}

/// Render one item window to pixels, scaling each item cell to the
/// `pixels_per_item` block size.
pub fn render_item_window(spec: &WindowSpec<'_>, ppi: PixelsPerItem) -> Framebuffer {
    let s = ppi.side();
    let mut fb = Framebuffer::new(spec.grid.width() * s, spec.grid.height() * s, BACKGROUND);
    for (x, y, item) in spec.grid.iter_items() {
        let color = if spec.highlighted.contains(&item) {
            HIGHLIGHT
        } else {
            (spec.colors)(item).unwrap_or(BACKGROUND)
        };
        fb.fill_rect(x * s, y * s, s, s, color);
    }
    fb
}

/// Tile frames into a grid with `cols` columns, 1-pixel borders and
/// `margin` pixels of background between windows. Frames may have
/// different sizes; each grid cell is sized to the largest frame.
pub fn compose_grid(frames: &[Framebuffer], cols: usize, margin: usize) -> Framebuffer {
    if frames.is_empty() || cols == 0 {
        return Framebuffer::new(0, 0, BACKGROUND);
    }
    let cell_w = frames.iter().map(Framebuffer::width).max().unwrap_or(0) + 2;
    let cell_h = frames.iter().map(Framebuffer::height).max().unwrap_or(0) + 2;
    let rows = frames.len().div_ceil(cols);
    let total_w = cols * cell_w + (cols + 1) * margin;
    let total_h = rows * cell_h + (rows + 1) * margin;
    let mut fb = Framebuffer::new(total_w, total_h, BACKGROUND);
    for (i, frame) in frames.iter().enumerate() {
        let (cx, cy) = (i % cols, i / cols);
        let x = margin + cx * (cell_w + margin);
        let y = margin + cy * (cell_h + margin);
        fb.stroke_rect(x, y, frame.width() + 2, frame.height() + 2, BORDER);
        fb.blit(frame, x + 1, y + 1);
    }
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use visdb_arrange::arrange_overall;

    #[test]
    fn window_scales_with_pixels_per_item() {
        let grid = arrange_overall(&[0, 1, 2, 3], 2, 2);
        let yellow = Rgb::new(255, 230, 30);
        let colors = |_item: u32| Some(yellow);
        let spec = WindowSpec {
            grid: &grid,
            colors: &colors,
            highlighted: &[],
        };
        let fb1 = render_item_window(&spec, PixelsPerItem::One);
        assert_eq!((fb1.width(), fb1.height()), (2, 2));
        let fb4 = render_item_window(&spec, PixelsPerItem::Four);
        assert_eq!((fb4.width(), fb4.height()), (4, 4));
        assert_eq!(fb4.count_color(yellow), 16);
    }

    #[test]
    fn highlight_wins_over_item_color() {
        let grid = arrange_overall(&[7], 1, 1);
        let colors = |_item: u32| Some(Rgb::new(1, 2, 3));
        let spec = WindowSpec {
            grid: &grid,
            colors: &colors,
            highlighted: &[7],
        };
        let fb = render_item_window(&spec, PixelsPerItem::One);
        assert_eq!(fb.get(0, 0), Some(HIGHLIGHT));
    }

    #[test]
    fn undefined_items_render_as_background() {
        let grid = arrange_overall(&[7], 1, 1);
        let colors = |_item: u32| None;
        let spec = WindowSpec {
            grid: &grid,
            colors: &colors,
            highlighted: &[],
        };
        let fb = render_item_window(&spec, PixelsPerItem::One);
        assert_eq!(fb.get(0, 0), Some(BACKGROUND));
    }

    #[test]
    fn compose_grid_tiles_with_borders() {
        let a = Framebuffer::new(4, 4, Rgb::new(255, 0, 0));
        let b = Framebuffer::new(4, 4, Rgb::new(0, 255, 0));
        let fb = compose_grid(&[a, b], 2, 3);
        // width: 2 cells of 6 (4+2 border) + 3 margins of 3 = 21
        assert_eq!(fb.width(), 2 * 6 + 3 * 3);
        assert_eq!(fb.height(), 6 + 2 * 3);
        assert_eq!(fb.count_color(Rgb::new(255, 0, 0)), 16);
        assert_eq!(fb.count_color(Rgb::new(0, 255, 0)), 16);
        assert!(fb.count_color(BORDER) > 0);
    }

    #[test]
    fn compose_empty_is_empty() {
        let fb = compose_grid(&[], 2, 1);
        assert_eq!(fb.width(), 0);
    }
}
