//! # visdb-render
//!
//! Headless rendering of VisDB visualizations.
//!
//! The paper's prototype drew on a 1024×1280 19″ display; this crate is
//! the display substitute: an RGB [`framebuffer::Framebuffer`], P6/P3 PPM
//! and PGM writers ([`ppm`]) so every figure can be regenerated as an
//! image file, a multi-window [`layout`] compositor reproducing the
//! fig 4/5 "Visualization" panel, slider color-spectrum strips
//! ([`legend`]) and an ASCII terminal preview ([`ascii`]).

pub mod ascii;
pub mod framebuffer;
pub mod layout;
pub mod legend;
pub mod ppm;

pub use framebuffer::Framebuffer;
pub use layout::{compose_grid, render_item_window, WindowSpec};
pub use legend::render_spectrum;
pub use ppm::{write_pgm, write_ppm, write_ppm_ascii};
