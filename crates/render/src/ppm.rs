//! PPM/PGM image writers (and a P6 reader for round-trip tests).
//!
//! Hand-rolled because the figures only need the simplest portable
//! formats; no external image crates required.

use std::io::{BufRead, Write};

use visdb_color::Rgb;
use visdb_types::{Error, Result};

use crate::framebuffer::Framebuffer;

/// Write binary PPM (P6).
pub fn write_ppm<W: Write>(fb: &Framebuffer, mut w: W) -> Result<()> {
    writeln!(w, "P6\n{} {}\n255", fb.width(), fb.height())?;
    let mut buf = Vec::with_capacity(fb.pixels().len() * 3);
    for p in fb.pixels() {
        buf.extend_from_slice(&[p.r, p.g, p.b]);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Write ASCII PPM (P3) — human-inspectable, used in docs/tests.
pub fn write_ppm_ascii<W: Write>(fb: &Framebuffer, mut w: W) -> Result<()> {
    writeln!(w, "P3\n{} {}\n255", fb.width(), fb.height())?;
    for row in 0..fb.height() {
        let mut line = String::new();
        for col in 0..fb.width() {
            let p = fb.get(col, row).expect("in range");
            line.push_str(&format!("{} {} {} ", p.r, p.g, p.b));
        }
        writeln!(w, "{}", line.trim_end())?;
    }
    Ok(())
}

/// Write binary PGM (P5) using Rec. 601 luma — the gray-scale baseline
/// export.
pub fn write_pgm<W: Write>(fb: &Framebuffer, mut w: W) -> Result<()> {
    writeln!(w, "P5\n{} {}\n255", fb.width(), fb.height())?;
    let buf: Vec<u8> = fb
        .pixels()
        .iter()
        .map(|p| p.luma().round().clamp(0.0, 255.0) as u8)
        .collect();
    w.write_all(&buf)?;
    Ok(())
}

/// Read a binary PPM (P6) back into a framebuffer (test helper; minimal:
/// no comment support).
pub fn read_ppm<R: BufRead>(mut r: R) -> Result<Framebuffer> {
    let mut header = String::new();
    // magic
    r.read_line(&mut header)?;
    if header.trim() != "P6" {
        return Err(Error::parse(format!(
            "expected P6, got '{}'",
            header.trim()
        )));
    }
    let mut dims = String::new();
    r.read_line(&mut dims)?;
    let mut it = dims.split_whitespace();
    let w: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::parse("bad width"))?;
    let h: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::parse("bad height"))?;
    let mut maxval = String::new();
    r.read_line(&mut maxval)?;
    if maxval.trim() != "255" {
        return Err(Error::parse("only maxval 255 supported"));
    }
    let mut buf = vec![0u8; w * h * 3];
    r.read_exact(&mut buf)?;
    let mut fb = Framebuffer::new(w, h, Rgb::default());
    for (i, px) in buf.chunks_exact(3).enumerate() {
        fb.set(i % w, i / w, Rgb::new(px[0], px[1], px[2]));
    }
    Ok(fb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Framebuffer {
        let mut fb = Framebuffer::new(3, 2, Rgb::new(10, 20, 30));
        fb.set(2, 1, Rgb::new(200, 100, 50));
        fb
    }

    #[test]
    fn p6_round_trip() {
        let fb = fixture();
        let mut out = Vec::new();
        write_ppm(&fb, &mut out).unwrap();
        let back = read_ppm(out.as_slice()).unwrap();
        assert_eq!(back, fb);
    }

    #[test]
    fn p3_contains_expected_values() {
        let fb = fixture();
        let mut out = Vec::new();
        write_ppm_ascii(&fb, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("P3\n3 2\n255\n"));
        assert!(s.contains("200 100 50"));
    }

    #[test]
    fn pgm_is_grayscale_sized() {
        let fb = fixture();
        let mut out = Vec::new();
        write_pgm(&fb, &mut out).unwrap();
        // header + 6 bytes of payload
        let payload = &out[out.len() - 6..];
        assert_eq!(payload.len(), 6);
        assert!(String::from_utf8_lossy(&out[..3]).starts_with("P5"));
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(read_ppm("P3\n1 1\n255\n0 0 0\n".as_bytes()).is_err());
        assert!(read_ppm("P6\nxx yy\n255\n".as_bytes()).is_err());
    }
}
