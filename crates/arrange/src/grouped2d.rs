//! The fig 1b "2D arrangement": two attributes assigned to the axes.
//!
//! "The basic idea is to assign two attributes to the axis and to arrange
//! the relevance factors according to the direction of the distance; for
//! one attribute negative distances are arranged to the left, positive
//! ones to the right and for the other attribute negative distances are
//! arranged to the bottom, positive ones to the top. Inside the regions,
//! the data items with the relevance factors sorted in descending order
//! are arranged from the middle (yellow region) to the edges of the
//! window." (§4.2)
//!
//! The window is split into a small central *exact region* (both
//! distances zero), four *edge regions* (one distance zero), and four
//! *quadrants*. Each region is filled from its center-nearest corner
//! outwards in diagonal bands, by descending relevance.

use crate::window::ItemGrid;

/// Sign classification of one signed distance.
fn sign(d: f64) -> i8 {
    if d < 0.0 {
        -1
    } else if d > 0.0 {
        1
    } else {
        0
    }
}

/// An item to place: its index and its two signed distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item2D {
    /// Data-item index.
    pub item: usize,
    /// Signed distance on the x-axis attribute.
    pub dx: f64,
    /// Signed distance on the y-axis attribute.
    pub dy: f64,
}

/// Fill one rectangular region `[x0, x1) × [y0, y1)` with items (already
/// sorted by descending relevance) in diagonal bands starting from the
/// corner `(cx, cy)` (one of the region's corners, the one closest to the
/// window center). Returns how many items were placed.
fn fill_region(
    grid: &mut ItemGrid,
    (x0, y0, x1, y1): (usize, usize, usize, usize),
    corner: (usize, usize),
    items: &[usize],
) -> usize {
    let w = x1.saturating_sub(x0);
    let h = y1.saturating_sub(y0);
    if w == 0 || h == 0 {
        return 0;
    }
    // local coordinates with (0,0) at the seed corner
    let flip_x = corner.0 != x0;
    let flip_y = corner.1 != y0;
    let mut placed = 0;
    'outer: for band in 0..(w + h - 1) {
        for lx in 0..=band.min(w - 1) {
            let ly = band - lx;
            if ly >= h {
                continue;
            }
            let gx = x0 + if flip_x { w - 1 - lx } else { lx };
            let gy = y0 + if flip_y { h - 1 - ly } else { ly };
            if placed >= items.len() {
                break 'outer;
            }
            grid.set(gx, gy, items[placed] as u32);
            placed += 1;
        }
    }
    placed
}

/// Arrange items into a `width × height` window by distance direction.
///
/// `items` must be sorted by **descending relevance** (the caller has
/// them from the pipeline's `order`). Items are partitioned into nine
/// sign regions; each region is filled center-out. Items that do not fit
/// their region are dropped (mirroring the spiral window's clipping).
pub fn arrange_grouped2d(items: &[Item2D], width: usize, height: usize) -> ItemGrid {
    let mut grid = ItemGrid::new(width, height);
    if width == 0 || height == 0 {
        return grid;
    }
    // central exact region: a block around the middle whose size scales
    // with the window (at least 1 cell)
    let cw = (width / 8).max(1);
    let ch = (height / 8).max(1);
    let cx0 = width / 2 - cw / 2;
    let cy0 = height / 2 - ch / 2;
    let (cx1, cy1) = (cx0 + cw, cy0 + ch);

    // partition by sign pair, preserving relevance order
    let mut buckets: [Vec<usize>; 9] = Default::default();
    let bucket_of = |sx: i8, sy: i8| -> usize { ((sx + 1) * 3 + (sy + 1)) as usize };
    for it in items {
        buckets[bucket_of(sign(it.dx), sign(it.dy))].push(it.item);
    }

    // screen y grows downward: positive dy goes to the TOP (smaller y)
    // region bounds per sign: x: -1 -> [0,cx0), 0 -> [cx0,cx1), 1 -> [cx1,w)
    let x_span = |sx: i8| match sx {
        -1 => (0, cx0),
        0 => (cx0, cx1),
        _ => (cx1, width),
    };
    let y_span = |sy: i8| match sy {
        1 => (0, cy0),      // positive: top
        0 => (cy0, cy1),    // zero: middle band
        _ => (cy1, height), // negative: bottom
    };
    // the seed corner of each region is the one facing the center block
    let x_corner = |sx: i8, (x0, x1): (usize, usize)| match sx {
        -1 => x1.saturating_sub(1),
        0 => x0 + (x1 - x0) / 2,
        _ => x0,
    };
    let y_corner = |sy: i8, (y0, y1): (usize, usize)| match sy {
        1 => y1.saturating_sub(1),
        0 => y0 + (y1 - y0) / 2,
        _ => y0,
    };

    for sx in [-1i8, 0, 1] {
        for sy in [-1i8, 0, 1] {
            let b = &buckets[bucket_of(sx, sy)];
            if b.is_empty() {
                continue;
            }
            let (x0, x1) = x_span(sx);
            let (y0, y1) = y_span(sy);
            let corner = (x_corner(sx, (x0, x1)), y_corner(sy, (y0, y1)));
            fill_region(&mut grid, (x0, y0, x1, y1), corner, b);
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: usize, dx: f64, dy: f64) -> Item2D {
        Item2D { item: i, dx, dy }
    }

    #[test]
    fn exact_answers_land_in_the_center_block() {
        let items = vec![item(0, 0.0, 0.0)];
        let grid = arrange_grouped2d(&items, 16, 16);
        let (x, y) = grid.position_of(0).unwrap();
        assert!((7..=9).contains(&x), "x={x}");
        assert!((7..=9).contains(&y), "y={y}");
    }

    #[test]
    fn signs_map_to_quadrants() {
        let items = vec![
            item(1, -5.0, -5.0), // left-bottom
            item(2, 5.0, 5.0),   // right-top
            item(3, -5.0, 5.0),  // left-top
            item(4, 5.0, -5.0),  // right-bottom
        ];
        let grid = arrange_grouped2d(&items, 20, 20);
        let (x1, y1) = grid.position_of(1).unwrap();
        assert!(x1 < 10 && y1 >= 10, "({x1},{y1})");
        let (x2, y2) = grid.position_of(2).unwrap();
        assert!(x2 >= 10 && y2 < 10, "({x2},{y2})");
        let (x3, y3) = grid.position_of(3).unwrap();
        assert!(x3 < 10 && y3 < 10, "({x3},{y3})");
        let (x4, y4) = grid.position_of(4).unwrap();
        assert!(x4 >= 10 && y4 >= 10, "({x4},{y4})");
    }

    #[test]
    fn higher_relevance_sits_closer_to_center() {
        // both in the right-top quadrant; first item (higher relevance)
        // must be nearer the center
        let items = vec![item(0, 1.0, 1.0), item(1, 200.0, 200.0)];
        let grid = arrange_grouped2d(&items, 32, 32);
        let c = 16.0f64;
        let d = |p: (usize, usize)| ((p.0 as f64 - c).powi(2) + (p.1 as f64 - c).powi(2)).sqrt();
        let d0 = d(grid.position_of(0).unwrap());
        let d1 = d(grid.position_of(1).unwrap());
        assert!(d0 <= d1, "d0={d0} d1={d1}");
    }

    #[test]
    fn all_items_placed_when_they_fit() {
        let items: Vec<Item2D> = (0..50)
            .map(|i| {
                item(
                    i,
                    if i % 2 == 0 { -1.0 } else { 1.0 },
                    if i % 3 == 0 { -1.0 } else { 1.0 },
                )
            })
            .collect();
        let grid = arrange_grouped2d(&items, 40, 40);
        assert_eq!(grid.occupied(), 50);
    }

    #[test]
    fn overflowing_region_drops_excess() {
        // tiny window, many exact answers: center block can't hold all
        let items: Vec<Item2D> = (0..100).map(|i| item(i, 0.0, 0.0)).collect();
        let grid = arrange_grouped2d(&items, 8, 8);
        assert!(grid.occupied() < 100);
        assert!(grid.occupied() >= 1);
    }

    #[test]
    fn zero_sized_window() {
        let grid = arrange_grouped2d(&[item(0, 1.0, 1.0)], 0, 10);
        assert_eq!(grid.occupied(), 0);
    }

    #[test]
    fn mixed_zero_axis_items_use_edge_bands() {
        // dx = 0, dy > 0: middle column, top band
        let items = vec![item(0, 0.0, 3.0)];
        let grid = arrange_grouped2d(&items, 16, 16);
        let (x, y) = grid.position_of(0).unwrap();
        assert!((7..=9).contains(&x), "x={x}");
        assert!(y < 8, "y={y}");
    }
}
