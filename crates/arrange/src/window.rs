//! The item grid: which data item sits on which window cell.
//!
//! An [`ItemGrid`] maps window cells to data-item indices. The *overall
//! result* window is filled in spiral order by descending relevance
//! ([`arrange_overall`]); the per-predicate windows copy the placement so
//! that "for every data item the colors representing the distances for
//! the different selection predicates are at the same relative position
//! in each of the windows" (§4.2) — that coherence is [`place_like`]
//! (trivially, sharing the placement) and is what lets users trace one
//! item across windows.

use visdb_types::{Error, Result};

use crate::spiral::SpiralIter;

/// How many pixels represent one data item (§4.2: "one, four or sixteen
/// pixels"). The grid stores *items*; the renderer scales each cell to a
/// `side × side` pixel block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelsPerItem {
    /// 1 pixel (1×1).
    One,
    /// 4 pixels (2×2).
    Four,
    /// 16 pixels (4×4).
    Sixteen,
}

impl PixelsPerItem {
    /// Edge length of the pixel block.
    pub fn side(self) -> usize {
        match self {
            PixelsPerItem::One => 1,
            PixelsPerItem::Four => 2,
            PixelsPerItem::Sixteen => 4,
        }
    }

    /// Total pixels per item.
    pub fn count(self) -> usize {
        self.side() * self.side()
    }

    /// Parse from a pixel count (1, 4 or 16).
    pub fn from_count(count: usize) -> Result<Self> {
        match count {
            1 => Ok(PixelsPerItem::One),
            4 => Ok(PixelsPerItem::Four),
            16 => Ok(PixelsPerItem::Sixteen),
            other => Err(Error::invalid_parameter(
                "pixels_per_item",
                format!("must be 1, 4 or 16, got {other}"),
            )),
        }
    }
}

/// A `width × height` grid of optional data-item indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemGrid {
    width: usize,
    height: usize,
    cells: Vec<Option<u32>>,
}

impl ItemGrid {
    /// Empty grid.
    pub fn new(width: usize, height: usize) -> Self {
        ItemGrid {
            width,
            height,
            cells: vec![None; width * height],
        }
    }

    /// Grid width in items.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in items.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Item at a cell (`None` for empty or out-of-range).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Option<u32> {
        if x >= self.width || y >= self.height {
            return None;
        }
        self.cells[y * self.width + x]
    }

    /// Place an item on a cell.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, item: u32) {
        if x < self.width && y < self.height {
            self.cells[y * self.width + x] = Some(item);
        }
    }

    /// Number of occupied cells.
    pub fn occupied(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Iterate `(x, y, item)` over occupied cells.
    pub fn iter_items(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| c.map(|item| (i % self.width, i / self.width, item)))
    }

    /// Position of a given item, if placed (linear scan — used for
    /// highlighting single selected tuples, §4.3).
    pub fn position_of(&self, item: u32) -> Option<(usize, usize)> {
        self.cells
            .iter()
            .position(|c| *c == Some(item))
            .map(|i| (i % self.width, i / self.width))
    }
}

/// Arrange items (already sorted by descending relevance) into a window
/// in spiral order: rank 0 sits at the center. Items beyond the window
/// capacity are dropped (the display policy should have bounded them).
///
/// Returns the grid; `ranked[k]`'s cell is the `k`-th spiral coordinate.
pub fn arrange_overall(ranked: &[usize], width: usize, height: usize) -> ItemGrid {
    let mut grid = ItemGrid::new(width, height);
    for ((x, y), &item) in SpiralIter::new(width, height).zip(ranked.iter()) {
        grid.set(x, y, item as u32);
    }
    grid
}

/// Per-predicate windows share the overall placement (§4.2: "we do not
/// sort the distances, but keep the same ordering of data items as in the
/// overall result window"). Since the placement *is* the item→cell map,
/// coherence means reusing the grid; this helper exists to make intent
/// explicit at call sites and to validate dimensions.
pub fn place_like(overall: &ItemGrid) -> ItemGrid {
    overall.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_per_item_geometry() {
        assert_eq!(PixelsPerItem::One.count(), 1);
        assert_eq!(PixelsPerItem::Four.side(), 2);
        assert_eq!(PixelsPerItem::Sixteen.count(), 16);
        assert!(PixelsPerItem::from_count(4).is_ok());
        assert!(PixelsPerItem::from_count(9).is_err());
    }

    #[test]
    fn arrange_places_rank_zero_at_center() {
        let ranked: Vec<usize> = (100..109).collect();
        let grid = arrange_overall(&ranked, 3, 3);
        assert_eq!(grid.get(1, 1), Some(100));
        assert_eq!(grid.occupied(), 9);
    }

    #[test]
    fn overflow_items_are_dropped() {
        let ranked: Vec<usize> = (0..100).collect();
        let grid = arrange_overall(&ranked, 3, 3);
        assert_eq!(grid.occupied(), 9);
    }

    #[test]
    fn underfull_windows_have_empty_rim() {
        let ranked = vec![7];
        let grid = arrange_overall(&ranked, 3, 3);
        assert_eq!(grid.occupied(), 1);
        assert_eq!(grid.get(1, 1), Some(7));
        assert_eq!(grid.get(0, 0), None);
    }

    #[test]
    fn position_lookup() {
        let grid = arrange_overall(&[5, 6], 3, 3);
        assert_eq!(grid.position_of(5), Some((1, 1)));
        assert_eq!(grid.position_of(6), Some((2, 1)));
        assert_eq!(grid.position_of(99), None);
    }

    #[test]
    fn place_like_is_identical() {
        let grid = arrange_overall(&[1, 2, 3], 4, 4);
        let copy = place_like(&grid);
        assert_eq!(grid, copy);
    }

    #[test]
    fn iter_items_round_trips() {
        let ranked = vec![10, 20, 30];
        let grid = arrange_overall(&ranked, 5, 5);
        let mut found: Vec<u32> = grid.iter_items().map(|(_, _, i)| i).collect();
        found.sort_unstable();
        assert_eq!(found, vec![10, 20, 30]);
    }
}
