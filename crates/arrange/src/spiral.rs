//! The rectangular spiral of fig 1a.
//!
//! Items are placed on an integer grid starting at the center cell and
//! winding outwards (right, down, left, up with growing run lengths).
//! For non-square windows the spiral is clipped: coordinates that fall
//! outside the window are skipped, so every cell of a `w × h` window is
//! eventually visited exactly once.

/// Iterator over the cells of a `w × h` grid in rectangular-spiral order,
/// starting at the center.
#[derive(Debug, Clone)]
pub struct SpiralIter {
    w: i64,
    h: i64,
    /// current position (may be outside the grid mid-winding)
    x: i64,
    y: i64,
    /// direction index into DIRS
    dir: usize,
    /// cells remaining in the current run
    run_left: i64,
    /// current run length (grows every two turns)
    run_len: i64,
    /// turns taken since the run length last grew
    turns: u8,
    /// cells already yielded
    emitted: i64,
    /// true until the first cell has been yielded
    fresh: bool,
}

/// Right, down, left, up — clockwise winding.
const DIRS: [(i64, i64); 4] = [(1, 0), (0, 1), (-1, 0), (0, -1)];

impl SpiralIter {
    /// Spiral over a `w × h` window. Zero-sized windows yield nothing.
    pub fn new(w: usize, h: usize) -> Self {
        let (w, h) = (w as i64, h as i64);
        SpiralIter {
            w,
            h,
            // center, biased up-left for even dimensions
            x: (w - 1) / 2,
            y: (h - 1) / 2,
            dir: 0,
            run_left: 1,
            run_len: 1,
            turns: 0,
            emitted: 0,
            fresh: true,
        }
    }

    fn advance(&mut self) {
        if self.run_left == 0 {
            self.dir = (self.dir + 1) % 4;
            self.turns += 1;
            if self.turns == 2 {
                self.turns = 0;
                self.run_len += 1;
            }
            self.run_left = self.run_len;
        }
        let (dx, dy) = DIRS[self.dir];
        self.x += dx;
        self.y += dy;
        self.run_left -= 1;
    }
}

impl Iterator for SpiralIter {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.emitted >= self.w * self.h {
            return None;
        }
        if self.fresh {
            self.fresh = false;
        } else {
            self.advance();
        }
        // skip clipped positions; bounded because the spiral radius grows
        while self.x < 0 || self.x >= self.w || self.y < 0 || self.y >= self.h {
            self.advance();
        }
        self.emitted += 1;
        Some((self.x as usize, self.y as usize))
    }
}

/// All cells of a `w × h` window in spiral order (convenience wrapper).
pub fn spiral_coords(w: usize, h: usize) -> Vec<(usize, usize)> {
    SpiralIter::new(w, h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn covers_every_cell_exactly_once() {
        for (w, h) in [(1, 1), (3, 3), (4, 4), (5, 3), (2, 7), (10, 1)] {
            let cells = spiral_coords(w, h);
            assert_eq!(cells.len(), w * h, "{w}x{h}");
            let set: HashSet<_> = cells.iter().collect();
            assert_eq!(set.len(), w * h, "{w}x{h} has duplicates");
            for &(x, y) in &cells {
                assert!(x < w && y < h);
            }
        }
    }

    #[test]
    fn starts_at_center() {
        assert_eq!(spiral_coords(3, 3)[0], (1, 1));
        assert_eq!(spiral_coords(5, 5)[0], (2, 2));
        assert_eq!(spiral_coords(4, 4)[0], (1, 1)); // up-left bias for even
        assert_eq!(spiral_coords(1, 1)[0], (0, 0));
    }

    #[test]
    fn small_spiral_order_is_the_classic_winding() {
        // 3x3 clockwise: center, right, down, left, left, up, up, right, right
        let cells = spiral_coords(3, 3);
        assert_eq!(
            cells,
            vec![
                (1, 1),
                (2, 1),
                (2, 2),
                (1, 2),
                (0, 2),
                (0, 1),
                (0, 0),
                (1, 0),
                (2, 0)
            ]
        );
    }

    #[test]
    fn rank_is_monotone_in_chebyshev_radius_on_squares() {
        // on odd squares, later ranks are never strictly closer to the
        // center than the max radius seen so far minus 1 (spiral bands)
        let n = 9;
        let c = (n as i64 - 1) / 2;
        let mut max_r = 0i64;
        for (x, y) in spiral_coords(n, n) {
            let r = (x as i64 - c).abs().max((y as i64 - c).abs());
            assert!(
                r >= max_r - 1,
                "cell ({x},{y}) radius {r} after band {max_r}"
            );
            max_r = max_r.max(r);
        }
    }

    #[test]
    fn zero_sized_yields_nothing() {
        assert!(spiral_coords(0, 5).is_empty());
        assert!(spiral_coords(5, 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_permutation(w in 1usize..40, h in 1usize..40) {
            let cells = spiral_coords(w, h);
            prop_assert_eq!(cells.len(), w * h);
            let set: HashSet<_> = cells.iter().collect();
            prop_assert_eq!(set.len(), w * h);
        }
    }
}
