//! # visdb-arrange
//!
//! Spatial arrangement of data items as pixels (§3, §4.2 of the paper).
//!
//! * [`spiral`] — the *rectangular spiral* of fig 1a: "The absolutely
//!   correct answers are colored yellow in the middle and the approximate
//!   answers ... are rectangular spiral-shaped around this region."
//! * [`grouped2d`] — the optional fig 1b arrangement: two attributes are
//!   assigned to the axes and items are placed by the *sign* of their
//!   distances (negative left/bottom, positive right/top), sorted by
//!   relevance from the middle outwards.
//! * [`window`] — the pixel grid abstraction shared by both, including
//!   the 1/4/16-pixels-per-item footprints and the *position coherence*
//!   rule: per-predicate windows place each item at the same relative
//!   position as the overall-result window (§4.2).

pub mod grouped2d;
pub mod spiral;
pub mod window;

pub use grouped2d::arrange_grouped2d;
pub use spiral::{spiral_coords, SpiralIter};
pub use window::{arrange_overall, place_like, ItemGrid, PixelsPerItem};
