//! Claim C1, second half: "query processing time is dominated by the
//! time needed for sorting."
//!
//! Benchmarks each pipeline phase in isolation at n = 100k so the phase
//! shares can be compared: distance evaluation, normalization, AND
//! combining, the relevance sort, and the spiral arrangement.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use visdb_arrange::arrange_overall;
use visdb_bench::{ramp_db, three_predicate_query};
use visdb_distance::DistanceResolver;
use visdb_query::ast::{ConditionNode, Weighted};
use visdb_relevance::combine::combine_and;
use visdb_relevance::eval::{EvalContext, ExecMode};
use visdb_relevance::normalize::normalize_frame;

const N: usize = 100_000;

fn phases(c: &mut Criterion) {
    let db = ramp_db(N);
    let table = db.table("T").expect("table");
    let query = three_predicate_query(N);
    let resolver = DistanceResolver::new();
    let cond = query.condition.as_ref().expect("condition");
    let children: Vec<&Weighted> = match &cond.node {
        ConditionNode::And(cs) => cs.iter().collect(),
        _ => vec![cond],
    };
    let ctx = EvalContext {
        db: &db,
        table,
        resolver: &resolver,
        display_budget: N / 4,
        mode: ExecMode::Vectorized,
        partitions: None,
        cancel: None,
    };
    // pre-compute inputs for the later phases
    let evals: Vec<_> = children
        .iter()
        .map(|w| ctx.eval_node(&w.node).expect("eval"))
        .collect();
    let normed: Vec<Vec<Option<f64>>> = evals
        .iter()
        .zip(children.iter())
        .map(|(e, w)| {
            normalize_frame(&e.distances, &e.stats, w.weight, N / 4)
                .0
                .to_options()
        })
        .collect();
    let weights: Vec<f64> = children.iter().map(|w| w.weight).collect();
    let combined = combine_and(&normed, &weights).expect("combine");

    let mut group = c.benchmark_group("phase_breakdown");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(20);

    group.bench_function("1_distance_eval", |b| {
        b.iter(|| {
            children
                .iter()
                .map(|w| ctx.eval_node(&w.node).expect("eval").distances.len())
                .sum::<usize>()
        })
    });
    group.bench_function("2_normalize", |b| {
        b.iter(|| {
            evals
                .iter()
                .zip(children.iter())
                .map(|(e, w)| {
                    normalize_frame(&e.distances, &e.stats, w.weight, N / 4)
                        .0
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("3_combine_and", |b| {
        b.iter(|| combine_and(&normed, &weights).expect("combine").len())
    });
    group.bench_function("4_relevance_sort", |b| {
        b.iter(|| {
            let mut order: Vec<usize> = (0..N).filter(|&i| combined[i].is_some()).collect();
            order.sort_by(|&a, &b| {
                combined[a]
                    .partial_cmp(&combined[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.len()
        })
    });
    let displayed: Vec<usize> = (0..N / 4).collect();
    group.bench_function("5_spiral_arrange", |b| {
        b.iter(|| arrange_overall(&displayed, 160, 160).occupied())
    });
    group.finish();
}

criterion_group!(benches, phases);
criterion_main!(benches);
