//! Streaming vs materialized pipeline execution: the same multi-window
//! query, bit-identical outputs (asserted before timing), only the
//! intermediate representation differs — the materialized path builds
//! `#sp + 1` full-size packed `DistanceFrame`s, the streaming path
//! recomputes distances in two fused chunk walks and assembles the
//! predicate windows lazily at the displayed row ids.
//!
//! The authoritative A/B (with the ≥ 1.3× acceptance gate at n = 1M)
//! lives in the `pipeline_perf` binary; this bench is the quick,
//! CI-smoked view across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visdb_bench::{ramp_db, three_predicate_query};
use visdb_distance::DistanceResolver;
use visdb_relevance::pipeline::{
    run_pipeline_opts, run_pipeline_scalar, DisplayPolicy, Materialization, PipelineOptions,
};

fn streaming_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_vs_materialized");
    for n in [10_000usize, 100_000] {
        let db = ramp_db(n);
        let table = db.table("T").expect("ramp table");
        let resolver = DistanceResolver::new();
        let q = three_predicate_query(n);
        let cond = q.condition.as_ref();
        let policy = DisplayPolicy::Percentage(1.0);
        let run = |materialization: Materialization| {
            run_pipeline_opts(
                &db,
                table,
                &resolver,
                cond,
                &policy,
                PipelineOptions {
                    materialization,
                    ..Default::default()
                },
            )
            .expect("pipeline")
        };
        // correctness before timing: both arms bit-identical to scalar
        let slow = run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar");
        for materialization in [Materialization::Streaming, Materialization::Materialized] {
            let out = run(materialization);
            assert_eq!(out.combined, slow.combined, "{materialization:?} at n={n}");
            assert_eq!(
                out.displayed, slow.displayed,
                "{materialization:?} at n={n}"
            );
            assert_eq!(
                out.num_exact, slow.num_exact,
                "{materialization:?} at n={n}"
            );
        }
        assert!(
            run(Materialization::Streaming)
                .windows
                .iter()
                .all(|w| w.full_frames().is_none()),
            "streaming must engage at n={n}"
        );
        group.bench_with_input(BenchmarkId::new("materialized", n), &n, |b, _| {
            b.iter(|| run(Materialization::Materialized))
        });
        group.bench_with_input(BenchmarkId::new("streaming", n), &n, |b, _| {
            b.iter(|| run(Materialization::Streaming))
        });
    }
    group.finish();
}

criterion_group!(benches, streaming_vs_materialized);
criterion_main!(benches);
