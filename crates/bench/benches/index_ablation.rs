//! DESIGN.md ablation 5: linear scan vs k-d tree vs grid file for the
//! multidimensional range queries the paper says 1994 DBMSs lacked (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visdb_bench::random_points;
use visdb_index::{GridFile, KdTree, LinearScan, RangeIndex};

fn index_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_ablation");
    for &n in &[10_000usize, 100_000] {
        let pts = random_points(n, 3, 5);
        let kd = KdTree::build(pts.clone()).expect("kdtree");
        let gf = GridFile::build(pts.clone(), 16).expect("gridfile");
        let ls = LinearScan::new(pts).expect("scan");
        // a selective box (~1% of the volume per dimension pair)
        let low = [100.0, 100.0, 100.0];
        let high = [250.0, 250.0, 250.0];
        group.bench_with_input(BenchmarkId::new("kdtree", n), &n, |b, _| {
            b.iter(|| kd.range_query(&low, &high).expect("query").len())
        });
        group.bench_with_input(BenchmarkId::new("gridfile", n), &n, |b, _| {
            b.iter(|| gf.range_query(&low, &high).expect("query").len())
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            b.iter(|| ls.range_query(&low, &high).expect("query").len())
        });
    }
    group.finish();
}

criterion_group!(benches, index_ablation);
criterion_main!(benches);
