//! Claim C6: incremental recalculation (§6) — "retrieve more data than
//! necessary in the beginning and ... retrieve only the additional
//! portion of the data that is needed for a slightly modified query".
//!
//! Two levels:
//!
//! 1. **Retrieval level** ([`visdb_index::IncrementalCache`]): a cold
//!    range query vs a cached slider nudge. The cache pays off exactly in
//!    the paper's situation — the backing store is a *linear scan* (1994
//!    DBMSs had no multidimensional index, §6). Over our own k-d tree the
//!    cold query is already near-optimal, so the same comparison is
//!    included as an honest negative control.
//! 2. **Pipeline level** ([`visdb_relevance::PipelineCache`]): a full
//!    3-predicate recalculation vs one where a single slider moved and
//!    the other two windows are reused.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visdb_bench::{ramp_db, random_points, three_predicate_query};
use visdb_distance::DistanceResolver;
use visdb_index::{IncrementalCache, KdTree, LinearScan, RangeIndex};
use visdb_query::ast::{AttrRef, CompareOp, ConditionNode, Predicate, Weighted};
use visdb_relevance::cache::PipelineCache;
use visdb_relevance::pipeline::{run_pipeline, run_pipeline_cached, DisplayPolicy};

fn retrieval_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_retrieval");
    let n = 100_000usize;
    let pts = random_points(n, 2, 9);

    // the 1994 situation: linear scan as the only retrieval path
    let ls = LinearScan::new(pts.clone()).expect("scan");
    group.bench_with_input(BenchmarkId::new("cold_linear_scan", n), &n, |b, _| {
        let mut shift = 0.0;
        b.iter(|| {
            shift = (shift + 1.0) % 50.0;
            ls.range_query(&[200.0 + shift, 200.0], &[400.0 + shift, 400.0])
                .expect("query")
                .len()
        })
    });
    group.bench_with_input(BenchmarkId::new("cached_nudge_over_scan", n), &n, |b, _| {
        let ls2 = LinearScan::new(pts.clone()).expect("scan");
        let mut cache = IncrementalCache::new(ls2, 0.5);
        cache
            .range_query(&[200.0, 200.0], &[400.0, 400.0])
            .expect("warmup");
        let mut shift = 0.0;
        b.iter(|| {
            shift = (shift + 1.0) % 50.0;
            cache
                .range_query(&[200.0 + shift, 200.0], &[400.0 + shift, 400.0])
                .expect("query")
                .len()
        })
    });

    // negative control: over a k-d tree the cold query is already fast
    let kd = KdTree::build(pts.clone()).expect("kdtree");
    group.bench_with_input(BenchmarkId::new("cold_kdtree", n), &n, |b, _| {
        let mut shift = 0.0;
        b.iter(|| {
            shift = (shift + 1.0) % 50.0;
            kd.range_query(&[200.0 + shift, 200.0], &[400.0 + shift, 400.0])
                .expect("query")
                .len()
        })
    });
    group.bench_with_input(
        BenchmarkId::new("cached_nudge_over_kdtree", n),
        &n,
        |b, _| {
            let kd2 = KdTree::build(pts.clone()).expect("kdtree");
            let mut cache = IncrementalCache::new(kd2, 0.5);
            cache
                .range_query(&[200.0, 200.0], &[400.0, 400.0])
                .expect("warmup");
            let mut shift = 0.0;
            b.iter(|| {
                shift = (shift + 1.0) % 50.0;
                cache
                    .range_query(&[200.0 + shift, 200.0], &[400.0 + shift, 400.0])
                    .expect("query")
                    .len()
            })
        },
    );
    group.finish();
}

fn pipeline_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_pipeline");
    group.sample_size(20);
    let n = 100_000usize;
    let db = ramp_db(n);
    let table = db.table("T").expect("table");
    let resolver = DistanceResolver::new();
    let policy = DisplayPolicy::Percentage(25.0);
    let base_query = three_predicate_query(n);

    group.bench_function("full_recalculation", |b| {
        b.iter(|| {
            run_pipeline(
                &db,
                table,
                &resolver,
                base_query.condition.as_ref(),
                &policy,
            )
            .expect("pipeline")
            .num_exact
        })
    });
    group.bench_function("one_slider_moved_cached", |b| {
        // warm the cache with the base query, then alternate the first
        // predicate's threshold: two of three windows are always reused
        let mut cache = PipelineCache::new();
        run_pipeline_cached(
            &db,
            table,
            &resolver,
            base_query.condition.as_ref(),
            &policy,
            Some(&mut cache),
        )
        .expect("warmup");
        let mut toggle = false;
        b.iter(|| {
            toggle = !toggle;
            let threshold = if toggle { 0.89 } else { 0.91 } * n as f64;
            let mut q = base_query.clone();
            if let Some(w) = &mut q.condition {
                if let ConditionNode::And(children) = &mut w.node {
                    children[0] = Weighted::unit(ConditionNode::Predicate(Predicate::compare(
                        AttrRef::new("x"),
                        CompareOp::Ge,
                        threshold,
                    )));
                }
            }
            run_pipeline_cached(
                &db,
                table,
                &resolver,
                q.condition.as_ref(),
                &policy,
                Some(&mut cache),
            )
            .expect("pipeline")
            .num_exact
        })
    });
    group.finish();
}

criterion_group!(benches, retrieval_level, pipeline_level);
criterion_main!(benches);
