//! Serving-layer throughput: requests/sec through the `visdb-service`
//! worker pool at 1, 4 and 8 workers.
//!
//! Sixteen sessions share one `Arc<Database>`; each measured iteration
//! drags every session's slider to a fresh value and fetches the
//! re-rendered frame (2 requests × 16 sessions). Slider values never
//! repeat, so neither the per-session incremental cache nor the shared
//! query cache can short-circuit the work — the numbers measure the
//! parallel pipeline itself, and on multi-core hardware the 1→4→8 worker
//! progression shows the pool scaling the paper's single-user
//! recalculation loop across cores (on a single-core box the progression
//! instead measures the pool's scheduling overhead). The shared cache is
//! disabled; with it on, repeated-query workloads are faster still — see
//! `tests/service.rs`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use visdb_bench::ramp_db;
use visdb_query::ast::CompareOp;
use visdb_query::connection::ConnectionRegistry;
use visdb_service::{PendingResponse, RenderFormat, Request, Response, Service, ServiceConfig};

const SESSIONS: usize = 16;
const ROWS: usize = 30_000;

fn service_throughput(c: &mut Criterion) {
    let db = Arc::new(ramp_db(ROWS));
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements((SESSIONS * 2) as u64));

    for workers in [1usize, 4, 8] {
        let service = Service::new(ServiceConfig {
            workers,
            cache_capacity: 0, // measure the pipeline, not the cache
            ..Default::default()
        });
        service.register_dataset("ramp", Arc::clone(&db), ConnectionRegistry::new());
        let sessions: Vec<_> = (0..SESSIONS)
            .map(|i| {
                let id = service.create_session("ramp").expect("registered");
                for req in [
                    Request::SetWindowSize { w: 32, h: 32 },
                    Request::SetQueryText(format!("SELECT * FROM T WHERE x >= {}", ROWS / 2 + i)),
                ] {
                    assert_eq!(service.submit(id, req).expect("live"), Response::Ok);
                }
                id
            })
            .collect();

        let mut round = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| {
                round += 1;
                let pending: Vec<PendingResponse> = sessions
                    .iter()
                    .enumerate()
                    .flat_map(|(i, &id)| {
                        // a never-repeating slider target defeats every
                        // cache layer: all 16 renders do full pipeline work
                        let value = (round * 101 + (i as u64) * 31) % (ROWS as u64 / 2);
                        [
                            service
                                .submit_async(
                                    id,
                                    Request::MoveSlider {
                                        window: 0,
                                        op: CompareOp::Ge,
                                        value: value as f64,
                                    },
                                )
                                .expect("live session"),
                            service
                                .submit_async(id, Request::Render(RenderFormat::Ascii))
                                .expect("live session"),
                        ]
                    })
                    .collect();
                for p in pending {
                    match p.wait().expect("worker reply") {
                        Response::Ok | Response::Frame { .. } => {}
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
