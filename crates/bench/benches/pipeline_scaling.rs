//! Claim C1: the pipeline scales as O(n log n).
//!
//! "For simple queries and standard distance functions the complexity is
//! O(n logn) with n being the number of data items." We measure the full
//! pipeline (distances + normalization + combining + sort + display
//! selection) over n = 10³..10⁶ and report throughput; near-constant
//! time-per-item (up to the log factor) is the expected shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use visdb_bench::{ramp_db, three_predicate_query};
use visdb_distance::DistanceResolver;
use visdb_relevance::pipeline::{run_pipeline, DisplayPolicy};

fn pipeline_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_scaling");
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let db = ramp_db(n);
        let table = db.table("T").expect("table");
        let query = three_predicate_query(n);
        let resolver = DistanceResolver::new();
        let policy = DisplayPolicy::Percentage(25.0);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                run_pipeline(&db, table, &resolver, query.condition.as_ref(), &policy)
                    .expect("pipeline")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_scaling);
criterion_main!(benches);
