//! DESIGN.md ablation 1: the paper's weighted arithmetic/geometric mean
//! combiners (§5.2) vs fuzzy-logic min/max alternatives — cost per item
//! at AND/OR fan-ins of 2, 4 and 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use visdb_relevance::combine::{ablation, combine_and, combine_or};

const N: usize = 100_000;

fn children(fan_in: usize) -> (Vec<Vec<Option<f64>>>, Vec<f64>) {
    let cs: Vec<Vec<Option<f64>>> = (0..fan_in)
        .map(|k| (0..N).map(|i| Some(((i * (k + 3)) % 256) as f64)).collect())
        .collect();
    let ws = vec![1.0 / fan_in as f64; fan_in];
    (cs, ws)
}

fn combining(c: &mut Criterion) {
    let mut group = c.benchmark_group("combining_ablation");
    group.throughput(Throughput::Elements(N as u64));
    for fan_in in [2usize, 4, 8] {
        let (cs, ws) = children(fan_in);
        group.bench_with_input(
            BenchmarkId::new("and_weighted_mean", fan_in),
            &fan_in,
            |b, _| b.iter(|| combine_and(&cs, &ws).expect("combine").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("or_geometric_mean", fan_in),
            &fan_in,
            |b, _| b.iter(|| combine_or(&cs, &ws).expect("combine").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("and_fuzzy_max", fan_in),
            &fan_in,
            |b, _| b.iter(|| ablation::combine_and_max(&cs, &ws).expect("combine").len()),
        );
        group.bench_with_input(BenchmarkId::new("or_fuzzy_min", fan_in), &fan_in, |b, _| {
            b.iter(|| ablation::combine_or_min(&cs, &ws).expect("combine").len())
        });
    }
    group.finish();
}

criterion_group!(benches, combining);
criterion_main!(benches);
