//! Claim C7 performance side: the §5.1 gap heuristic.
//!
//! The paper claims the naive O(z·(rmax−rmin)) window sum "can be easily
//! optimized to ... (z + rmax − rmin)". We benchmark both against the
//! α-quantile selection, over unimodal and bimodal distance vectors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visdb_data::distributions::{mixture, normal, rng};
use visdb_relevance::quantile::quantile;
use visdb_relevance::reduction::{gap_cutoff, gap_cutoff_naive};

fn sorted_distances(n: usize, bimodal: bool) -> Vec<f64> {
    let mut r = rng(31);
    let mut d: Vec<f64> = (0..n)
        .map(|_| {
            if bimodal {
                mixture(&mut r, 0.5, (30.0, 8.0), (500.0, 20.0)).max(0.0)
            } else {
                normal(&mut r, 100.0, 25.0).max(0.0)
            }
        })
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    d
}

fn reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    for &n in &[10_000usize, 100_000] {
        let data = sorted_distances(n, true);
        let rmin = n / 10;
        let rmax = n - n / 10;
        for &z in &[16usize, 256] {
            group.bench_with_input(
                BenchmarkId::new("gap_incremental", format!("n{n}_z{z}")),
                &z,
                |b, &z| b.iter(|| gap_cutoff(&data, rmin, rmax, z).expect("cutoff")),
            );
            group.bench_with_input(
                BenchmarkId::new("gap_naive", format!("n{n}_z{z}")),
                &z,
                |b, &z| b.iter(|| gap_cutoff_naive(&data, rmin, rmax, z).expect("cutoff")),
            );
        }
        let unsorted: Vec<f64> = sorted_distances(n, false);
        group.bench_with_input(BenchmarkId::new("alpha_quantile", n), &n, |b, _| {
            b.iter(|| quantile(&unsorted, 0.4).expect("quantile"))
        });
    }
    group.finish();
}

criterion_group!(benches, reduction);
criterion_main!(benches);
