//! DESIGN.md ablation 4: arrangement quality and cost.
//!
//! "The sorting is necessary to avoid completely sprinkled images" (§4.2):
//! we measure (a) the throughput of the spiral and 2D arrangements, and
//! (b) — printed once at bench start — a *spatial color coherence* score
//! (mean absolute normalized-distance difference between horizontally
//! adjacent occupied cells; lower = smoother image) for sorted vs
//! unsorted placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use visdb_arrange::{arrange_grouped2d, arrange_overall, grouped2d::Item2D, ItemGrid};
use visdb_data::distributions::{normal, rng};

fn coherence(grid: &ItemGrid, dist: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for y in 0..grid.height() {
        for x in 1..grid.width() {
            if let (Some(a), Some(b)) = (grid.get(x - 1, y), grid.get(x, y)) {
                total += (dist[a as usize] - dist[b as usize]).abs();
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn arrangement(c: &mut Criterion) {
    // quality report (printed once; recorded in EXPERIMENTS.md)
    let mut r = rng(41);
    let n = 96 * 96;
    let mut dist: Vec<f64> = (0..n)
        .map(|_| normal(&mut r, 128.0, 50.0).clamp(0.0, 255.0))
        .collect();
    let unsorted: Vec<usize> = (0..n).collect();
    let grid_unsorted = arrange_overall(&unsorted, 96, 96);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("finite"));
    let grid_sorted = arrange_overall(&order, 96, 96);
    println!(
        "arrangement coherence (mean |Δdistance| between neighbours): sorted spiral {:.2}, \
         unsorted ('sprinkled') {:.2}",
        coherence(&grid_sorted, &dist),
        coherence(&grid_unsorted, &dist)
    );
    dist.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let mut group = c.benchmark_group("arrangement");
    for &side in &[64usize, 256] {
        let items: Vec<usize> = (0..side * side).collect();
        group.bench_with_input(BenchmarkId::new("spiral", side), &side, |b, &side| {
            b.iter(|| arrange_overall(&items, side, side).occupied())
        });
        let items2d: Vec<Item2D> = (0..side * side)
            .map(|i| Item2D {
                item: i,
                dx: ((i % 7) as f64) - 3.0,
                dy: ((i % 5) as f64) - 2.0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("grouped2d", side), &side, |b, &side| {
            b.iter(|| arrange_grouped2d(&items2d, side, side).occupied())
        });
    }
    group.finish();
}

criterion_group!(benches, arrangement);
criterion_main!(benches);
