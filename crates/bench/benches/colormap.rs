//! Claim C4 performance side: coloring a full display must be cheap
//! enough for interactive recalculation. Benchmarks LUT lookups for a
//! screenful of normalized distances and the one-off JND computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use visdb_color::{count_jnds, Colormap, ColormapKind};

fn colormap(c: &mut Criterion) {
    let map = Colormap::new(ColormapKind::VisDb);
    // a 1024x1280 display of normalized distances (the paper's screen)
    let n = 1024 * 1280;
    let distances: Vec<f64> = (0..n).map(|i| (i % 256) as f64).collect();

    let mut group = c.benchmark_group("colormap");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("screenful_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &d in &distances {
                acc += u64::from(map.color_for_distance(d).expect("in range").r);
            }
            acc
        })
    });
    group.bench_function("jnd_count_1024_samples", |b| {
        b.iter(|| count_jnds(&map, 1024))
    });
    group.finish();
}

criterion_group!(benches, colormap);
criterion_main!(benches);
