//! # visdb-bench
//!
//! Shared helpers for the Criterion benches and the figure/claim
//! regeneration binaries (see DESIGN.md §3 for the experiment index).
//!
//! Binaries:
//! * `figures` — regenerates fig 1a, 1b, 2, 3, 4 and 5 as PPM files under
//!   `out/` plus the printed panels.
//! * `claims` — prints the measured series for claims C2–C5 and C7.
//!
//! Benches (`cargo bench`):
//! * `pipeline_scaling` — C1: O(n log n) scaling of the full pipeline.
//! * `phase_breakdown` — C1: distance vs normalize vs sort vs arrange.
//! * `reduction` — C7: α-quantile vs gap heuristic (naive vs optimized).
//! * `colormap` — C4: LUT lookup throughput + JND computation cost.
//! * `index_ablation` — linear scan vs k-d tree vs grid file.
//! * `incremental` — C6: cold queries vs cached slider nudges.
//! * `combining_ablation` — weighted means vs fuzzy min/max combiners.
//! * `arrangement` — spiral vs 2D arrangement throughput + coherence.

use visdb_query::ast::{CompareOp, Query};
use visdb_query::builder::QueryBuilder;
use visdb_storage::{Database, TableBuilder};
use visdb_types::{Column, DataType, Value};

/// A single-column ramp table `x = 0..n`, the canonical scaling workload.
pub fn ramp_db(n: usize) -> Database {
    let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
    for i in 0..n {
        t = t.row(vec![Value::Float(i as f64)]).expect("conforming row");
    }
    let mut db = Database::new("bench");
    db.add_table(t.build());
    db
}

/// A three-predicate query over the ramp (three windows, like fig 4).
pub fn three_predicate_query(n: usize) -> Query {
    QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .cmp("x", CompareOp::Lt, n as f64 * 0.95)
        .between("x", n as f64 * 0.2, n as f64 * 0.8)
        .build()
}

/// Deterministic pseudo-random points for the index benches.
pub fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
    // xorshift — cheap and deterministic without pulling rand into the
    // hot path setup
    let mut state = seed.max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..dims).map(|_| next() * 1000.0).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_db_shape() {
        let db = ramp_db(10);
        assert_eq!(db.table("T").unwrap().len(), 10);
    }

    #[test]
    fn random_points_deterministic() {
        assert_eq!(random_points(5, 3, 7), random_points(5, 3, 7));
        assert_ne!(random_points(5, 3, 7), random_points(5, 3, 8));
        for p in random_points(100, 2, 1) {
            assert!(p.iter().all(|x| (0.0..=1000.0).contains(x)));
        }
    }
}
