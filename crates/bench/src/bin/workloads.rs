//! Machine-readable perf record of the paper's three §3–§4.5 case
//! studies run end to end as macro workloads, plus the **approximate
//! join A/B** that gates the banded sort-merge sweep:
//!
//! * **ozone** — the environmental running example (§3/§4.1): an ozone
//!   threshold predicate AND an `IN` subquery joining `Air-Pollution`
//!   to hot `Weather` hours on `DateTime`. The join attribute is
//!   numeric, so the vectorized arm takes the **banded sort-merge**
//!   path (sorted projection + outward band sweep with the global
//!   `gap + cond_lb >= best` cutoff).
//! * **cad** — the CAD similarity retrieval of §4.5: an `AND` of
//!   `AROUND` predicates over a prototype part's parameters
//!   (fixed-allowance similarity search, streamable kernels).
//! * **multidb** — the multi-database correspondence of §4.5: an
//!   approximate string join `CustomersA.Name IN (... CustomersB)`
//!   whose typo'd keys defeat exact joins. The vectorized arm takes the
//!   **dictionary-gather** path (per-distinct-value distance tables,
//!   no per-row `Value` clone).
//!
//! Every workload first *asserts* that the vectorized output is
//! identical to the scalar per-tuple reference, then times both arms;
//! the `banded_vs_exhaustive` series additionally isolates the join
//! itself (one `eval_node` on the subquery node, vectorized banded
//! sweep vs scalar exhaustive O(n·m) loop, bit-identity asserted
//! first) across inner-relation sizes. Results go to
//! `BENCH_workloads.json`; every number is the **median** of at least
//! [`MIN_REPS`] timed repetitions, with rep counts recorded.
//!
//! ```sh
//! cargo run --release -p visdb-bench --bin workloads            # full
//! cargo run --release -p visdb-bench --bin workloads -- --smoke # CI
//! ```
//!
//! In full mode the run *gates* the banded join: it must be >= 5x the
//! exhaustive sweep at the largest inner-relation size.

use std::fmt::Write as _;
use std::time::Instant;

use visdb_data::{
    generate_cad, generate_environmental, generate_multidb, CadConfig, EnvConfig, MultiDbConfig,
};
use visdb_distance::DistanceResolver;
use visdb_query::ast::{AttrRef, ConditionNode, SubqueryLink};
use visdb_query::{CompareOp, QueryBuilder};
use visdb_relevance::pipeline::{run_pipeline, run_pipeline_scalar, DisplayPolicy, PipelineOutput};
use visdb_relevance::{EvalContext, ExecMode};
use visdb_storage::Database;
use visdb_types::Value;

/// Minimum timed repetitions per measurement; every reported number is
/// the **median** over at least this many reps.
const MIN_REPS: usize = 5;

/// One de-flaked measurement: the median seconds-per-call over `reps`
/// individually timed repetitions.
struct Timed {
    per_call_s: f64,
    reps: usize,
}

/// Median of individually timed samples (mean of the middle two for an
/// even count). Sorts `samples` in place.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        0.5 * (samples[mid - 1] + samples[mid])
    }
}

/// Time `f` until at least [`MIN_REPS`] individually timed repetitions
/// have run *and* ~0.5 s (or 50 reps) have accumulated; returns the
/// median seconds per call plus the rep count.
fn time_median<T>(mut f: impl FnMut() -> T) -> Timed {
    let start = Instant::now();
    let mut samples: Vec<f64> = Vec::new();
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
        if samples.len() >= MIN_REPS
            && (start.elapsed().as_secs_f64() >= 0.5 || samples.len() >= 50)
        {
            break;
        }
    }
    let reps = samples.len();
    Timed {
        per_call_s: median(&mut samples),
        reps,
    }
}

/// Record a measurement's rep count and unwrap its median.
fn note(rep_counts: &mut Vec<usize>, t: Timed) -> f64 {
    rep_counts.push(t.reps);
    t.per_call_s
}

/// The identity contract every workload must pass before it is timed:
/// vectorized (banded / gathered / streamed) output equals the scalar
/// per-tuple reference in every user-visible field.
fn assert_identical(fast: &PipelineOutput, slow: &PipelineOutput, name: &str) {
    assert_eq!(fast.combined, slow.combined, "{name}: combined diverges");
    assert_eq!(fast.num_exact, slow.num_exact, "{name}: num_exact diverges");
    assert_eq!(fast.displayed, slow.displayed, "{name}: displayed diverges");
    assert_eq!(
        fast.order[..fast.sorted_len],
        slow.order[..fast.sorted_len],
        "{name}: sorted order prefix diverges"
    );
    for (f, s) in fast.windows.iter().zip(&slow.windows) {
        assert_eq!(f.norm_params, s.norm_params, "{name}: norm params diverge");
        for &i in &fast.displayed {
            assert_eq!(f.raw_at(i), s.raw_at(i), "{name}: window raw diverges");
            assert_eq!(
                f.normalized_at(i),
                s.normalized_at(i),
                "{name}: window norm diverges"
            );
        }
    }
}

struct WorkloadResult {
    name: &'static str,
    /// Which vectorized join/kernel path the workload exercises.
    path: &'static str,
    rows: usize,
    inner_rows: usize,
    scalar_rows_per_sec: f64,
    vectorized_rows_per_sec: f64,
    speedup: f64,
    reps: usize,
}

/// Run one macro workload end to end: identity assert, then scalar and
/// vectorized medians.
fn bench_workload(
    name: &'static str,
    path: &'static str,
    db: &Database,
    table_name: &str,
    q: &visdb_query::ast::Query,
    inner_rows: usize,
) -> WorkloadResult {
    let table = db.table(table_name).expect("workload table");
    let resolver = DistanceResolver::new();
    let cond = q.condition.as_ref();
    let policy = DisplayPolicy::Percentage(1.0);
    let fast = run_pipeline(db, table, &resolver, cond, &policy).expect("vectorized");
    let slow = run_pipeline_scalar(db, table, &resolver, cond, &policy).expect("scalar");
    assert_identical(&fast, &slow, name);
    let mut rep_counts = Vec::new();
    let scalar_s = note(
        &mut rep_counts,
        time_median(|| run_pipeline_scalar(db, table, &resolver, cond, &policy).expect("scalar")),
    );
    let vector_s = note(
        &mut rep_counts,
        time_median(|| run_pipeline(db, table, &resolver, cond, &policy).expect("vectorized")),
    );
    let n = table.len();
    WorkloadResult {
        name,
        path,
        rows: n,
        inner_rows,
        scalar_rows_per_sec: n as f64 / scalar_s,
        vectorized_rows_per_sec: n as f64 / vector_s,
        speedup: scalar_s / vector_s,
        reps: rep_counts.iter().copied().min().expect("measurements ran"),
    }
}

/// The ozone case study (§3/§4.1): hot-weather hours drive the ozone
/// response two hours later; the query asks for high-ozone pollution
/// rows whose timestamp approximately joins a hot weather hour.
fn ozone_query() -> visdb_query::ast::Query {
    let inner = QueryBuilder::from_tables(["Weather"])
        .cmp("Temperature", CompareOp::Ge, 22.0)
        .build();
    QueryBuilder::from_tables(["Air-Pollution"])
        .cmp("Ozone", CompareOp::Ge, 120.0)
        .is_in("DateTime", "DateTime", inner)
        .build()
}

/// One point of the join A/B series.
struct JoinPoint {
    inner_rows: usize,
    outer_rows: usize,
    banded_ms: f64,
    exhaustive_ms: f64,
    speedup: f64,
    reps: usize,
}

/// Isolate the approximate join: evaluate only the subquery node of the
/// ozone query, vectorized (banded sort-merge sweep) vs scalar
/// (exhaustive O(n·m) loop), bit-identity asserted first.
fn bench_join(hours: usize) -> JoinPoint {
    let env = generate_environmental(&EnvConfig {
        hours,
        stations: 1,
        seed: 7,
        ..Default::default()
    });
    let inner = QueryBuilder::from_tables(["Weather"])
        .cmp("Temperature", CompareOp::Ge, 22.0)
        .build();
    let node = ConditionNode::Subquery {
        link: SubqueryLink::In {
            outer: AttrRef::new("DateTime"),
            inner: AttrRef::new("DateTime"),
        },
        query: Box::new(inner),
    };
    let table = env.db.table("Air-Pollution").expect("outer table");
    let resolver = DistanceResolver::new();
    let ctx = |mode: ExecMode| EvalContext {
        db: &env.db,
        table,
        resolver: &resolver,
        display_budget: (table.len() / 100).max(1),
        mode,
        partitions: None,
        cancel: None,
    };
    let banded = ctx(ExecMode::Vectorized);
    let exhaustive = ctx(ExecMode::Scalar);
    let fast = banded.eval_node(&node).expect("banded join");
    let slow = exhaustive.eval_node(&node).expect("exhaustive join");
    assert!(
        fast.distances.bits_eq(&slow.distances),
        "banded join must be bit-identical to the exhaustive sweep at {hours} hours"
    );
    assert_eq!(
        fast.stats, slow.stats,
        "join stats diverge at {hours} hours"
    );
    let mut rep_counts = Vec::new();
    let banded_s = note(
        &mut rep_counts,
        time_median(|| banded.eval_node(&node).expect("banded join")),
    );
    let exhaustive_s = note(
        &mut rep_counts,
        time_median(|| exhaustive.eval_node(&node).expect("exhaustive join")),
    );
    JoinPoint {
        inner_rows: env.db.table("Weather").expect("inner table").len(),
        outer_rows: table.len(),
        banded_ms: banded_s * 1e3,
        exhaustive_ms: exhaustive_s * 1e3,
        speedup: exhaustive_s / banded_s,
        reps: rep_counts.iter().copied().min().expect("measurements ran"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // ---- the three case-study macro workloads ------------------------
    let env = generate_environmental(&EnvConfig {
        hours: if smoke { 96 } else { 2_000 },
        stations: 2,
        seed: 7,
        ..Default::default()
    });
    let weather_rows = env.db.table("Weather").expect("Weather").len();
    let ozone = bench_workload(
        "ozone",
        "banded-join",
        &env.db,
        "Air-Pollution",
        &ozone_query(),
        weather_rows,
    );

    let cad_data = generate_cad(&CadConfig {
        clusters: if smoke { 3 } else { 8 },
        parts_per_cluster: if smoke { 10 } else { 60 },
        random_parts: if smoke { 50 } else { 2_000 },
        seed: 77,
        ..Default::default()
    });
    let mut qb = QueryBuilder::from_tables(["Parts"]);
    for (p, &c) in cad_data.prototypes[0].iter().take(6).enumerate() {
        qb = qb.around(format!("p{p:02}"), c, 2.0);
    }
    let cad = bench_workload(
        "cad",
        "streaming-kernels",
        &cad_data.db,
        "Parts",
        &qb.build(),
        0,
    );

    let mdb = generate_multidb(&MultiDbConfig {
        customers: if smoke { 40 } else { 800 },
        unmatched_per_side: if smoke { 10 } else { 200 },
        seed: 99,
        ..Default::default()
    });
    let inner = QueryBuilder::from_tables(["CustomersB"])
        .cmp("Balance", CompareOp::Ge, 0.0)
        .build();
    let mq = QueryBuilder::from_tables(["CustomersA"])
        .cmp("Balance", CompareOp::Ge, Value::Float(-1_000.0))
        .is_in("Name", "Name", inner)
        .build();
    let b_rows = mdb.db.table("CustomersB").expect("CustomersB").len();
    let multidb = bench_workload(
        "multidb",
        "gathered-join",
        &mdb.db,
        "CustomersA",
        &mq,
        b_rows,
    );

    let workloads = [ozone, cad, multidb];
    for w in &workloads {
        println!(
            "{:<8} ({:>17}): n={:>6} (inner {:>6}) | scalar {:>10.0} rows/s | \
             vectorized {:>10.0} rows/s | speedup {:>6.2}x | median of >= {} reps",
            w.name,
            w.path,
            w.rows,
            w.inner_rows,
            w.scalar_rows_per_sec,
            w.vectorized_rows_per_sec,
            w.speedup,
            w.reps,
        );
    }

    // ---- banded vs exhaustive join A/B across inner sizes ------------
    let hour_series: &[usize] = if smoke {
        &[100, 400]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let joins: Vec<JoinPoint> = hour_series.iter().map(|&h| bench_join(h)).collect();
    for j in &joins {
        println!(
            "banded_vs_exhaustive: inner={:>6} outer={:>6} | banded {:>9.3} ms | \
             exhaustive {:>10.3} ms | speedup {:>8.2}x | median of >= {} reps",
            j.inner_rows, j.outer_rows, j.banded_ms, j.exhaustive_ms, j.speedup, j.reps,
        );
    }

    // ---- JSON --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"workloads\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"min_reps\": {MIN_REPS},");
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, w) in workloads.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"path\": \"{}\", \"rows\": {}, \"inner_rows\": {}, \
             \"scalar_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"reps\": {}}}{}",
            w.name,
            w.path,
            w.rows,
            w.inner_rows,
            w.scalar_rows_per_sec,
            w.vectorized_rows_per_sec,
            w.speedup,
            w.reps,
            if i + 1 < workloads.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"banded_vs_exhaustive\": [");
    for (i, j) in joins.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"inner_rows\": {}, \"outer_rows\": {}, \"banded_ms\": {:.3}, \
             \"exhaustive_ms\": {:.3}, \"speedup\": {:.3}, \"reps\": {}}}{}",
            j.inner_rows,
            j.outer_rows,
            j.banded_ms,
            j.exhaustive_ms,
            j.speedup,
            j.reps,
            if i + 1 < joins.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_workloads.json";
    std::fs::write(path, &json).expect("write BENCH_workloads.json");
    println!("wrote {path}");

    // ---- acceptance gate (full mode only) ----------------------------
    if !smoke {
        let big = joins
            .iter()
            .max_by_key(|j| j.inner_rows)
            .expect("join series ran");
        assert!(
            big.speedup >= 5.0,
            "acceptance: the banded sort-merge join must be >= 5x the exhaustive \
             sweep at the largest inner relation ({} rows; got {:.2}x: {:.3} ms vs {:.3} ms)",
            big.inner_rows,
            big.speedup,
            big.banded_ms,
            big.exhaustive_ms
        );
    }
}
