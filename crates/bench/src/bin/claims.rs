//! Print the measured series for the paper's quantitative claims
//! (C2, C3, C4, C5, C7 — see DESIGN.md §3; C1 and C6 are Criterion
//! benches). Output is recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p visdb-bench --bin claims
//! ```

use visdb_baseline::{evaluate_boolean, hot_spot_ranks, kmeans};
use visdb_color::{count_jnds, Colormap, ColormapKind};
use visdb_core::materialize_base;
use visdb_data::{generate_environmental, generate_multidb, EnvConfig, MultiDbConfig};
use visdb_distance::DistanceResolver;
use visdb_query::ast::CompareOp;
use visdb_query::builder::QueryBuilder;
use visdb_relevance::pipeline::{run_pipeline, DisplayPolicy};
use visdb_relevance::quantile::quantile;
use visdb_relevance::reduction::gap_cutoff;
use visdb_types::Result;

fn c2_hot_spots() -> Result<()> {
    println!("== C2: approximate answers rescue NULL-result queries ==");
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 30,
        stations: 1,
        ..Default::default()
    });
    let pollution = env.db.table("Air-Pollution")?;
    let q = QueryBuilder::from_tables(["Air-Pollution"])
        .cmp("Ozone", CompareOp::Gt, 1500.0)
        .build();
    let exact = evaluate_boolean(&env.db, pollution, &q.condition.as_ref().unwrap().node)?;
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &env.db,
        pollution,
        &resolver,
        q.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )?;
    let ranks = hot_spot_ranks(&out.order[..out.sorted_len], &env.truth.hot_spot_rows);
    println!("  query: Ozone > 1500 over {} rows", pollution.len());
    println!(
        "  boolean baseline rows: {}",
        exact.iter().filter(|b| **b).count()
    );
    println!(
        "  visual-feedback ranks of {} planted hot spots: {:?}",
        env.truth.hot_spot_rows.len(),
        ranks
    );
    Ok(())
}

fn c3_clustering() -> Result<()> {
    println!("\n== C3: cluster analysis cannot find single hot spots ==");
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 30,
        stations: 1,
        ..Default::default()
    });
    let pollution = env.db.table("Air-Pollution")?;
    let points: Vec<Vec<f64>> = (0..pollution.len())
        .map(|i| {
            (2..6)
                .map(|c| pollution.column(c).unwrap().get_f64(i).unwrap_or(0.0))
                .collect()
        })
        .collect();
    for k in [2, 3, 5, 8] {
        let km = kmeans(&points, k, 42, 100)?;
        let labels: Vec<usize> = env
            .truth
            .hot_spot_rows
            .iter()
            .map(|&i| km.assignments[i])
            .collect();
        let sizes: Vec<usize> = labels
            .iter()
            .map(|&l| km.assignments.iter().filter(|&&a| a == l).count())
            .collect();
        println!(
            "  k={k}: hot-spot cluster labels {labels:?} (cluster sizes {sizes:?}, {} iters) \
             -> labels only, no per-item ranking",
            km.iterations
        );
    }
    Ok(())
}

fn c4_jnds() {
    println!("\n== C4: colormap JNDs vs gray scale ==");
    for (name, kind) in [
        (
            "visdb (yellow->green->blue->red->black)",
            ColormapKind::VisDb,
        ),
        ("grayscale (white->black)", ColormapKind::Grayscale),
        ("heat (white->yellow->red->black)", ColormapKind::Heat),
    ] {
        let j = count_jnds(&Colormap::new(kind), 2048);
        println!("  {name}: {j:.0} JNDs");
    }
}

fn c5_approx_join() -> Result<()> {
    println!("\n== C5: approximate joins recover lost correspondences ==");
    let data = generate_multidb(&MultiDbConfig::default());
    let conn = data
        .registry
        .lookup("same-customer", "CustomersA", "CustomersB")?
        .clone()
        .instantiate(vec![])?;
    let query = QueryBuilder::from_tables(["CustomersA", "CustomersB"])
        .connect(conn)
        .build();
    let base = materialize_base(&data.db, &query, &Default::default())?;
    let exact = evaluate_boolean(&data.db, &base, &query.condition.as_ref().unwrap().node)?;
    let resolver = DistanceResolver::new();
    let out = run_pipeline(
        &data.db,
        &base,
        &resolver,
        query.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )?;
    let m = data.db.table("CustomersB")?.len();
    let truth: Vec<usize> = data.pairs.iter().map(|&(i, j)| i * m + j).collect();
    let top = &out.order[..truth.len().min(out.sorted_len)];
    let recovered = truth.iter().filter(|t| top.contains(t)).count();
    println!("  cross product: {} pairs", base.len());
    println!(
        "  exact equi-join matches: {}",
        exact.iter().filter(|b| **b).count()
    );
    println!(
        "  approximate join: {recovered}/{} true pairs in the top {}",
        truth.len(),
        truth.len()
    );

    // and the environmental time join (clock offset 600s)
    let env = generate_environmental(&EnvConfig {
        hours: 24 * 10,
        stations: 1,
        ..Default::default()
    });
    let conn = env
        .registry
        .lookup("at-same-time", "Air-Pollution", "Weather")?
        .clone()
        .instantiate(vec![])?;
    let query = QueryBuilder::from_tables(["Weather", "Air-Pollution"])
        .connect(conn)
        .build();
    let base = materialize_base(
        &env.db,
        &query,
        &visdb_core::JoinOptions {
            row_cap: 40_000,
            ..Default::default()
        },
    )?;
    let out = run_pipeline(
        &env.db,
        &base,
        &resolver,
        query.condition.as_ref(),
        &DisplayPolicy::Percentage(10.0),
    )?;
    let best = out.order.first().copied().map(|i| out.windows[0].raw_at(i));
    println!(
        "  environmental at-same-time join: {} exact (clock offset), closest approximate pair \
         {:?} seconds apart",
        out.num_exact,
        best.flatten().map(f64::abs)
    );
    Ok(())
}

fn c7_reduction() -> Result<()> {
    println!("\n== C7: gap heuristic vs alpha-quantile on bimodal distances ==");
    use visdb_data::distributions::{mixture, rng};
    let mut r = rng(23);
    let mut d: Vec<f64> = (0..10_000)
        .map(|_| mixture(&mut r, 0.5, (30.0, 8.0), (500.0, 20.0)).max(0.0))
        .collect();
    d.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q60 = quantile(&d, 0.6)?;
    let cut = gap_cutoff(&d, 1000, 9000, 50)?;
    let gap_dmax = d[cut];
    println!("  sorted distances: two groups near 30 and 500");
    println!("  alpha-quantile (p=0.6) display bound: {q60:.1}");
    println!("  gap-heuristic cut: item {cut} -> display bound {gap_dmax:.1}");
    println!(
        "  color resolution gain for the near group: {:.0}x",
        q60 / gap_dmax
    );
    Ok(())
}

fn main() -> Result<()> {
    c2_hot_spots()?;
    c3_clustering()?;
    c4_jnds();
    c5_approx_join()?;
    c7_reduction()?;
    Ok(())
}
