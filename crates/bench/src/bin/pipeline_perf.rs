//! Machine-readable perf record of the relevance hot path: scalar
//! (per-tuple, full-sort) vs vectorized (columnar kernels, chunked
//! data-parallel execution, top-k selection) rows/sec, plus isolated
//! top-k-vs-full-sort timings. Results are written to
//! `BENCH_pipeline.json` so future PRs can track the perf trajectory.
//!
//! ```sh
//! cargo run --release -p visdb-bench --bin pipeline_perf            # full (n up to 1M)
//! cargo run --release -p visdb-bench --bin pipeline_perf -- --smoke # CI: tiny n, asserts only
//! ```
//!
//! In both modes the binary *asserts* that the vectorized outputs are
//! identical to the scalar reference before it times anything — a kernel
//! regression that changes results or panics fails the run regardless of
//! timing noise.

use std::fmt::Write as _;
use std::time::Instant;

use visdb_bench::ramp_db;
use visdb_distance::DistanceResolver;
use visdb_query::ast::CompareOp;
use visdb_query::builder::QueryBuilder;
use visdb_relevance::pipeline::{run_pipeline, run_pipeline_scalar, DisplayPolicy, PipelineOutput};
use visdb_storage::Database;

struct SizeResult {
    n: usize,
    scalar_rows_per_sec: f64,
    vectorized_rows_per_sec: f64,
    speedup: f64,
    full_sort_ms: f64,
    topk_ms: f64,
    topk_k: usize,
}

/// Time `f` until it has run at least `min_reps` times *and* ~0.5 s has
/// elapsed; returns seconds per call.
fn time_per_call<T>(min_reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let start = Instant::now();
    let mut reps = 0usize;
    loop {
        std::hint::black_box(f());
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if reps >= min_reps && (elapsed >= 0.5 || reps >= 50) {
            return elapsed / reps as f64;
        }
    }
}

fn assert_identical(fast: &PipelineOutput, slow: &PipelineOutput, n: usize) {
    assert_eq!(fast.combined, slow.combined, "combined diverges at n={n}");
    assert_eq!(
        fast.num_exact, slow.num_exact,
        "num_exact diverges at n={n}"
    );
    assert_eq!(
        fast.displayed, slow.displayed,
        "displayed diverges at n={n}"
    );
    assert_eq!(
        fast.order[..fast.sorted_len],
        slow.order[..fast.sorted_len],
        "sorted order prefix diverges at n={n}"
    );
    assert!(
        fast.sorted_len < fast.order.len(),
        "top-k selection must engage when the display count < n (n={n})"
    );
    for (f, s) in fast.windows.iter().zip(&slow.windows) {
        assert_eq!(*f.raw, *s.raw, "window raw diverges at n={n}");
        assert_eq!(
            *f.normalized, *s.normalized,
            "window norm diverges at n={n}"
        );
    }
}

/// Deterministic pseudo-random combined-distance vector for the sort
/// micro-benchmark (xorshift; no `rand` in the timed path).
fn synthetic_combined(n: usize, seed: u64) -> Vec<Option<f64>> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Some((state >> 11) as f64 / (1u64 << 53) as f64 * 255.0)
        })
        .collect()
}

fn rank_cmp(combined: &[Option<f64>], a: usize, b: usize) -> std::cmp::Ordering {
    combined[a]
        .partial_cmp(&combined[b])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

fn bench_size(n: usize, smoke: bool) -> SizeResult {
    // the acceptance workload: one numeric predicate over a float ramp,
    // displaying 1% (so top-k selection replaces the full sort)
    let db: Database = ramp_db(n);
    let table = db.table("T").expect("ramp table");
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .build();
    let cond = q.condition.as_ref();
    let policy = DisplayPolicy::Percentage(1.0);

    let fast = run_pipeline(&db, table, &resolver, cond, &policy).expect("vectorized");
    let slow = run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar");
    assert_identical(&fast, &slow, n);

    let min_reps = if smoke { 1 } else { 3 };
    let scalar_s = time_per_call(min_reps, || {
        run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar")
    });
    let vector_s = time_per_call(min_reps, || {
        run_pipeline(&db, table, &resolver, cond, &policy).expect("vectorized")
    });

    // top-k vs full sort on the same synthetic ranking problem
    let combined = synthetic_combined(n, 0x5eed ^ n as u64);
    let k = (n / 100).max(1);
    let full_sort_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });
    let topk_s = time_per_call(min_reps, || {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(&combined, a, b));
        idx[..k].sort_unstable_by(|&a, &b| rank_cmp(&combined, a, b));
        idx
    });

    SizeResult {
        n,
        scalar_rows_per_sec: n as f64 / scalar_s,
        vectorized_rows_per_sec: n as f64 / vector_s,
        speedup: scalar_s / vector_s,
        full_sort_ms: full_sort_s * 1e3,
        topk_ms: topk_s * 1e3,
        topk_k: k,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[2_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut results = Vec::new();
    for &n in sizes {
        let r = bench_size(n, smoke);
        println!(
            "n={:>9}: scalar {:>12.0} rows/s | vectorized {:>12.0} rows/s | speedup {:>5.2}x | \
             sort {:>8.2} ms vs top-{} {:>7.3} ms",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.speedup,
            r.full_sort_ms,
            r.topk_k,
            r.topk_ms,
        );
        results.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"workload\": \"x >= 0.9n numeric predicate over a float ramp, Percentage(1) display\","
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"scalar_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"full_sort_ms\": {:.3}, \"topk_ms\": {:.3}, \"topk_k\": {}}}{}",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.speedup,
            r.full_sort_ms,
            r.topk_ms,
            r.topk_k,
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");

    if !smoke {
        if let Some(big) = results.iter().max_by_key(|r| r.n) {
            assert!(
                big.speedup >= 2.0,
                "acceptance: vectorized must be >= 2x scalar rows/sec at n={} (got {:.2}x)",
                big.n,
                big.speedup
            );
        }
    }
}
