//! Machine-readable perf record of the relevance hot path: scalar
//! (per-tuple, full-sort) vs vectorized (columnar kernels, chunked
//! data-parallel execution, top-k selection) vs partitioned (per-
//! partition passes + k-way merged top-k) rows/sec, pooled-vs-scoped
//! fan-out timings, isolated top-k-vs-full-sort timings, a **per-phase
//! breakdown** (distance / fit / normalize+combine / rank), the
//! **packed-vs-Option** representation A/B, the **slider-drag**
//! micro-bench (sorted-projection incremental path vs full recompute),
//! the **streaming-vs-materialized** A/B on a 2-predicate workload
//! (zero-materialization two-pass execution vs full-size frame
//! intermediates) with a streaming per-phase breakdown, the
//! **observability overhead** A/B (untraced run vs traced run plus the
//! per-query registry recording the service layer performs), the
//! **cancellation-poll overhead** A/B (tokenless run vs the identical
//! run polling a live deadline token at every 16k-row chunk), the
//! **branchless-vs-branchy** A/B isolating the fused normalize+combine
//! phase (per-row `Option`/`if defined` walk vs the packed
//! `apply_slice` + `combine_and_slices` + select-fold kernels), and a
//! **threads axis** re-timing the partitioned and streaming paths under
//! explicit 1/2/4/8-thread worker budgets.
//! Results are written to `BENCH_pipeline.json` so future PRs can track
//! the perf trajectory — and see where the time goes, not just one
//! end-to-end number.
//!
//! Every measurement is the **median** of at least [`MIN_REPS`] timed
//! repetitions (more until ~0.5 s or 50 reps accumulate); the JSON
//! records the minimum rep count per size so readers can judge how
//! settled the ratios are.
//!
//! ```sh
//! cargo run --release -p visdb-bench --bin pipeline_perf               # full (n up to 1M)
//! cargo run --release -p visdb-bench --bin pipeline_perf -- --smoke    # CI: tiny n, asserts only
//! cargo run --release -p visdb-bench --bin pipeline_perf -- --threads 4 # pin the worker budget
//! ```
//!
//! In both modes the binary *asserts* that the streaming, materialized
//! **and partitioned** outputs are identical to the scalar reference —
//! at every thread count on the threads axis — and the incremental
//! slider drag identical to a full recompute — before it times
//! anything; a regression that changes results fails the run regardless
//! of timing noise.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use visdb_bench::ramp_db;
use visdb_core::Session;
use visdb_distance::batch::{self, CompareKernel, NumericKernel};
use visdb_distance::frame::{DistanceFrame, FrameStats};
use visdb_distance::lanes::select;
use visdb_distance::DistanceResolver;
use visdb_exec::{CancelToken, Runtime};
use visdb_index::SortedProjection;
use visdb_obs::{Histogram, Registry};
use visdb_query::ast::{CompareOp, PredicateTarget};
use visdb_query::builder::QueryBuilder;
use visdb_query::connection::ConnectionRegistry;
use visdb_relevance::chunk;
use visdb_relevance::combine::{and_row, combine_and_slices};
use visdb_relevance::normalize::{apply_slice, fit_frame, fit_improved, NormParams};
use visdb_relevance::pipeline::{
    run_pipeline, run_pipeline_opts, run_pipeline_partitioned, run_pipeline_scalar, DisplayPolicy,
    Materialization, PipelineOptions, PipelineOutput,
};
use visdb_storage::{Database, TableBuilder};
use visdb_types::{Column, DataType, Value};

/// Partition count for the timed partitioned runs (smoke identity
/// checks additionally cover 1, 2, 7 and 16).
const BENCH_PARTITIONS: usize = 8;

/// Minimum timed repetitions per measurement; every reported number is
/// the **median** over at least this many reps (the de-flake floor).
const MIN_REPS: usize = 5;

/// Worker budgets for the threads axis: the partitioned and streaming
/// paths re-timed under each explicit budget.
const THREAD_SERIES: [usize; 4] = [1, 2, 4, 8];

/// One point on the threads axis.
struct ThreadPoint {
    threads: usize,
    partitioned_rows_per_sec: f64,
    streaming_rows_per_sec: f64,
}

struct SizeResult {
    n: usize,
    scalar_rows_per_sec: f64,
    vectorized_rows_per_sec: f64,
    partitioned_rows_per_sec: f64,
    scoped_rows_per_sec: f64,
    speedup: f64,
    /// Partitioned vs unpartitioned vectorized (≈ 1.0 expected on one
    /// box: same work, different scheduling).
    partitioned_vs_vectorized: f64,
    /// Shared-pool fan-out vs per-walk scoped spawns (> 1.0 means the
    /// persistent pool wins).
    pooled_vs_scoped: f64,
    full_sort_ms: f64,
    topk_ms: f64,
    topk_k: usize,
    /// Per-phase breakdown of one vectorized run (milliseconds).
    phase_distance_ms: f64,
    phase_fit_ms: f64,
    phase_normalize_combine_ms: f64,
    phase_rank_ms: f64,
    /// Representation A/B on the same single-threaded workload:
    /// `Vec<Option<f64>>` three-pass baseline vs packed `DistanceFrame`
    /// fused pass, in rows/sec.
    option_repr_rows_per_sec: f64,
    packed_repr_rows_per_sec: f64,
    packed_vs_option: f64,
    /// Slider drag: sorted-projection incremental path vs full pipeline
    /// recompute for a contained bound modification.
    drag_incremental_us: f64,
    drag_full_us: f64,
    drag_speedup: f64,
    /// Delta-generation maintenance A/B at the server-op level: append
    /// a 1% delta to a live `Service` (`append_rows`: O(Δ) delta eval,
    /// window extension, projection merge, band repair) then serve a
    /// summary + drag through the surviving caches — vs reloading from
    /// scratch (row-by-row `Database` rebuild, re-register, cold
    /// summary + drag). Both arms end in the identical served state
    /// (asserted before timing).
    append_ms: f64,
    reload_ms: f64,
    append_vs_reload: f64,
    /// Sorted-projection delta merge (`extended`: delta sort + linear
    /// merge, O(n + Δ log Δ)) vs full rebuild (`build`: O(n log n)
    /// sort) at n + Δ, outputs asserted identical first.
    proj_merge_ms: f64,
    proj_build_ms: f64,
    append_projection_merge: f64,
    /// Streaming vs materialized A/B on the 2-predicate workload: the
    /// same query, same outputs (asserted bit-identical first), only the
    /// execution mode differs — materialized builds `#sp + 1` full-size
    /// frame intermediates, streaming recomputes distances in two fused
    /// chunk walks and assembles windows lazily at the displayed rows.
    materialized2_rows_per_sec: f64,
    streaming2_rows_per_sec: f64,
    streaming_vs_materialized: f64,
    /// Per-phase breakdown of one streaming run on the 2-predicate
    /// workload (milliseconds; distance = the stats recompute walks,
    /// normalize_combine = the fused combine pass + final
    /// normalization, rank includes the late window assembly).
    streaming_phase_distance_ms: f64,
    streaming_phase_fit_ms: f64,
    streaming_phase_normalize_combine_ms: f64,
    streaming_phase_rank_ms: f64,
    /// String-predicate A/B on a dictionary-friendly `Str` column
    /// (~100 distinct values, NULLs sprinkled in): the scalar reference
    /// clones a `Value` per row; the vectorized path evaluates the
    /// distance once per *distinct* value and gathers per row through
    /// the dictionary codes. Scalar, materialized and Auto-streaming
    /// outputs are asserted identical before timing.
    string_scalar_rows_per_sec: f64,
    string_vectorized_rows_per_sec: f64,
    string_gather_speedup: f64,
    /// Observability overhead A/B: the same materialized run with
    /// tracing off (the plain-session default) vs tracing on **plus**
    /// the per-query registry recording a service performs (four phase
    /// histograms, an op counter, an op-latency histogram). The ratio
    /// is instrumented/baseline throughput; ~1.0 means telemetry is
    /// free at query granularity.
    obs_baseline_rows_per_sec: f64,
    obs_instrumented_rows_per_sec: f64,
    obs_overhead: f64,
    /// Cancellation-poll overhead A/B: the same materialized run
    /// without a cancel token (the plain-submission fast path — each
    /// 16k-row chunk checkpoint is one armed-fault load and a `None`
    /// branch, i.e. the pre-deadline pipeline) vs the identical run
    /// threading a live far-future-deadline token through
    /// `PipelineOptions::cancel`, so every checkpoint pays the full
    /// poll: atomic state load plus monotonic-clock deadline
    /// comparison. Outputs asserted bit-identical first. The ratio is
    /// polling/baseline throughput; ~1.0 means deadline enforcement is
    /// free until it actually fires.
    cancel_baseline_rows_per_sec: f64,
    cancel_polling_rows_per_sec: f64,
    cancel_overhead: f64,
    /// Branchless-vs-branchy A/B on the isolated normalize+combine
    /// phase: the phase as it ran before the lane kernels (per-row
    /// `if defined` walks filling full-size per-child normalized
    /// frames, per-row `and_row` combine, full-pass re-fit + branchy
    /// re-apply) vs the kernel path (chunked `apply_slice` +
    /// `combine_and_slices` + select fold + one finalize pass), on
    /// identical packed inputs (asserted bit-identical first).
    /// Single-threaded by construction, so the ratio isolates the
    /// branch-elimination + chunk-fusion win, not scheduling.
    branchy_nc_rows_per_sec: f64,
    branchless_nc_rows_per_sec: f64,
    branchless_vs_branchy: f64,
    /// Minimum repetition count across this size's timed measurements —
    /// every reported number is a median over at least this many reps.
    reps: usize,
    /// The partitioned and streaming paths re-timed under each explicit
    /// worker budget in [`THREAD_SERIES`].
    threads: Vec<ThreadPoint>,
}

/// Per-phase wall times of one traced run, in milliseconds, in
/// distance / fit / normalize+combine / rank order (the trace replaces
/// the old `timings: Option<&mut _>` out-parameter the pipeline used to
/// take).
fn phase_sample_ms(out: &PipelineOutput) -> [f64; 4] {
    let t = out.trace.as_deref().expect("trace requested but absent");
    [
        t.phases.distance,
        t.phases.fit,
        t.phases.normalize_combine,
        t.phases.rank,
    ]
    .map(|d| d.as_secs_f64() * 1e3)
}

/// The pre-packed intermediate representation, reconstructed locally as
/// the A/B baseline: three passes over 16-byte `Option<f64>` elements
/// (distance fill, fit re-collect + selection, normalize + combine +
/// exact count) — exactly the pass structure the pipeline had before
/// packed frames. Returns a checksum so the optimizer keeps it honest.
fn option_repr_pipeline(xs: &[f64], t: f64, budget: usize) -> (usize, f64) {
    let n = xs.len();
    let kernel = NumericKernel::Compare(CompareKernel::Greater, Some(t));
    let mut dist: Vec<Option<f64>> = vec![None; n];
    batch::run(xs, None, kernel, &mut dist);
    let params = fit_improved(&dist, 1.0, budget);
    let mut exact = 0usize;
    let mut sum = 0.0f64;
    let mut combined: Vec<Option<f64>> = vec![None; n];
    for (o, d) in combined.iter_mut().zip(&dist) {
        if let Some(d) = d {
            if *d == 0.0 {
                exact += 1;
            }
            let v = params.apply(d.abs());
            sum += v;
            *o = Some(v);
        }
    }
    (exact, sum)
}

/// The packed equivalent: one fused distance+stats pass writing 8-byte
/// values plus a byte mask, a stats-served (or 8-byte-selection) fit,
/// and one fused normalize walk over the packed buffers.
fn packed_repr_pipeline(xs: &[f64], t: f64, budget: usize) -> (usize, f64) {
    let n = xs.len();
    let kernel = NumericKernel::Compare(CompareKernel::Greater, Some(t));
    let mut frame = DistanceFrame::undefined(n);
    let stats = {
        let (vals, mask) = frame.parts_mut();
        batch::run_frame(xs, None, kernel, vals, mask)
    };
    let params = fit_frame(&frame, &stats, 1.0, budget);
    let mut exact = 0usize;
    let mut sum = 0.0f64;
    let mut out = DistanceFrame::undefined(n);
    {
        let (ovals, omask) = out.parts_mut();
        for (((ov, om), &d), &ok) in ovals
            .iter_mut()
            .zip(omask.iter_mut())
            .zip(frame.values())
            .zip(frame.validity().as_slice())
        {
            if ok {
                if d == 0.0 {
                    exact += 1;
                }
                let v = params.apply(d.abs());
                sum += v;
                *ov = v;
                *om = true;
            }
        }
    }
    (exact, sum)
}

/// Checksum of one normalize+combine phase walk: exact-match count,
/// any-nonzero flag, and the bits of the pre-finalize max-|combined| —
/// the three accumulators the pipeline's root fold carries.
type NcChecksum = (usize, bool, u64);

/// The final normalization range the phase re-fits over the combined
/// distances (the local mirror of the pipeline's `params_from_max`:
/// anchored at zero, degenerate when no finite max exists).
fn final_norm_params(max_abs: f64) -> NormParams {
    if max_abs.is_finite() {
        NormParams {
            dmin: 0.0,
            dmax: max_abs,
        }
    } else {
        NormParams {
            dmin: 0.0,
            dmax: 0.0,
        }
    }
}

/// The **branchy** arm of the normalize+combine A/B, reconstructed
/// locally as the baseline: the phase exactly as the materialized
/// pipeline ran it before the lane kernels — per-child full-size
/// normalized frames filled by a per-row `if defined` walk, a per-row
/// [`and_row`] combine over `Option` rows rebuilt from those frames,
/// then a full-pass final fit and a branchy re-apply over the `Option`
/// vector.
fn branchy_normalize_combine(
    children: &[(&[f64], &[bool])],
    params: &[NormParams],
    weights: &[f64],
    normed: &mut [(Vec<f64>, Vec<bool>)],
    out: &mut [Option<f64>],
) -> NcChecksum {
    let n = out.len();
    for ((vals, mask), ((nv, nm), p)) in children.iter().zip(normed.iter_mut().zip(params)) {
        for i in 0..n {
            if mask[i] {
                nv[i] = p.apply(vals[i].abs());
                nm[i] = true;
            } else {
                nv[i] = 0.0;
                nm[i] = false;
            }
        }
    }
    let mut row: Vec<Option<f64>> = vec![None; children.len()];
    for (i, o) in out.iter_mut().enumerate() {
        for (r, (nv, nm)) in row.iter_mut().zip(normed.iter()) {
            *r = if nm[i] { Some(nv[i]) } else { None };
        }
        *o = and_row(&row, weights);
    }
    let mut num_exact = 0usize;
    let mut any_nonzero = false;
    let mut max_abs = f64::NEG_INFINITY;
    for x in out.iter().flatten() {
        if *x == 0.0 {
            num_exact += 1;
        } else {
            any_nonzero = true;
        }
        let a = x.abs();
        if a.is_finite() && a > max_abs {
            max_abs = a;
        }
    }
    let fp = final_norm_params(max_abs);
    for c in out.iter_mut() {
        if let Some(d) = *c {
            *c = Some(if any_nonzero { fp.apply(d.abs()) } else { d });
        }
    }
    (num_exact, any_nonzero, max_abs.to_bits())
}

/// The **branchless** arm: the phase as the kernel pipeline runs it
/// now — per cache-resident block, [`apply_slice`] into packed
/// per-child scratch (validity words drive the all-valid fast path and
/// per-lane selects replace per-row branches), [`combine_and_slices`]
/// over the views, the select-based accumulator fold, and then the
/// single finalize pass. Scratch is caller-owned and chunk-sized (it
/// stays cache-resident across blocks, exactly as the pipeline's arena
/// scratch does), so the timed loop measures the walk, not allocation.
#[allow(clippy::too_many_arguments)]
fn branchless_normalize_combine(
    children: &[(&[f64], &[bool])],
    params: &[NormParams],
    weights: &[f64],
    norm: &mut [(Vec<f64>, Vec<bool>)],
    comb_vals: &mut [f64],
    comb_mask: &mut [bool],
    out: &mut [Option<f64>],
) -> NcChecksum {
    let n = out.len();
    let chunk_rows = comb_vals.len();
    let mut num_exact = 0usize;
    let mut any_nonzero = false;
    let mut max_abs = f64::NEG_INFINITY;
    let mut offset = 0usize;
    while offset < n {
        let len = chunk_rows.min(n - offset);
        for ((vals, mask), ((nv, nm), &p)) in children.iter().zip(norm.iter_mut().zip(params)) {
            apply_slice(
                p,
                &vals[offset..offset + len],
                &mask[offset..offset + len],
                &mut nv[..len],
                &mut nm[..len],
            );
        }
        let views: Vec<(&[f64], &[bool])> =
            norm.iter().map(|(v, m)| (&v[..len], &m[..len])).collect();
        combine_and_slices(
            &views,
            weights,
            &mut comb_vals[..len],
            &mut comb_mask[..len],
        );
        for (o, (&x, &ok)) in out[offset..offset + len]
            .iter_mut()
            .zip(comb_vals[..len].iter().zip(comb_mask[..len].iter()))
        {
            *o = ok.then_some(x);
            num_exact += (ok && x == 0.0) as usize;
            any_nonzero |= ok && x != 0.0;
            let a = x.abs();
            max_abs = max_abs.max(select(ok && a.is_finite(), a, f64::NEG_INFINITY));
        }
        offset += len;
    }
    let fp = final_norm_params(max_abs);
    for c in out.iter_mut() {
        if let Some(d) = *c {
            *c = Some(if any_nonzero { fp.apply(d.abs()) } else { d });
        }
    }
    (num_exact, any_nonzero, max_abs.to_bits())
}

/// Slider-drag micro-bench: a warm session alternates between two
/// contained bound modifications, once through the sorted-projection
/// incremental path ([`Session::drag_slider`]) and once through a full
/// eager recompute ([`Session::set_predicate_target`]). Asserts the two
/// paths agree before timing.
fn bench_slider(db: &Arc<Database>, n: usize, min_reps: usize) -> (Timed, Timed) {
    // contained tightenings within the exact region (k <= num_exact):
    // the common interactive case, and one the fast path serves in
    // O(log n + k) regardless of normalization plateaus
    let targets = [n as f64 * 0.97, n as f64 * 0.975];
    let target = |t: f64| PredicateTarget::Compare {
        op: CompareOp::Ge,
        value: Value::Float(t),
    };
    let make = || {
        let mut s = Session::new(Arc::clone(db), ConnectionRegistry::new());
        s.set_display_policy(DisplayPolicy::Percentage(1.0))
            .expect("policy");
        s.set_query(
            QueryBuilder::from_tables(["T"])
                .cmp("x", CompareOp::Ge, n as f64 * 0.9)
                .build(),
        )
        .expect("query");
        s
    };
    // correctness first: the incremental drag must equal a full recompute
    let mut inc = make();
    for &t in &targets {
        let drag = inc.drag_slider(0, target(t)).expect("drag");
        assert!(drag.incremental, "fast path must engage at n={n}");
        let mut full = make();
        full.set_predicate_target(0, target(t)).expect("set");
        let res = full.result().expect("result");
        assert_eq!(drag.displayed, res.pipeline.displayed, "drag diverges");
        assert_eq!(drag.num_exact, res.pipeline.num_exact);
    }
    // timed: alternate contained drags (projection + cache stay warm)
    let mut flip = 0usize;
    let inc_t = time_median(min_reps, || {
        flip += 1;
        inc.drag_slider(0, target(targets[flip % 2])).expect("drag")
    });
    let mut full = make();
    let mut flip = 0usize;
    let full_t = time_median(min_reps, || {
        flip += 1;
        full.set_predicate_target(0, target(targets[flip % 2]))
            .expect("set");
    });
    (inc_t, full_t)
}

/// Delta-generation append vs reload-from-scratch, measured at the
/// server-op level with a 1% delta. Each rep runs against a freshly
/// warmed service (query installed, windows cached, shared projection
/// built, band warm) so the timed section isolates the maintenance
/// cost, not setup. FitScreen display keeps the per-window budget
/// n-independent, so the extended windows are *served* after the
/// append, not merely stored. The appended rows are exact answers
/// (distance 0), which cannot displace the §5.2 k-th smallest |d| —
/// the extend-don't-recompute happy path this A/B exists to price.
fn bench_append(db: &Arc<Database>, n: usize, min_reps: usize) -> (Timed, Timed) {
    use visdb_service::{Request, Response, Service, ServiceConfig};
    let delta = (n / 100).max(1);
    // budget (128) stays below the exact-answer count (>= 1500) at
    // every bench size, so the §5.2 k-th smallest |d| is 0; the delta
    // rows sit far *below* the bound (large distances), which provably
    // cannot displace a k-th smallest of 0 — the fit cannot shift and
    // the windows must extend rather than recompute. FitScreen keeps
    // the budget n-independent so the extended windows are also *hit*,
    // and the exact band stays small enough for the sorted-projection
    // drag fast path to survive the append.
    let policy = DisplayPolicy::FitScreen {
        pixels: 128,
        pixels_per_item: 1,
    };
    let bound = n as f64 - 2000.0;
    let query = format!("SELECT * FROM T WHERE x >= {bound}");
    let final_bound = n as f64 - 1500.0;
    let delta_rows: Vec<Vec<Value>> = (0..delta)
        .map(|i| vec![Value::Float(-((i + 1) as f64))])
        .collect();

    let warm = |service: &Service| {
        let id = service.create_session("ramp").expect("session");
        for req in [
            Request::SetDisplayPolicy(policy.clone()),
            Request::SetQueryText(query.clone()),
            Request::Summary { trace: false },
            Request::DragSlider {
                window: 0,
                op: CompareOp::Ge,
                value: bound,
                trace: false,
            },
        ] {
            service.submit(id, req).expect("warmup request");
        }
        id
    };
    // the reload arm re-registers into one long-lived service so
    // neither timed section includes worker-thread spawning
    let reload = |service: &Service| -> visdb_service::Response {
        let mut t = TableBuilder::new("T", vec![Column::new("x", DataType::Float)]);
        for i in 0..n {
            t = t.row(vec![Value::Float(i as f64)]).expect("ramp row");
        }
        for row in &delta_rows {
            t = t.row(row.clone()).expect("delta row");
        }
        let mut full = Database::new("bench");
        full.add_table(t.build());
        service.register_dataset("ramp", Arc::new(full), ConnectionRegistry::new());
        let id = warm(service);
        service
            .submit(
                id,
                Request::DragSlider {
                    window: 0,
                    op: CompareOp::Ge,
                    value: final_bound,
                    trace: false,
                },
            )
            .expect("reload drag")
    };

    // correctness first: the appended service must serve the identical
    // answer — and its post-append drag must stay on the fast path
    let appended = Service::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    appended.register_dataset("ramp", Arc::clone(db), ConnectionRegistry::new());
    let id = warm(&appended);
    let out = appended
        .append_rows("ramp", None, delta_rows.clone())
        .expect("append");
    assert_eq!(out.rows_appended, delta, "append lands the delta at n={n}");
    assert!(
        out.windows_extended >= 1,
        "append must extend the cached window at n={n}, not recompute it"
    );
    assert_eq!(out.bands_repaired, 1, "live band must be repaired at n={n}");
    let drag = appended
        .submit(
            id,
            Request::DragSlider {
                window: 0,
                op: CompareOp::Ge,
                value: final_bound,
                trace: false,
            },
        )
        .expect("appended drag");
    assert!(
        matches!(
            drag,
            Response::Drag {
                incremental: true,
                ..
            }
        ),
        "post-append drag must stay incremental at n={n}"
    );
    let summary = appended
        .submit(id, Request::Summary { trace: false })
        .expect("appended summary");
    let reloader = Service::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let reload_drag = reload(&reloader);
    assert_eq!(drag, reload_drag, "append vs reload drag diverges at n={n}");
    let reload_id = warm(&reloader);
    reloader
        .submit(
            reload_id,
            Request::DragSlider {
                window: 0,
                op: CompareOp::Ge,
                value: final_bound,
                trace: false,
            },
        )
        .expect("reload drag (identity)");
    let reload_summary = reloader
        .submit(reload_id, Request::Summary { trace: false })
        .expect("reload summary");
    assert_eq!(
        summary, reload_summary,
        "append vs reload summary diverges at n={n}"
    );

    // timed: both arms restore the same warm serving state (windows
    // cached, shared projection current, session band usable). The
    // append arm does it in one maintenance op — window extension,
    // projection merge, band repair ride inside `append_rows`; the
    // reload arm rebuilds the database and re-warms from cold. The
    // post-append pipeline recompute is identical in both arms (the
    // data changed) and is excluded from both.
    // steady-state appends: one warmed service receiving successive
    // deltas (the dynamic-data arrival pattern), first append untimed
    // so the measurement sees a warm allocator, like any long-running
    // server would. Rep count stays below the compaction threshold so
    // every timed rep takes the extend-and-merge path.
    let reps = min_reps.max(MIN_REPS);
    // the allocator reaches its append steady state after a few rounds
    // of the path's large transient buffers; run those rounds on the
    // identity-phase service (process-global warmth, and that service's
    // chain has room below the compaction threshold)
    for _ in 0..2 {
        appended
            .append_rows("ramp", None, delta_rows.clone())
            .expect("allocator warmup append");
    }
    let mut append_samples = Vec::with_capacity(reps);
    {
        let service = Service::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        });
        service.register_dataset("ramp", Arc::clone(db), ConnectionRegistry::new());
        warm(&service);
        service
            .append_rows("ramp", None, delta_rows.clone())
            .expect("warmup append");
        for _ in 0..reps {
            let rows = delta_rows.clone();
            let t0 = Instant::now();
            let out = service.append_rows("ramp", None, rows).expect("append");
            append_samples.push(t0.elapsed().as_secs_f64());
            assert!(!out.compacted, "reps must stay below the threshold");
            assert!(
                out.windows_extended >= 1,
                "steady-state appends must keep extending at n={n}"
            );
        }
    }
    let mut reload_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(reload(&reloader));
        reload_samples.push(t0.elapsed().as_secs_f64());
    }
    (
        Timed {
            per_call_s: median(&mut append_samples),
            reps,
        },
        Timed {
            per_call_s: median(&mut reload_samples),
            reps,
        },
    )
}

/// Sorted-projection delta merge vs full rebuild: `extended` sorts only
/// the Δ appended rows and linear-merges them into the existing
/// permutation; `build` re-sorts all n + Δ rows. Same accessor, same
/// validity holes, outputs asserted identical before timing.
fn bench_projection_merge(n: usize, min_reps: usize) -> (Timed, Timed) {
    let delta = (n / 100).max(1);
    let n2 = n + delta;
    // deterministic scramble with NULL holes (no `rand` in the timed path)
    let get = |i: usize| {
        if i.is_multiple_of(97) {
            None
        } else {
            Some((i.wrapping_mul(2654435761) % 1_000_003) as f64)
        }
    };
    let base = SortedProjection::build(n, get);
    let merged = base.extended(n2, get);
    let rebuilt = SortedProjection::build(n2, get);
    assert_eq!(merged.rows(), rebuilt.rows(), "rows diverge at n={n}");
    assert_eq!(
        merged.defined(),
        rebuilt.defined(),
        "defined counts diverge at n={n}"
    );
    for j in 0..merged.defined() {
        assert_eq!(
            (merged.value_at(j), merged.row_at(j)),
            (rebuilt.value_at(j), rebuilt.row_at(j)),
            "merged projection diverges from rebuild at n={n}, slot {j}"
        );
    }
    let merge_t = time_median(min_reps, || base.extended(n2, get));
    let build_t = time_median(min_reps, || SortedProjection::build(n2, get));
    (merge_t, build_t)
}

/// One de-flaked measurement: the median seconds-per-call over `reps`
/// individually timed repetitions.
struct Timed {
    per_call_s: f64,
    reps: usize,
}

/// Median of individually timed samples (mean of the middle two for an
/// even count). Sorts `samples` in place.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        0.5 * (samples[mid - 1] + samples[mid])
    }
}

/// Time `f` until at least `min_reps.max(MIN_REPS)` individually timed
/// repetitions have run *and* ~0.5 s (or 50 reps) have accumulated;
/// returns the **median** seconds per call plus the rep count. The
/// median — unlike the old elapsed/reps mean — is insensitive to a
/// single descheduling stall on a contended box, which is what made the
/// committed ratios flap.
fn time_median<T>(min_reps: usize, mut f: impl FnMut() -> T) -> Timed {
    let min_reps = min_reps.max(MIN_REPS);
    let start = Instant::now();
    let mut samples: Vec<f64> = Vec::new();
    loop {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
        if samples.len() >= min_reps
            && (start.elapsed().as_secs_f64() >= 0.5 || samples.len() >= 50)
        {
            break;
        }
    }
    let reps = samples.len();
    Timed {
        per_call_s: median(&mut samples),
        reps,
    }
}

/// Record a measurement's rep count and unwrap its median.
fn note(rep_counts: &mut Vec<usize>, t: Timed) -> f64 {
    rep_counts.push(t.reps);
    t.per_call_s
}

fn assert_identical(fast: &PipelineOutput, slow: &PipelineOutput, n: usize) {
    assert_eq!(fast.combined, slow.combined, "combined diverges at n={n}");
    assert_eq!(
        fast.num_exact, slow.num_exact,
        "num_exact diverges at n={n}"
    );
    assert_eq!(
        fast.displayed, slow.displayed,
        "displayed diverges at n={n}"
    );
    assert_eq!(
        fast.order[..fast.sorted_len],
        slow.order[..fast.sorted_len],
        "sorted order prefix diverges at n={n}"
    );
    assert!(
        fast.sorted_len < fast.order.len(),
        "top-k selection must engage when the display count < n (n={n})"
    );
    for (f, s) in fast.windows.iter().zip(&slow.windows) {
        assert_eq!(f.norm_params, s.norm_params, "norm params diverge at n={n}");
        assert_eq!(
            f.zero_raw_count(),
            s.zero_raw_count(),
            "window exact counts diverge at n={n}"
        );
        for &i in &fast.displayed {
            assert_eq!(f.raw_at(i), s.raw_at(i), "window raw diverges at n={n}");
            assert_eq!(
                f.normalized_at(i),
                s.normalized_at(i),
                "window norm diverges at n={n}"
            );
        }
    }
}

/// Deterministic pseudo-random combined-distance vector for the sort
/// micro-benchmark (xorshift; no `rand` in the timed path).
fn synthetic_combined(n: usize, seed: u64) -> Vec<Option<f64>> {
    let mut state = seed.max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Some((state >> 11) as f64 / (1u64 << 53) as f64 * 255.0)
        })
        .collect()
}

fn rank_cmp(combined: &[Option<f64>], a: usize, b: usize) -> std::cmp::Ordering {
    combined[a]
        .partial_cmp(&combined[b])
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.cmp(&b))
}

/// A single `Str`-column table for the string-predicate series: ~100
/// distinct city names cycling through `n` rows (dictionary-friendly,
/// like ordinal/category attributes), with every 97th row NULL.
fn string_db(n: usize) -> Database {
    let mut t = TableBuilder::new("S", vec![Column::new("name", DataType::Str)]);
    for i in 0..n {
        let v = if i % 97 == 0 {
            Value::Null
        } else {
            Value::Str(format!("city-{:03}", i % 100))
        };
        t = t.row(vec![v]).expect("conforming row");
    }
    let mut db = Database::new("bench-str");
    db.add_table(t.build());
    db
}

fn bench_size(n: usize) -> SizeResult {
    // the acceptance workload: one numeric predicate over a float ramp,
    // displaying 1% (so top-k selection replaces the full sort)
    let db: Arc<Database> = Arc::new(ramp_db(n));
    let table = db.table("T").expect("ramp table");
    let resolver = DistanceResolver::new();
    let q = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .build();
    let cond = q.condition.as_ref();
    let policy = DisplayPolicy::Percentage(1.0);

    let run_materialized =
        |cond: Option<&visdb_query::ast::Weighted>, trace: bool| -> PipelineOutput {
            run_pipeline_opts(
                &db,
                table,
                &resolver,
                cond,
                &policy,
                PipelineOptions {
                    materialization: Materialization::Materialized,
                    trace,
                    ..Default::default()
                },
            )
            .expect("materialized vectorized")
        };
    // `run_pipeline` without caches = the Auto planner streaming
    let stream = run_pipeline(&db, table, &resolver, cond, &policy).expect("streaming");
    let mat = run_materialized(cond, false);
    let slow = run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar");
    assert_identical(&stream, &slow, n);
    assert_identical(&mat, &slow, n);
    // partitioned execution must be bit-identical at every partition
    // count, including counts that leave partitions empty — and both
    // with (default) streaming and materialized execution
    for parts in [1usize, 2, 7, BENCH_PARTITIONS, 16] {
        let part =
            run_pipeline_partitioned(&db, table, &resolver, cond, &policy, parts).expect("parts");
        assert_identical(&part, &slow, n);
    }
    {
        let partitioning = table.partitions(BENCH_PARTITIONS);
        let part = run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                partitions: Some(&partitioning),
                ..Default::default()
            },
        )
        .expect("materialized partitioned");
        assert_identical(&part, &slow, n);
    }

    let min_reps = MIN_REPS;
    let mut rep_counts: Vec<usize> = Vec::new();
    let scalar_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            run_pipeline_scalar(&db, table, &resolver, cond, &policy).expect("scalar")
        }),
    );
    // the vectorized/partitioned/scoped series stay on the materialized
    // path so they remain comparable with the committed history; the
    // streaming mode gets its own A/B below
    let vector_s = note(
        &mut rep_counts,
        time_median(min_reps, || run_materialized(cond, false)),
    );
    let partitioned_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            let partitioning = table.partitions(BENCH_PARTITIONS);
            run_pipeline_opts(
                &db,
                table,
                &resolver,
                cond,
                &policy,
                PipelineOptions {
                    materialization: Materialization::Materialized,
                    partitions: Some(&partitioning),
                    ..Default::default()
                },
            )
            .expect("partitioned")
        }),
    );
    // the same vectorized pipeline with fan-out forced back onto
    // per-walk scoped spawns — the pre-runtime baseline
    let scoped_s = note(
        &mut rep_counts,
        chunk::with_scoped_spawns(|| time_median(min_reps, || run_materialized(cond, false))),
    );

    // ---- streaming vs materialized A/B: the 2-predicate workload the
    // streaming mode targets (per-predicate frame traffic dominates) ---
    let q2 = QueryBuilder::from_tables(["T"])
        .cmp("x", CompareOp::Ge, n as f64 * 0.9)
        .cmp("x", CompareOp::Lt, n as f64 * 0.95)
        .build();
    let cond2 = q2.condition.as_ref();
    let run_streaming = |trace: bool| -> PipelineOutput {
        run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond2,
            &policy,
            PipelineOptions {
                materialization: Materialization::Streaming,
                trace,
                ..Default::default()
            },
        )
        .expect("streaming 2-predicate")
    };
    let slow2 = run_pipeline_scalar(&db, table, &resolver, cond2, &policy).expect("scalar 2-pred");
    let stream2 = run_streaming(false);
    assert_identical(&stream2, &slow2, n);
    assert!(
        stream2.windows.iter().all(|w| w.full_frames().is_none()),
        "the A/B streaming arm must actually stream at n={n}"
    );
    let materialized2_s = note(
        &mut rep_counts,
        time_median(min_reps, || run_materialized(cond2, false)),
    );
    let streaming2_s = note(
        &mut rep_counts,
        time_median(min_reps, || run_streaming(false)),
    );
    // streaming per-phase breakdown: per-phase medians over MIN_REPS
    // traced runs
    let mut streaming_phase_samples: [Vec<f64>; 4] = Default::default();
    for _ in 0..MIN_REPS {
        let out = run_streaming(true);
        for (acc, ms) in streaming_phase_samples
            .iter_mut()
            .zip(phase_sample_ms(&out))
        {
            acc.push(ms);
        }
        std::hint::black_box(out);
    }
    rep_counts.push(MIN_REPS);
    let [mut sp_d, mut sp_f, mut sp_nc, mut sp_r] = streaming_phase_samples;

    // ---- string-predicate A/B: the dictionary-gather path (distance
    // once per distinct value, gathered per row) vs the per-row
    // Value-cloning scalar reference, on an equality predicate over a
    // ~100-distinct-value Str column with NULLs ----------------------
    let sdb = string_db(n);
    let stable = sdb.table("S").expect("string table");
    let sq = QueryBuilder::from_tables(["S"])
        .cmp("name", CompareOp::Eq, "city-042")
        .build();
    let scond = sq.condition.as_ref();
    let s_slow =
        run_pipeline_scalar(&sdb, stable, &resolver, scond, &policy).expect("string scalar");
    // `run_pipeline` without caches = the Auto planner streaming, which
    // now covers string leaves via the gather kind
    let s_stream = run_pipeline(&sdb, stable, &resolver, scond, &policy).expect("string streaming");
    let s_mat = run_pipeline_opts(
        &sdb,
        stable,
        &resolver,
        scond,
        &policy,
        PipelineOptions {
            materialization: Materialization::Materialized,
            ..Default::default()
        },
    )
    .expect("string materialized");
    assert_identical(&s_stream, &s_slow, n);
    assert_identical(&s_mat, &s_slow, n);
    let string_scalar_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            run_pipeline_scalar(&sdb, stable, &resolver, scond, &policy).expect("string scalar")
        }),
    );
    let string_vector_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            run_pipeline(&sdb, stable, &resolver, scond, &policy).expect("string vectorized")
        }),
    );

    // top-k vs full sort on the same synthetic ranking problem
    let combined = synthetic_combined(n, 0x5eed ^ n as u64);
    let k = (n / 100).max(1);
    let full_sort_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &b| rank_cmp(&combined, a, b));
            idx
        }),
    );
    let topk_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.select_nth_unstable_by(k - 1, |&a, &b| rank_cmp(&combined, a, b));
            idx[..k].sort_unstable_by(|&a, &b| rank_cmp(&combined, a, b));
            idx
        }),
    );

    // per-phase breakdown of the vectorized run: per-phase medians over
    // MIN_REPS traced runs, read off the first-class `PipelineTrace`
    let mut phase_samples: [Vec<f64>; 4] = Default::default();
    for _ in 0..MIN_REPS {
        let out = run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                trace: true,
                ..Default::default()
            },
        )
        .expect("timed vectorized");
        for (acc, ms) in phase_samples.iter_mut().zip(phase_sample_ms(&out)) {
            acc.push(ms);
        }
        std::hint::black_box(out);
    }
    rep_counts.push(MIN_REPS);
    let [mut p_d, mut p_f, mut p_nc, mut p_r] = phase_samples;

    // representation A/B: identical single-threaded workload, only the
    // intermediate representation differs
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let t = n as f64 * 0.9;
    let budget = (n / 100).max(1);
    assert_eq!(
        option_repr_pipeline(&xs, t, budget),
        packed_repr_pipeline(&xs, t, budget),
        "representation A/B must agree at n={n}"
    );
    let option_s = note(
        &mut rep_counts,
        time_median(min_reps, || option_repr_pipeline(&xs, t, budget)),
    );
    let packed_s = note(
        &mut rep_counts,
        time_median(min_reps, || packed_repr_pipeline(&xs, t, budget)),
    );

    // ---- branchless vs branchy: the fused normalize+combine phase in
    // isolation, on a 4-predicate packed workload (the paper's example
    // queries combine several selection predicates) over NULL-bearing
    // columns: each child gets ~12.5% pseudo-random undefined rows, the
    // §3.2 missing-data case. The random placement is the point — a
    // per-row `if defined` branch is data-dependent there and
    // mispredicts, while the kernel path classifies whole validity
    // words and runs per-lane selects, so its cost does not depend on
    // the mask pattern at all. Arm A is the phase exactly as the
    // materialized pipeline ran it before the lane kernels (full-size
    // branchy normalize frames, per-row combine, Option re-fit +
    // re-apply); arm B is the chunked kernel path the pipeline runs
    // now. Outputs are asserted bit-identical (checksums and per-row
    // bits) before the timed loops; both arms are sequential, so the
    // ratio isolates branch elimination + chunk fusion, not
    // scheduling.
    let nc_frames: Vec<DistanceFrame> = [
        NumericKernel::Compare(CompareKernel::Greater, Some(n as f64 * 0.9)),
        NumericKernel::Compare(CompareKernel::Less, Some(n as f64 * 0.95)),
        NumericKernel::Compare(CompareKernel::Greater, Some(n as f64 * 0.5)),
        NumericKernel::Compare(CompareKernel::Less, Some(n as f64 * 0.99)),
    ]
    .into_iter()
    .enumerate()
    .map(|(child, kernel)| {
        let mut frame = DistanceFrame::undefined(n);
        {
            let (vals, mask) = frame.parts_mut();
            batch::run_frame(&xs, None, kernel, vals, mask);
            // deterministic xorshift NULL holes (canonical 0.0 payload)
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (child as u64 + 1).wrapping_mul(0x5eed);
            for (v, m) in vals.iter_mut().zip(mask.iter_mut()) {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(8) {
                    *v = 0.0;
                    *m = false;
                }
            }
        }
        frame
    })
    .collect();
    let nc_children: Vec<(&[f64], &[bool])> = nc_frames
        .iter()
        .map(|f| (f.values(), f.validity().as_slice()))
        .collect();
    let nc_params: Vec<NormParams> = nc_frames
        .iter()
        .map(|f| {
            let stats = FrameStats::of_slice(f.values(), f.validity().as_slice());
            fit_frame(f, &stats, 1.0, budget)
        })
        .collect();
    let nc_weights = [0.4, 0.3, 0.2, 0.1];
    let mut nc_out_a: Vec<Option<f64>> = vec![None; n];
    let mut nc_out_b: Vec<Option<f64>> = vec![None; n];
    // arm A's full-size per-child normalized frames (what the old phase
    // materialized), preallocated so the timed loop measures its walks,
    // not allocator traffic — being generous to the baseline
    let mut nc_normed_full: Vec<(Vec<f64>, Vec<bool>)> = nc_children
        .iter()
        .map(|_| (vec![0.0; n], vec![false; n]))
        .collect();
    // L2-resident block size for the kernel arm: 4 children x 4096 rows
    // of packed (value, mask) scratch is ~150 KB, so the apply ->
    // combine -> fold chain re-reads scratch from cache instead of
    // round-tripping memory (the arena-backed pipeline walk gets the
    // same locality from its per-range scratch reuse)
    let nc_chunk = 4096.min(n);
    let mut nc_norm: Vec<(Vec<f64>, Vec<bool>)> = nc_children
        .iter()
        .map(|_| (vec![0.0; nc_chunk], vec![false; nc_chunk]))
        .collect();
    let mut nc_cv = vec![0.0f64; nc_chunk];
    let mut nc_cm = vec![false; nc_chunk];
    let acc_a = branchy_normalize_combine(
        &nc_children,
        &nc_params,
        &nc_weights,
        &mut nc_normed_full,
        &mut nc_out_a,
    );
    let acc_b = branchless_normalize_combine(
        &nc_children,
        &nc_params,
        &nc_weights,
        &mut nc_norm,
        &mut nc_cv,
        &mut nc_cm,
        &mut nc_out_b,
    );
    assert_eq!(acc_a, acc_b, "A/B accumulators must agree at n={n}");
    for (i, (a, b)) in nc_out_a.iter().zip(&nc_out_b).enumerate() {
        assert_eq!(
            a.map(f64::to_bits),
            b.map(f64::to_bits),
            "branchless A/B row {i} diverges at n={n}"
        );
    }
    let branchy_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            branchy_normalize_combine(
                &nc_children,
                &nc_params,
                &nc_weights,
                &mut nc_normed_full,
                &mut nc_out_a,
            )
        }),
    );
    let branchless_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            branchless_normalize_combine(
                &nc_children,
                &nc_params,
                &nc_weights,
                &mut nc_norm,
                &mut nc_cv,
                &mut nc_cm,
                &mut nc_out_b,
            )
        }),
    );

    // slider drag: incremental sorted-projection path vs full recompute
    let (drag_inc_t, drag_full_t) = bench_slider(&db, n, min_reps);
    let drag_inc_s = note(&mut rep_counts, drag_inc_t);
    let drag_full_s = note(&mut rep_counts, drag_full_t);

    // delta-generation append vs reload + projection merge vs rebuild
    let (append_t, reload_t) = bench_append(&db, n, min_reps);
    let append_s = note(&mut rep_counts, append_t);
    let reload_s = note(&mut rep_counts, reload_t);
    let (merge_t, build_t) = bench_projection_merge(n, min_reps);
    let merge_s = note(&mut rep_counts, merge_t);
    let build_s = note(&mut rep_counts, build_t);

    // ---- observability overhead A/B: arm A is the plain trace-off run
    // (what a non-traced session executes); arm B runs the identical
    // pipeline with tracing on and replays the registry recording the
    // service layer performs per fresh query — four per-phase histogram
    // records, the op counter, and the op-latency histogram. The ratio
    // gates the "telemetry is near-free" claim end to end.
    let obs_baseline_s = note(
        &mut rep_counts,
        time_median(min_reps, || run_materialized(cond, false)),
    );
    let registry = Registry::new();
    let obs_requests = registry.counter("service.requests.summary");
    let obs_latency = registry.histogram("service.latency_ns.summary");
    let obs_phase: Vec<Arc<Histogram>> = ["distance", "fit", "normalize_combine", "rank"]
        .iter()
        .map(|p| registry.histogram(&format!("pipeline.phase.{p}")))
        .collect();
    let obs_instrumented_s = note(
        &mut rep_counts,
        time_median(min_reps, || {
            let started = Instant::now();
            let out = run_materialized(cond, true);
            let t = out.trace.as_deref().expect("instrumented arm traces");
            obs_phase[0].record_duration(t.phases.distance);
            obs_phase[1].record_duration(t.phases.fit);
            obs_phase[2].record_duration(t.phases.normalize_combine);
            obs_phase[3].record_duration(t.phases.rank);
            obs_requests.inc();
            obs_latency.record_duration(started.elapsed());
            out
        }),
    );

    // ---- cancellation-poll overhead A/B: arm A is the tokenless run
    // (what a plain `submit` with no deadline executes — the chunk
    // checkpoints reduce to one armed-fault load and a `None` branch);
    // arm B hands the pipeline a live token whose deadline never
    // arrives, so every 16k-row chunk checkpoint performs the real
    // poll — atomic state load + `Instant::now()` deadline comparison
    // — and still completes. The ratio gates the "cancellation costs
    // nothing until it fires" claim at the tightest granularity the
    // walks poll at.
    let cancel_baseline_s = note(
        &mut rep_counts,
        time_median(min_reps, || run_materialized(cond, false)),
    );
    let far_token = CancelToken::with_deadline(Duration::from_secs(3600));
    let run_polling = || -> PipelineOutput {
        run_pipeline_opts(
            &db,
            table,
            &resolver,
            cond,
            &policy,
            PipelineOptions {
                materialization: Materialization::Materialized,
                cancel: Some(&far_token),
                ..Default::default()
            },
        )
        .expect("token-polling materialized")
    };
    assert_identical(&run_polling(), &slow, n);
    let cancel_polling_s = note(&mut rep_counts, time_median(min_reps, &run_polling));

    // ---- threads axis: the partitioned (1-predicate, materialized)
    // and streaming (2-predicate) paths re-timed under each explicit
    // worker budget, with identity vs the scalar reference re-asserted
    // per budget. On a single-core box the series documents scheduling
    // overhead staying flat; on a multi-core box it is the scaling
    // evidence for the per-shard branchless kernels.
    let thread_points: Vec<ThreadPoint> = THREAD_SERIES
        .iter()
        .map(|&workers| {
            let rt = Runtime::new(workers);
            rt.install(|| {
                let partitioning = table.partitions(BENCH_PARTITIONS);
                let run_part = || {
                    run_pipeline_opts(
                        &db,
                        table,
                        &resolver,
                        cond,
                        &policy,
                        PipelineOptions {
                            materialization: Materialization::Materialized,
                            partitions: Some(&partitioning),
                            ..Default::default()
                        },
                    )
                    .expect("threads-axis partitioned")
                };
                assert_identical(&run_part(), &slow, n);
                assert_identical(&run_streaming(false), &slow2, n);
                let part_s = note(&mut rep_counts, time_median(min_reps, &run_part));
                let stream_s = note(
                    &mut rep_counts,
                    time_median(min_reps, || run_streaming(false)),
                );
                ThreadPoint {
                    threads: workers,
                    partitioned_rows_per_sec: n as f64 / part_s,
                    streaming_rows_per_sec: n as f64 / stream_s,
                }
            })
        })
        .collect();

    let reps = rep_counts.iter().copied().min().expect("measurements ran");

    SizeResult {
        n,
        scalar_rows_per_sec: n as f64 / scalar_s,
        vectorized_rows_per_sec: n as f64 / vector_s,
        partitioned_rows_per_sec: n as f64 / partitioned_s,
        scoped_rows_per_sec: n as f64 / scoped_s,
        speedup: scalar_s / vector_s,
        partitioned_vs_vectorized: vector_s / partitioned_s,
        pooled_vs_scoped: scoped_s / vector_s,
        full_sort_ms: full_sort_s * 1e3,
        topk_ms: topk_s * 1e3,
        topk_k: k,
        phase_distance_ms: median(&mut p_d),
        phase_fit_ms: median(&mut p_f),
        phase_normalize_combine_ms: median(&mut p_nc),
        phase_rank_ms: median(&mut p_r),
        option_repr_rows_per_sec: n as f64 / option_s,
        packed_repr_rows_per_sec: n as f64 / packed_s,
        packed_vs_option: option_s / packed_s,
        drag_incremental_us: drag_inc_s * 1e6,
        drag_full_us: drag_full_s * 1e6,
        drag_speedup: drag_full_s / drag_inc_s,
        append_ms: append_s * 1e3,
        reload_ms: reload_s * 1e3,
        append_vs_reload: reload_s / append_s,
        proj_merge_ms: merge_s * 1e3,
        proj_build_ms: build_s * 1e3,
        append_projection_merge: build_s / merge_s,
        materialized2_rows_per_sec: n as f64 / materialized2_s,
        streaming2_rows_per_sec: n as f64 / streaming2_s,
        streaming_vs_materialized: materialized2_s / streaming2_s,
        streaming_phase_distance_ms: median(&mut sp_d),
        streaming_phase_fit_ms: median(&mut sp_f),
        streaming_phase_normalize_combine_ms: median(&mut sp_nc),
        streaming_phase_rank_ms: median(&mut sp_r),
        string_scalar_rows_per_sec: n as f64 / string_scalar_s,
        string_vectorized_rows_per_sec: n as f64 / string_vector_s,
        string_gather_speedup: string_scalar_s / string_vector_s,
        obs_baseline_rows_per_sec: n as f64 / obs_baseline_s,
        obs_instrumented_rows_per_sec: n as f64 / obs_instrumented_s,
        obs_overhead: obs_baseline_s / obs_instrumented_s,
        cancel_baseline_rows_per_sec: n as f64 / cancel_baseline_s,
        cancel_polling_rows_per_sec: n as f64 / cancel_polling_s,
        cancel_overhead: cancel_baseline_s / cancel_polling_s,
        branchy_nc_rows_per_sec: n as f64 / branchy_s,
        branchless_nc_rows_per_sec: n as f64 / branchless_s,
        branchless_vs_branchy: branchy_s / branchless_s,
        reps,
        threads: thread_points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `--threads N` pins the worker budget for the whole run (the CI
    // smoke matrix exercises 1 and 4); the threads axis still installs
    // its own nested budgets on top.
    let pinned_threads: Option<usize> = args.iter().position(|a| a == "--threads").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .expect("--threads needs a positive integer")
    });
    match pinned_threads {
        Some(t) => Runtime::new(t).install(|| run_bench(smoke, Some(t))),
        None => run_bench(smoke, None),
    }
}

fn run_bench(smoke: bool, pinned_threads: Option<usize>) {
    if let Some(t) = pinned_threads {
        println!("worker budget pinned to {t} thread(s)");
    }
    let sizes: &[usize] = if smoke {
        &[2_000, 40_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut results = Vec::new();
    for &n in sizes {
        let r = bench_size(n);
        println!(
            "n={:>9}: scalar {:>12.0} rows/s | vectorized {:>12.0} rows/s | \
             partitioned(x{BENCH_PARTITIONS}) {:>12.0} rows/s | scoped {:>12.0} rows/s | \
             speedup {:>5.2}x | pooled/scoped {:>5.2}x | sort {:>8.2} ms vs top-{} {:>7.3} ms",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_k,
            r.topk_ms,
        );
        println!(
            "            phases: distance {:.3} ms | fit {:.3} ms | norm+combine {:.3} ms | \
             rank {:.3} ms",
            r.phase_distance_ms, r.phase_fit_ms, r.phase_normalize_combine_ms, r.phase_rank_ms,
        );
        println!(
            "            packed-vs-Option: {:>12.0} vs {:>12.0} rows/s ({:.2}x) | \
             slider drag: {:>9.1} us incremental vs {:>9.1} us full ({:.1}x)",
            r.packed_repr_rows_per_sec,
            r.option_repr_rows_per_sec,
            r.packed_vs_option,
            r.drag_incremental_us,
            r.drag_full_us,
            r.drag_speedup,
        );
        println!(
            "            append-vs-reload (1% delta): {:>9.2} ms append vs {:>9.2} ms reload \
             ({:.1}x) | projection merge-vs-rebuild: {:>8.3} ms vs {:>8.3} ms ({:.2}x)",
            r.append_ms,
            r.reload_ms,
            r.append_vs_reload,
            r.proj_merge_ms,
            r.proj_build_ms,
            r.append_projection_merge,
        );
        println!(
            "            streaming-vs-materialized (2-pred): {:>12.0} vs {:>12.0} rows/s ({:.2}x) | \
             streaming phases: distance {:.3} ms | fit {:.3} ms | norm+combine {:.3} ms | rank {:.3} ms",
            r.streaming2_rows_per_sec,
            r.materialized2_rows_per_sec,
            r.streaming_vs_materialized,
            r.streaming_phase_distance_ms,
            r.streaming_phase_fit_ms,
            r.streaming_phase_normalize_combine_ms,
            r.streaming_phase_rank_ms,
        );
        println!(
            "            string gather-vs-scalar: {:>12.0} vs {:>12.0} rows/s ({:.2}x)",
            r.string_vectorized_rows_per_sec, r.string_scalar_rows_per_sec, r.string_gather_speedup,
        );
        println!(
            "            obs overhead: {:>12.0} rows/s baseline vs {:>12.0} rows/s \
             traced+recorded ({:.3}x)",
            r.obs_baseline_rows_per_sec, r.obs_instrumented_rows_per_sec, r.obs_overhead,
        );
        println!(
            "            cancel overhead: {:>12.0} rows/s tokenless vs {:>12.0} rows/s \
             token-polling ({:.3}x)",
            r.cancel_baseline_rows_per_sec, r.cancel_polling_rows_per_sec, r.cancel_overhead,
        );
        println!(
            "            branchless-vs-branchy norm+combine: {:>12.0} vs {:>12.0} rows/s \
             ({:.2}x) | median of >= {} reps",
            r.branchless_nc_rows_per_sec,
            r.branchy_nc_rows_per_sec,
            r.branchless_vs_branchy,
            r.reps,
        );
        for p in &r.threads {
            println!(
                "            threads={}: partitioned {:>12.0} rows/s | streaming {:>12.0} rows/s",
                p.threads, p.partitioned_rows_per_sec, p.streaming_rows_per_sec,
            );
        }
        results.push(r);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"pipeline\",");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(
        json,
        "  \"workload\": \"x >= 0.9n numeric predicate over a float ramp, Percentage(1) display\","
    );
    let _ = writeln!(json, "  \"bench_partitions\": {BENCH_PARTITIONS},");
    let _ = writeln!(json, "  \"min_reps\": {MIN_REPS},");
    let _ = writeln!(
        json,
        "  \"thread_series\": [{}],",
        THREAD_SERIES.map(|t| t.to_string()).join(", ")
    );
    let _ = writeln!(
        json,
        "  \"pinned_threads\": {},",
        pinned_threads.map_or("null".to_string(), |t| t.to_string())
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"scalar_rows_per_sec\": {:.0}, \"vectorized_rows_per_sec\": {:.0}, \
             \"partitioned_rows_per_sec\": {:.0}, \"scoped_rows_per_sec\": {:.0}, \
             \"speedup\": {:.3}, \"partitioned_vs_vectorized\": {:.3}, \
             \"pooled_vs_scoped\": {:.3}, \
             \"full_sort_ms\": {:.3}, \"topk_ms\": {:.3}, \"topk_k\": {},",
            r.n,
            r.scalar_rows_per_sec,
            r.vectorized_rows_per_sec,
            r.partitioned_rows_per_sec,
            r.scoped_rows_per_sec,
            r.speedup,
            r.partitioned_vs_vectorized,
            r.pooled_vs_scoped,
            r.full_sort_ms,
            r.topk_ms,
            r.topk_k,
        );
        let _ = writeln!(
            json,
            "     \"phase_ms\": {{\"distance\": {:.3}, \"fit\": {:.3}, \
             \"normalize_combine\": {:.3}, \"rank\": {:.3}}},",
            r.phase_distance_ms, r.phase_fit_ms, r.phase_normalize_combine_ms, r.phase_rank_ms,
        );
        let _ = writeln!(
            json,
            "     \"option_repr_rows_per_sec\": {:.0}, \"packed_repr_rows_per_sec\": {:.0}, \
             \"packed_vs_option\": {:.3},",
            r.option_repr_rows_per_sec, r.packed_repr_rows_per_sec, r.packed_vs_option,
        );
        let _ = writeln!(
            json,
            "     \"drag_incremental_us\": {:.1}, \"drag_full_us\": {:.1}, \
             \"drag_speedup\": {:.2},",
            r.drag_incremental_us, r.drag_full_us, r.drag_speedup,
        );
        let _ = writeln!(
            json,
            "     \"append_ms\": {:.3}, \"reload_ms\": {:.3}, \"append_vs_reload\": {:.2}, \
             \"proj_merge_ms\": {:.3}, \"proj_build_ms\": {:.3}, \
             \"append_projection_merge\": {:.2},",
            r.append_ms,
            r.reload_ms,
            r.append_vs_reload,
            r.proj_merge_ms,
            r.proj_build_ms,
            r.append_projection_merge,
        );
        let _ = writeln!(
            json,
            "     \"materialized2_rows_per_sec\": {:.0}, \"streaming2_rows_per_sec\": {:.0}, \
             \"streaming_vs_materialized\": {:.3},",
            r.materialized2_rows_per_sec, r.streaming2_rows_per_sec, r.streaming_vs_materialized,
        );
        let _ = writeln!(
            json,
            "     \"streaming_phase_ms\": {{\"distance\": {:.3}, \"fit\": {:.3}, \
             \"normalize_combine\": {:.3}, \"rank\": {:.3}}},",
            r.streaming_phase_distance_ms,
            r.streaming_phase_fit_ms,
            r.streaming_phase_normalize_combine_ms,
            r.streaming_phase_rank_ms,
        );
        let _ = writeln!(
            json,
            "     \"string_scalar_rows_per_sec\": {:.0}, \
             \"string_vectorized_rows_per_sec\": {:.0}, \"string_gather_speedup\": {:.3},",
            r.string_scalar_rows_per_sec, r.string_vectorized_rows_per_sec, r.string_gather_speedup,
        );
        let _ = writeln!(
            json,
            "     \"obs_baseline_rows_per_sec\": {:.0}, \
             \"obs_instrumented_rows_per_sec\": {:.0}, \"obs_overhead\": {:.3},",
            r.obs_baseline_rows_per_sec, r.obs_instrumented_rows_per_sec, r.obs_overhead,
        );
        let _ = writeln!(
            json,
            "     \"cancel_baseline_rows_per_sec\": {:.0}, \
             \"cancel_polling_rows_per_sec\": {:.0}, \"cancel_overhead\": {:.3},",
            r.cancel_baseline_rows_per_sec, r.cancel_polling_rows_per_sec, r.cancel_overhead,
        );
        let _ = writeln!(
            json,
            "     \"branchy_nc_rows_per_sec\": {:.0}, \"branchless_nc_rows_per_sec\": {:.0}, \
             \"branchless_vs_branchy\": {:.3}, \"reps\": {},",
            r.branchy_nc_rows_per_sec,
            r.branchless_nc_rows_per_sec,
            r.branchless_vs_branchy,
            r.reps,
        );
        let threads_json: Vec<String> = r
            .threads
            .iter()
            .map(|p| {
                format!(
                    "{{\"threads\": {}, \"partitioned_rows_per_sec\": {:.0}, \
                     \"streaming_rows_per_sec\": {:.0}}}",
                    p.threads, p.partitioned_rows_per_sec, p.streaming_rows_per_sec,
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "     \"threads\": [{}]}}{}",
            threads_json.join(", "),
            if i + 1 < results.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    let path = "BENCH_pipeline.json";
    std::fs::write(path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {path}");

    if !smoke {
        if let Some(big) = results.iter().max_by_key(|r| r.n) {
            // End-to-end scalar timing swings wildly on a contended
            // single-core box (committed history spans 2.1M..12.8M
            // scalar rows/s at n=1M with an unchanged binary), so the
            // acceptance gates are (a) the stable algorithmic win —
            // top-k selection beats the full sort — and (b) no
            // end-to-end regression beyond noise.
            assert!(
                big.full_sort_ms >= 2.0 * big.topk_ms,
                "acceptance: top-k selection must be >= 2x faster than the full sort \
                 at n={} (sort {:.2} ms vs top-k {:.2} ms)",
                big.n,
                big.full_sort_ms,
                big.topk_ms
            );
            assert!(
                big.speedup >= 0.8,
                "acceptance: vectorized must not regress vs scalar at n={} (got {:.2}x)",
                big.n,
                big.speedup
            );
            // The two stable representation gates: both compare the same
            // algorithm with only the data layout / access path changed,
            // so the ratios are far less noise-prone than end-to-end
            // wall clock on a contended box.
            assert!(
                big.packed_vs_option >= 1.3,
                "acceptance: packed frames must be >= 1.3x the Option \
                 representation at n={} (got {:.2}x)",
                big.n,
                big.packed_vs_option
            );
            // The branchless kernel walk removed the materialized
            // path's full-size normalize/combine frame traffic (its
            // 2-predicate throughput at n=1M went from ~1.2M to ~15M
            // rows/s), so streaming's old >= 1.3x advantage on this
            // workload collapsed to parity by the *materialized* side
            // getting faster. The gate now asserts streaming holds
            // that parity (no regression hiding behind the faster
            // baseline); the committed history preserves the old gap.
            assert!(
                big.streaming_vs_materialized >= 0.8,
                "acceptance: streaming execution must stay within 0.8x of the materialized \
                 path on the 2-predicate workload at n={} (got {:.2}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.streaming_vs_materialized,
                big.streaming2_rows_per_sec,
                big.materialized2_rows_per_sec
            );
            assert!(
                big.obs_overhead >= 0.95,
                "acceptance: tracing + registry recording must keep >= 95% of the \
                 untraced throughput at n={} (got {:.3}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.obs_overhead,
                big.obs_instrumented_rows_per_sec,
                big.obs_baseline_rows_per_sec
            );
            assert!(
                big.cancel_overhead >= 0.95,
                "acceptance: per-chunk cancel-token polling must keep >= 95% of the \
                 tokenless throughput at n={} (got {:.3}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.cancel_overhead,
                big.cancel_polling_rows_per_sec,
                big.cancel_baseline_rows_per_sec
            );
            assert!(
                big.string_gather_speedup >= 2.0,
                "acceptance: the dictionary-gather string path must be >= 2x the \
                 per-row Value-cloning scalar reference at n={} (got {:.2}x: {:.0} \
                 vs {:.0} rows/s)",
                big.n,
                big.string_gather_speedup,
                big.string_vectorized_rows_per_sec,
                big.string_scalar_rows_per_sec
            );
            assert!(
                big.branchless_vs_branchy >= 1.2,
                "acceptance: the branchless normalize+combine kernels must be >= 1.2x \
                 the per-row branchy walk at n={} (got {:.2}x: {:.0} vs {:.0} rows/s)",
                big.n,
                big.branchless_vs_branchy,
                big.branchless_nc_rows_per_sec,
                big.branchy_nc_rows_per_sec
            );
            assert!(
                big.append_vs_reload >= 10.0,
                "acceptance: appending a 1% delta generation must be >= 10x faster \
                 than reloading from scratch at n={} (got {:.2}x: {:.2} ms vs {:.2} ms)",
                big.n,
                big.append_vs_reload,
                big.append_ms,
                big.reload_ms
            );
            assert!(
                big.append_projection_merge >= 3.0,
                "acceptance: merging the sorted delta permutation must be >= 3x \
                 faster than rebuilding the projection at n={} (got {:.2}x: {:.3} ms \
                 vs {:.3} ms)",
                big.n,
                big.append_projection_merge,
                big.proj_merge_ms,
                big.proj_build_ms
            );
            assert!(
                big.drag_speedup >= 5.0,
                "acceptance: the incremental sorted-projection slider drag must be \
                 >= 5x a full recompute at n={} (got {:.2}x: {:.1} us vs {:.1} us)",
                big.n,
                big.drag_speedup,
                big.drag_incremental_us,
                big.drag_full_us
            );
        }
    }
}
